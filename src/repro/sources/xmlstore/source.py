"""XML connector implementing the DataSource protocol.

An extraction rule is an XPath expression — or an XQuery FLWOR expression
(``for $w in //watch where ... return ...``, paper section 2.3.1 step 2)
— optionally prefixed with the document name it applies to
(``doc:catalog.xml //watch/brand``); when the store holds a single
document the prefix may be omitted.
"""

from __future__ import annotations

from ...errors import ExtractionError
from ...xmlkit import XPath
from ...xmlkit.xquery import XQuery, is_flwor
from ..base import ConnectionInfo, DataSource, stable_digest
from .store import XmlDocumentStore

_DOC_PREFIX = "doc:"


class XmlDataSource(DataSource):
    """A registered XML document store behind XPath extraction rules."""

    source_type = "xml"

    def __init__(self, source_id: str, store: XmlDocumentStore, *,
                 default_document: str | None = None,
                 path: str = "memory://xmlstore") -> None:
        super().__init__(source_id)
        self.store = store
        self.default_document = default_document
        self.path = path
        self._compiled: dict[str, XPath | XQuery] = {}

    def _compile(self, expression: str) -> XPath | XQuery:
        compiled = self._compiled.get(expression)
        if compiled is None:
            if is_flwor(expression):
                compiled = XQuery.compile(expression)
            else:
                compiled = XPath(expression)
            self._compiled[expression] = compiled
        return compiled

    def execute_rule(self, rule: str) -> list[str]:
        """Run an XPath or XQuery rule; one string per selected node."""
        if not self.connected:
            self.connect()
        rule = rule.strip()
        doc_name = self.default_document
        if rule.startswith(_DOC_PREFIX):
            head, _, rest = rule.partition(" ")
            doc_name = head[len(_DOC_PREFIX):]
            rule = rest.strip()
            if not rule:
                raise ExtractionError(
                    "XPath rule missing after document prefix",
                    source_id=self.source_id)
        if doc_name is None:
            names = self.store.names()
            if len(names) != 1:
                raise ExtractionError(
                    f"XPath rule must name a document (store has "
                    f"{len(names)}): prefix with 'doc:<name> '",
                    source_id=self.source_id)
            doc_name = names[0]
        document = self.store.get(doc_name)
        compiled = self._compile(rule)
        if isinstance(compiled, XQuery):
            values = compiled.evaluate(document)
        else:
            values = compiled.values(document)
        return [value.strip() for value in values]

    async def aexecute_rule(self, rule: str) -> list[str]:
        """Awaitable twin of :meth:`execute_rule` for the asyncio engine.

        XPath/XQuery over the in-memory document store is pure compute
        with no transport to wait on, so it runs synchronously on the
        loop — cheaper than borrowing a worker thread for microseconds
        of tree walking."""
        return self.execute_rule(rule)

    def content_fingerprint(self) -> str | None:
        """Hash of every stored document's serialized XML."""
        parts: list[str] = []
        for name in self.store.names():
            parts.append(name)
            parts.append(self.store.export(name))
        return stable_digest(*parts)

    def connection_info(self) -> ConnectionInfo:
        """Registry-persistable connection description."""
        parameters = {"path": self.path, "store": self.store.name}
        if self.default_document is not None:
            parameters["document"] = self.default_document
        return ConnectionInfo(self.source_type, parameters)
