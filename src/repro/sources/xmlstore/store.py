"""A small store of named XML documents (a virtual XML message inbox).

B2B partners exchange XML messages/feeds; the store models the received
set of documents for one partner — named, parsed once, queried many times.
"""

from __future__ import annotations

from ...errors import XmlError
from ...xmlkit import Document, parse_xml, serialize_xml


class XmlDocumentStore:
    """Named XML documents with lazy parse-on-put."""

    def __init__(self, name: str = "xmlstore") -> None:
        self.name = name
        self._documents: dict[str, Document] = {}

    def put(self, doc_name: str, content: str | Document) -> Document:
        """Store (parsing if needed) a document under ``doc_name``."""
        if isinstance(content, Document):
            document = content
        else:
            document = parse_xml(content)
        self._documents[doc_name] = document
        return document

    def get(self, doc_name: str) -> Document:
        """The parsed document, or raise with the available names."""
        document = self._documents.get(doc_name)
        if document is None:
            raise XmlError(
                f"no document {doc_name!r} in store {self.name!r} "
                f"(documents: {sorted(self._documents)})")
        return document

    def remove(self, doc_name: str) -> None:
        """Delete a document."""
        if self._documents.pop(doc_name, None) is None:
            raise XmlError(f"no document {doc_name!r} in store {self.name!r}")

    def names(self) -> list[str]:
        """Stored document names, sorted."""
        return sorted(self._documents)

    def export(self, doc_name: str) -> str:
        """Serialize a stored document back to XML text."""
        return serialize_xml(self.get(doc_name))

    def __contains__(self, doc_name: str) -> bool:
        return doc_name in self._documents

    def __len__(self) -> int:
        return len(self._documents)
