"""XML data-source substrate.

Semistructured sources: XML documents queried with XPath extraction rules
(paper section 2.3.1 step 2: "For XML data sources, XPath and XQuery can
be used").  The DOM, parser and XPath engine live in :mod:`repro.xmlkit`;
this package adds the document store and the DataSource connector.
"""

from .store import XmlDocumentStore
from .source import XmlDataSource

__all__ = ["XmlDocumentStore", "XmlDataSource"]
