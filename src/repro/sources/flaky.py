"""Transient-failure injection for data sources.

B2B sources live on other organizations' infrastructure; transient
failures (timeouts, connection resets, maintenance windows) are routine.
:class:`FlakySource` wraps any connector and makes a deterministic,
seeded fraction of rule executions raise
:class:`~repro.errors.TransientSourceError` — the error class the
Extractor Manager's retry policy reacts to.  Deterministic injection
keeps availability experiments (E13) reproducible.
"""

from __future__ import annotations

import random

from ..errors import TransientSourceError
from .base import ConnectionInfo, DataSource


class FlakySource(DataSource):
    """Decorator source: forwards to ``inner``, failing transiently."""

    def __init__(self, inner: DataSource, *, failure_rate: float = 0.3,
                 seed: int = 7) -> None:
        super().__init__(inner.source_id)
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        self.inner = inner
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.attempts = 0
        self.failures = 0

    @property
    def source_type(self) -> str:  # type: ignore[override]
        """Forwarded from the wrapped source."""
        return self.inner.source_type

    def connect(self) -> None:
        """Connect the wrapped source."""
        self.inner.connect()
        super().connect()

    def close(self) -> None:
        """Close the wrapped source."""
        self.inner.close()
        super().close()

    def execute_rule(self, rule: str) -> list[str]:
        """Forward to the wrapped source, failing transiently."""
        self.attempts += 1
        if self._rng.random() < self.failure_rate:
            self.failures += 1
            raise TransientSourceError(
                f"transient failure talking to {self.source_id!r} "
                f"(attempt {self.attempts})")
        return self.inner.execute_rule(rule)

    def connection_info(self) -> ConnectionInfo:
        """Forwarded from the wrapped source."""
        return self.inner.connection_info()
