"""Fault injection for data sources.

B2B sources live on other organizations' infrastructure; transient
failures (timeouts, connection resets, maintenance windows) are routine.
:class:`FlakySource` wraps any connector and injects faults
deterministically so the resilience layer — retries, circuit breakers,
deadlines, replica failover — is exercisable without real networks or
real sleeps:

* **random transient failures** — a seeded fraction of rule executions
  raises (default) :class:`~repro.errors.TransientSourceError`, the
  error class the Extractor Manager's retry policy reacts to;
* **scripted failures** — an explicit fail/succeed plan consumed before
  the random stream, for exact breaker-transition tests;
* **latency injection** — every call sleeps on an injectable clock
  (pair with :class:`~repro.clock.FakeClock` for instant fake latency),
  driving deadline-expiry tests;
* **scheduled outage windows** — ``[start, end)`` intervals on the
  clock during which every call fails, modelling maintenance windows
  and hard-down sources;
* **configurable error classes** — inject permanent errors too, to
  check that they are *not* retried and do *not* trip breakers.

All mutable state is guarded by one lock: under the thread-pool engine
the Extractor Manager calls ``execute_rule`` from a thread pool, and an
unguarded shared ``random.Random`` would break the documented
determinism.

The wrapper is async-aware: :meth:`FlakySource.aexecute_rule` satisfies
the :class:`~repro.sources.base.AsyncDataSource` protocol, awaiting the
injected latency on the clock (``asyncio.sleep`` under a real clock, an
instant advance under :class:`~repro.clock.FakeClock`) so degraded
worlds are testable under the asyncio engine without real sleeps.  The
fault decision itself is shared between both paths, so a given call
sequence fails identically whichever engine drives it.
"""

from __future__ import annotations

import asyncio
import os
import random
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..clock import Clock, SystemClock
from ..errors import PoisonPayloadError, TransientSourceError
from .base import ConnectionInfo, DataSource


@dataclass(frozen=True)
class OutageWindow:
    """A ``[start, end)`` interval (clock seconds since wrapping) during
    which every call fails."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError("outage window needs 0 <= start <= end")

    def covers(self, offset: float) -> bool:
        return self.start <= offset < self.end


class WorkerCrashed(BaseException):
    """Simulated sudden worker death (thread workers).

    Derives from :class:`BaseException` so no ``except Exception``
    handler between the fault site and the worker loop can absorb it —
    the thread dies without reporting, exactly like a killed process.
    """


@dataclass(frozen=True)
class WorkerFault:
    """One scripted ingest-worker fault.

    ``action`` is ``"kill"`` (sudden death mid-stage: thread workers
    raise :class:`WorkerCrashed`, subprocess workers ``os._exit``),
    ``"hang"`` (block until the supervisor cancels the worker) or
    ``"poison"`` (raise :class:`~repro.errors.PoisonPayloadError`, the
    non-retryable path into the dead-letter ledger).  ``source_id`` and
    ``stage`` narrow where the fault fires; ``None`` matches anything.
    """

    action: str
    source_id: str | None = None
    stage: str | None = None

    def __post_init__(self) -> None:
        if self.action not in ("kill", "hang", "poison"):
            raise ValueError("action must be 'kill', 'hang' or 'poison'")

    def matches(self, source_id: str, stage: str) -> bool:
        return ((self.source_id is None or self.source_id == source_id)
                and (self.stage is None or self.stage == stage))


class KillableWorker:
    """Scripted fault injection at ingest stage boundaries.

    The ingest workers call :meth:`check` before running each stage of
    each job; the first scheduled :class:`WorkerFault` matching that
    ``(source_id, stage)`` is consumed and acted on.  Faults are
    consumed at most once, so "kill the worker the first time it
    STAGEs source X" is one fault, and the restarted worker sails
    through the re-run — the deterministic chaos-test shape.

    Picklable for the subprocess worker boundary (the lock is dropped
    and re-created); note that a subprocess child gets a *copy* of the
    fault plan at spawn time, so consumption in a child is per-child.
    """

    def __init__(self, faults: Iterable[WorkerFault] = ()) -> None:
        self.faults = list(faults)
        self.fired: list[WorkerFault] = []
        self._lock = threading.Lock()

    def schedule(self, fault: WorkerFault) -> None:
        with self._lock:
            self.faults.append(fault)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _consume(self, source_id: str, stage: str) -> WorkerFault | None:
        with self._lock:
            for index, fault in enumerate(self.faults):
                if fault.matches(source_id, stage):
                    del self.faults[index]
                    self.fired.append(fault)
                    return fault
        return None

    def check(self, source_id: str, stage: str, *,
              cancel: "threading.Event | None" = None,
              in_subprocess: bool = False) -> None:
        """Fire the first matching fault, if any.

        ``cancel`` is the worker's cancellation event — a hang blocks on
        it (with a real-time safety valve) so a supervised hang is
        interruptible.  ``in_subprocess`` selects ``os._exit`` as the
        kill mechanism (a raise would be caught by the child's loop and
        reported, which a real SIGKILL would not be)."""
        fault = self._consume(source_id, stage)
        if fault is None:
            return
        if fault.action == "poison":
            raise PoisonPayloadError(
                f"scripted poison payload at stage {stage}",
                source_id=source_id)
        if fault.action == "kill":
            if in_subprocess:
                os._exit(17)
            raise WorkerCrashed(
                f"scripted worker death at stage {stage} of {source_id!r}")
        # hang: stay silent until the supervisor gives up on us.
        if cancel is not None:
            cancel.wait(timeout=30.0)
        else:
            import time
            time.sleep(30.0)
        raise WorkerCrashed(
            f"scripted hang at stage {stage} of {source_id!r} released")


class FlakySource(DataSource):
    """Decorator source: forwards to ``inner``, injecting faults."""

    def __init__(self, inner: DataSource, *, failure_rate: float = 0.3,
                 seed: int = 7, latency: float = 0.0,
                 outages: Iterable[OutageWindow | tuple[float, float]] = (),
                 error_factory: Callable[[str], Exception] | None = None,
                 failure_plan: Sequence[bool] | None = None,
                 clock: Clock | None = None) -> None:
        super().__init__(inner.source_id)
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.inner = inner
        self.failure_rate = failure_rate
        self.latency = latency
        self.error_factory = error_factory or TransientSourceError
        self.clock = clock or SystemClock()
        self.outages = [window if isinstance(window, OutageWindow)
                        else OutageWindow(*window) for window in outages]
        self._plan = list(failure_plan) if failure_plan is not None else []
        self._plan_index = 0
        self._rng = random.Random(seed)
        self._epoch = self.clock.monotonic()
        self._lock = threading.Lock()
        self.attempts = 0
        self.failures = 0

    def __getstate__(self) -> dict:
        """Picklable across the subprocess worker boundary: the lock is
        dropped here and re-created on the other side.  Fault *state*
        (plan position, RNG stream, counters) travels with the copy."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def source_type(self) -> str:  # type: ignore[override]
        """Forwarded from the wrapped source."""
        return self.inner.source_type

    def connect(self) -> None:
        """Connect the wrapped source."""
        self.inner.connect()
        super().connect()

    def close(self) -> None:
        """Close the wrapped source."""
        self.inner.close()
        super().close()

    # -- fault scheduling ---------------------------------------------------

    def schedule_outage(self, start: float, duration: float) -> OutageWindow:
        """Add an outage window ``start`` seconds from *now* (clock time)."""
        offset = self.clock.monotonic() - self._epoch
        window = OutageWindow(offset + start, offset + start + duration)
        with self._lock:
            self.outages.append(window)
        return window

    def elapsed(self) -> float:
        """Clock seconds since this wrapper was created."""
        return self.clock.monotonic() - self._epoch

    def _should_fail(self, offset: float) -> str | None:
        """Decide (under the lock) whether this call fails, and why."""
        for window in self.outages:
            if window.covers(offset):
                return (f"scheduled outage [{window.start:g}s, "
                        f"{window.end:g}s) on {self.source_id!r}")
        if self._plan_index < len(self._plan):
            scripted = self._plan[self._plan_index]
            self._plan_index += 1
            if scripted:
                return (f"scripted failure #{self._plan_index} on "
                        f"{self.source_id!r}")
            return None
        if self._rng.random() < self.failure_rate:
            return (f"transient failure talking to {self.source_id!r} "
                    f"(attempt {self.attempts})")
        return None

    # -- the wrapped call ---------------------------------------------------

    def _decide(self) -> str | None:
        """Count the attempt and decide failure, under the lock."""
        with self._lock:
            self.attempts += 1
            reason = self._should_fail(self.elapsed())
            if reason is not None:
                self.failures += 1
        return reason

    def execute_rule(self, rule: str) -> list[str]:
        """Forward to the wrapped source, injecting configured faults."""
        if self.latency > 0:
            self.clock.sleep(self.latency)
        reason = self._decide()
        if reason is not None:
            raise self.error_factory(reason)
        return self.inner.execute_rule(rule)

    async def aexecute_rule(self, rule: str) -> list[str]:
        """Async twin of :meth:`execute_rule`: same faults, same order.

        Latency is awaited instead of slept, so hundreds of flaky
        sources can be in flight on one event loop; the wrapped
        connector is awaited natively when it is async-capable and run
        in a worker thread otherwise."""
        if self.latency > 0:
            await self.clock.sleep_async(self.latency)
        reason = self._decide()
        if reason is not None:
            raise self.error_factory(reason)
        inner_async = getattr(self.inner, "aexecute_rule", None)
        if inner_async is not None:
            return await inner_async(rule)
        return await asyncio.to_thread(self.inner.execute_rule, rule)

    def content_fingerprint(self) -> str | None:
        """Forwarded from the wrapped source.

        Deliberately not fault-injected: a fingerprint probe models a
        cheap metadata check, and change detection failing open (None →
        treated as changed) is already the safe default."""
        return self.inner.content_fingerprint()

    def connection_info(self) -> ConnectionInfo:
        """Forwarded from the wrapped source."""
        return self.inner.connection_info()
