"""Common protocol for data sources.

A :class:`DataSource` is the unit the Data Source Repository registers
(paper section 2.3.2): it has an identifier, a *type* (which selects the
extractor), and *connection information* that "varies by data source type
— Web pages require URLs, files require paths, and databases require
location, login, password, and driver type".

:class:`AsyncDataSource` extends the protocol with a non-blocking
``aexecute_rule`` for the asyncio extraction engine; legacy synchronous
connectors keep working unchanged because the engine (and the explicit
:class:`SyncSourceAdapter`) runs them in a worker thread.
"""

from __future__ import annotations

import abc
import asyncio
import hashlib
from dataclasses import dataclass, field

from ..errors import S2SError


def stable_digest(*parts: str) -> str:
    """A sha256 hex digest over ``parts`` with unambiguous framing.

    Shared by the connectors' ``content_fingerprint`` implementations;
    length-prefixed so ``("ab", "c")`` and ``("a", "bc")`` differ."""
    digest = hashlib.sha256()
    for part in parts:
        encoded = part.encode("utf-8")
        digest.update(str(len(encoded)).encode("ascii"))
        digest.update(b":")
        digest.update(encoded)
    return digest.hexdigest()


@dataclass(frozen=True)
class ConnectionInfo:
    """Type-tagged connection parameters for one data source.

    ``parameters`` is a flat string map because that is what a registry
    persists; each connector documents the keys it requires.
    """

    source_type: str
    parameters: dict[str, str] = field(default_factory=dict)

    def require(self, key: str) -> str:
        """The parameter value; raises when absent."""
        value = self.parameters.get(key)
        if value is None:
            raise S2SError(
                f"connection info for {self.source_type!r} source is missing "
                f"required parameter {key!r}")
        return value

    def get(self, key: str, default: str | None = None) -> str | None:
        """The parameter value, or ``default``."""
        return self.parameters.get(key, default)


class DataSource(abc.ABC):
    """A connectable, queryable source of raw data.

    Concrete sources implement :meth:`execute_rule`, which runs one
    *extraction rule* (a SQL statement, XPath expression, WebL program or
    regex — whatever the source technology understands) and returns the
    matching raw values as a list of strings, one entry per data record.
    """

    #: Symbolic type used by the repository and the extractor dispatcher.
    source_type: str = "abstract"

    def __init__(self, source_id: str) -> None:
        if not source_id:
            raise S2SError("data source id must be non-empty")
        self.source_id = source_id
        self._connected = False

    # -- lifecycle -------------------------------------------------------

    def connect(self) -> None:
        """Open the source. Idempotent."""
        self._connected = True

    def close(self) -> None:
        """Close the source. Idempotent."""
        self._connected = False

    @property
    def connected(self) -> bool:
        """Whether :meth:`connect` has succeeded."""
        return self._connected

    def __enter__(self) -> "DataSource":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- extraction ------------------------------------------------------

    @abc.abstractmethod
    def execute_rule(self, rule: str) -> list[str]:
        """Run one extraction rule, returning one string per record."""

    @abc.abstractmethod
    def connection_info(self) -> ConnectionInfo:
        """The registry-persistable connection description of this source."""

    def content_fingerprint(self) -> str | None:
        """A stable hash of the source's observable content, or None.

        The semantic store's delta refresher compares fingerprints
        taken at materialization time against current ones to decide
        which sources need re-extraction.  ``None`` means "cannot
        observe" and is treated as *changed* — a connector that cannot
        fingerprint is simply always re-extracted, never wrongly
        skipped.  Implementations must not count as an access in any
        instrumentation the source keeps (a fingerprint probe is not a
        data fetch)."""
        return None

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{self.source_type} source {self.source_id!r}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.source_id!r})"


class AsyncDataSource(DataSource):
    """A data source that can execute rules without blocking a loop.

    Connectors whose transport is naturally asynchronous (an HTTP client,
    an async database driver) implement :meth:`aexecute_rule`; the
    asyncio extraction engine awaits it directly, so one event loop can
    hold hundreds of slow sources in flight at once.

    The synchronous :meth:`execute_rule` is bridged automatically (the
    coroutine runs on a private, short-lived loop), so an async-native
    connector still works under the serial and thread-pool engines —
    both protocols, one implementation.
    """

    @abc.abstractmethod
    async def aexecute_rule(self, rule: str) -> list[str]:
        """Run one extraction rule without blocking the event loop."""

    def execute_rule(self, rule: str) -> list[str]:
        """Synchronous bridge: run :meth:`aexecute_rule` to completion.

        Only valid from code that is not already inside a running event
        loop (the thread-pool engine's workers, direct scripting use)."""
        return asyncio.run(self.aexecute_rule(rule))


class SyncSourceAdapter(AsyncDataSource):
    """Auto-adapter presenting a legacy sync connector as async.

    Wraps any :class:`DataSource` and satisfies the
    :class:`AsyncDataSource` protocol by running the wrapped connector's
    ``execute_rule`` in a worker thread, so the event loop stays free
    while the connector blocks.  All five built-in connectors work under
    the asyncio engine through this adapter without modification; the
    engine applies it implicitly, and :func:`as_async_source` applies it
    explicitly."""

    def __init__(self, inner: DataSource) -> None:
        super().__init__(inner.source_id)
        self.inner = inner

    @property
    def source_type(self) -> str:  # type: ignore[override]
        """Forwarded from the wrapped source."""
        return self.inner.source_type

    def connect(self) -> None:
        self.inner.connect()
        super().connect()

    def close(self) -> None:
        self.inner.close()
        super().close()

    async def aexecute_rule(self, rule: str) -> list[str]:
        """Run the wrapped sync connector in a worker thread."""
        return await asyncio.to_thread(self.inner.execute_rule, rule)

    def execute_rule(self, rule: str) -> list[str]:
        """Forward directly — no thread hop on the sync path."""
        return self.inner.execute_rule(rule)

    def content_fingerprint(self) -> str | None:
        return self.inner.content_fingerprint()

    def connection_info(self) -> ConnectionInfo:
        return self.inner.connection_info()


def as_async_source(source: DataSource) -> AsyncDataSource:
    """``source`` if already async-capable, else a thread-backed adapter.

    A source is async-capable when it exposes an ``aexecute_rule``
    coroutine method — subclassing :class:`AsyncDataSource` is the
    canonical spelling, but duck-typed wrappers (e.g.
    :class:`~repro.sources.flaky.FlakySource`) qualify too."""
    if isinstance(source, AsyncDataSource) or hasattr(source,
                                                      "aexecute_rule"):
        return source  # type: ignore[return-value]
    return SyncSourceAdapter(source)
