"""Plain-text file substrate.

The unstructured file sources of the paper ("plain text files",
section 2.1): a virtual file store plus a connector whose extraction rules
are regular expressions evaluated over a named file.
"""

from .store import TextFileStore
from .source import TextDataSource

__all__ = ["TextFileStore", "TextDataSource"]
