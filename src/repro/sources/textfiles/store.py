"""A virtual filesystem of plain-text files.

Keeps file access in-process and deterministic; `load_directory` can pull
real files in for examples that want to integrate on-disk data.
"""

from __future__ import annotations

import os

from ...errors import S2SError


class TextFileStore:
    """Named text files with simple read/write access."""

    def __init__(self, name: str = "files") -> None:
        self.name = name
        self._files: dict[str, str] = {}

    def write(self, path: str, content: str) -> None:
        """Create or replace a file."""
        if not path:
            raise S2SError("file path must be non-empty")
        self._files[path] = content

    def read(self, path: str) -> str:
        """File contents, or raise with the available paths."""
        content = self._files.get(path)
        if content is None:
            raise S2SError(
                f"no file {path!r} in store {self.name!r} "
                f"(files: {sorted(self._files)})")
        return content

    def append(self, path: str, content: str) -> None:
        """Append to a file, creating it if missing."""
        self._files[path] = self._files.get(path, "") + content

    def delete(self, path: str) -> None:
        """Remove a file."""
        if self._files.pop(path, None) is None:
            raise S2SError(f"no file {path!r} in store {self.name!r}")

    def paths(self) -> list[str]:
        """Stored file paths, sorted."""
        return sorted(self._files)

    def load_directory(self, directory: str, *, suffix: str = ".txt") -> int:
        """Import real on-disk files; returns the number loaded."""
        loaded = 0
        for entry in sorted(os.listdir(directory)):
            if not entry.endswith(suffix):
                continue
            full = os.path.join(directory, entry)
            with open(full, encoding="utf-8") as handle:
                self.write(entry, handle.read())
            loaded += 1
        return loaded

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)
