"""Text-file connector implementing the DataSource protocol.

Extraction rules are regular expressions, optionally prefixed with the
file they apply to (``file:inventory.txt <regex>``); each match yields one
record — group 1 when the pattern has groups, the whole match otherwise.
"""

from __future__ import annotations

import re

from ...errors import ExtractionError
from ..base import ConnectionInfo, DataSource, stable_digest
from .store import TextFileStore

_FILE_PREFIX = "file:"


class TextDataSource(DataSource):
    """A registered text-file store behind regex extraction rules."""

    source_type = "textfile"

    def __init__(self, source_id: str, store: TextFileStore, *,
                 default_file: str | None = None,
                 path: str = "memory://textfiles") -> None:
        super().__init__(source_id)
        self.store = store
        self.default_file = default_file
        self.path = path

    def execute_rule(self, rule: str) -> list[str]:
        """Run a regex rule; group 1 (or whole match) per record."""
        if not self.connected:
            self.connect()
        rule = rule.strip()
        file_path = self.default_file
        if rule.startswith(_FILE_PREFIX):
            head, _, rest = rule.partition(" ")
            file_path = head[len(_FILE_PREFIX):]
            rule = rest.strip()
            if not rule:
                raise ExtractionError("regex missing after file prefix",
                                      source_id=self.source_id)
        if file_path is None:
            paths = self.store.paths()
            if len(paths) != 1:
                raise ExtractionError(
                    f"regex rule must name a file (store has {len(paths)}): "
                    "prefix with 'file:<path> '", source_id=self.source_id)
            file_path = paths[0]
        content = self.store.read(file_path)
        try:
            compiled = re.compile(rule, re.MULTILINE)
        except re.error as exc:
            raise ExtractionError(
                f"invalid regex extraction rule {rule!r}: {exc}",
                source_id=self.source_id) from exc
        records: list[str] = []
        for match in compiled.finditer(content):
            if compiled.groups >= 1:
                records.append((match.group(1) or "").strip())
            else:
                records.append(match.group(0).strip())
        return records

    def content_fingerprint(self) -> str | None:
        """Hash of every stored file's contents."""
        parts: list[str] = []
        for path in self.store.paths():
            parts.append(path)
            parts.append(self.store.read(path))
        return stable_digest(*parts)

    def connection_info(self) -> ConnectionInfo:
        """Registry-persistable connection description."""
        parameters = {"path": self.path, "store": self.store.name}
        if self.default_file is not None:
            parameters["file"] = self.default_file
        return ConnectionInfo(self.source_type, parameters)
