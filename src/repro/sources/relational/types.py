"""SQL column types and value coercion."""

from __future__ import annotations

from ...errors import SqlError

#: Canonical type names; parser synonyms map onto these.
TYPES = ("INTEGER", "REAL", "TEXT", "BOOLEAN")

_SYNONYMS = {
    "INT": "INTEGER",
    "INTEGER": "INTEGER",
    "BIGINT": "INTEGER",
    "SMALLINT": "INTEGER",
    "REAL": "REAL",
    "FLOAT": "REAL",
    "DOUBLE": "REAL",
    "DECIMAL": "REAL",
    "NUMERIC": "REAL",
    "TEXT": "TEXT",
    "VARCHAR": "TEXT",
    "CHAR": "TEXT",
    "STRING": "TEXT",
    "BOOLEAN": "BOOLEAN",
    "BOOL": "BOOLEAN",
}


def canonical_type(name: str) -> str:
    """Map a declared SQL type (possibly with a length suffix) to canon."""
    base = name.upper().split("(")[0].strip()
    canonical = _SYNONYMS.get(base)
    if canonical is None:
        raise SqlError(f"unsupported SQL type: {name!r}")
    return canonical


def coerce_value(value, type_name: str):
    """Coerce a Python value to the column type; None passes through."""
    if value is None:
        return None
    try:
        if type_name == "INTEGER":
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise SqlError(
                    f"cannot store non-integral {value!r} in INTEGER column")
            return int(value)
        if type_name == "REAL":
            if isinstance(value, bool):
                raise SqlError("cannot store boolean in REAL column")
            return float(value)
        if type_name == "TEXT":
            if isinstance(value, bool):
                return "true" if value else "false"
            return str(value)
        if type_name == "BOOLEAN":
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return bool(value)
            text = str(value).strip().lower()
            if text in ("true", "1"):
                return True
            if text in ("false", "0"):
                return False
            raise SqlError(f"cannot coerce {value!r} to BOOLEAN")
    except (TypeError, ValueError) as exc:
        raise SqlError(
            f"cannot coerce {value!r} to {type_name}") from exc
    raise SqlError(f"unknown column type: {type_name!r}")
