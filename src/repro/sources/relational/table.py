"""Tables: typed columns, row storage, hash indexes."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ...errors import SqlError, SqlExecutionError
from .types import canonical_type, coerce_value


@dataclass(frozen=True)
class Column:
    """A typed table column."""

    name: str
    type: str  # canonical: INTEGER/REAL/TEXT/BOOLEAN
    not_null: bool = False

    @classmethod
    def of(cls, name: str, declared_type: str, not_null: bool = False) -> "Column":
        """Build a column, canonicalizing the declared SQL type."""
        return cls(name, canonical_type(declared_type), not_null)


class Table:
    """An in-memory table with optional single-column hash indexes."""

    def __init__(self, name: str, columns: list[Column]) -> None:
        if not columns:
            raise SqlError(f"table {name!r} must have at least one column")
        names = [c.name.lower() for c in columns]
        if len(set(names)) != len(names):
            raise SqlError(f"duplicate column name in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self._index_of = {c.name.lower(): i for i, c in enumerate(columns)}
        self.rows: list[list] = []
        self._indexes: dict[str, dict[object, list[int]]] = {}

    # -- schema ----------------------------------------------------------

    def column_index(self, name: str) -> int:
        """Positional index of a column (case-insensitive)."""
        index = self._index_of.get(name.lower())
        if index is None:
            raise SqlExecutionError(
                f"no column {name!r} in table {self.name!r} "
                f"(columns: {[c.name for c in self.columns]})")
        return index

    def has_column(self, name: str) -> bool:
        """Whether the table has a column named ``name``."""
        return name.lower() in self._index_of

    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def rename_column(self, old: str, new: str) -> None:
        """ALTER TABLE ... RENAME COLUMN — the schema-drift primitive used
        by the maintenance experiment (E9)."""
        index = self.column_index(old)
        if self.has_column(new):
            raise SqlError(f"column {new!r} already exists in {self.name!r}")
        column = self.columns[index]
        self.columns[index] = Column(new, column.type, column.not_null)
        self._index_of = {c.name.lower(): i for i, c in enumerate(self.columns)}
        key = old.lower()
        if key in self._indexes:
            self._indexes[new.lower()] = self._indexes.pop(key)

    def add_column(self, column: Column) -> None:
        """Append a column; existing rows backfill with NULL."""
        if self.has_column(column.name):
            raise SqlError(
                f"column {column.name!r} already exists in {self.name!r}")
        self.columns.append(column)
        self._index_of[column.name.lower()] = len(self.columns) - 1
        for row in self.rows:
            row.append(None)

    # -- data ------------------------------------------------------------

    def insert(self, values: dict[str, object]) -> None:
        """Insert one row from a column→value map, with coercion."""
        row: list = [None] * len(self.columns)
        for name, value in values.items():
            index = self.column_index(name)
            row[index] = coerce_value(value, self.columns[index].type)
        for index, column in enumerate(self.columns):
            if column.not_null and row[index] is None:
                raise SqlExecutionError(
                    f"NULL in NOT NULL column {column.name!r} of "
                    f"{self.name!r}")
        position = len(self.rows)
        self.rows.append(row)
        for column_key, index_map in self._indexes.items():
            index_map[row[self._index_of[column_key]]].append(position)

    def delete_where(self, predicate) -> int:
        """Delete rows matching ``predicate(row) -> bool``; rebuilds indexes."""
        kept = [row for row in self.rows if not predicate(row)]
        removed = len(self.rows) - len(kept)
        self.rows = kept
        self._rebuild_indexes()
        return removed

    def update_where(self, predicate, assignments: dict[int, object]) -> int:
        """Set column-index -> value on matching rows."""
        updated = 0
        for row in self.rows:
            if predicate(row):
                for index, value in assignments.items():
                    row[index] = coerce_value(value, self.columns[index].type)
                updated += 1
        if updated:
            self._rebuild_indexes()
        return updated

    # -- indexes -----------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Build a hash index over one column (idempotent)."""
        key = column.lower()
        self.column_index(column)
        if key in self._indexes:
            return
        index_map: dict[object, list[int]] = defaultdict(list)
        position = self._index_of[key]
        for row_number, row in enumerate(self.rows):
            index_map[row[position]].append(row_number)
        self._indexes[key] = index_map

    def indexed_lookup(self, column: str, value) -> list[list] | None:
        """Rows where column == value via index, or None if unindexed."""
        index_map = self._indexes.get(column.lower())
        if index_map is None:
            return None
        return [self.rows[i] for i in index_map.get(value, [])]

    def has_index(self, column: str) -> bool:
        """Whether ``column`` is hash-indexed."""
        return column.lower() in self._indexes

    def _rebuild_indexes(self) -> None:
        for column_key in list(self._indexes):
            index_map: dict[object, list[int]] = defaultdict(list)
            position = self._index_of[column_key]
            for row_number, row in enumerate(self.rows):
                index_map[row[position]].append(row_number)
            self._indexes[column_key] = index_map

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={len(self.columns)}, rows={len(self.rows)})"
