"""Tables: typed columns, columnar storage, hash indexes.

Storage is column-major: each column holds a dense typed buffer
(``array('q')`` for INTEGER, ``array('d')`` for REAL, a ``bytearray``
for BOOLEAN, a plain list for TEXT) plus a validity bitmap marking
NULLs.  The vectorized executor in ``sql/columnar.py`` reads columns
directly; the row-at-a-time executor (and content fingerprinting) read
the :attr:`Table.rows` property, a lazily materialized row-major view
cached until the next mutation.
"""

from __future__ import annotations

import array
from collections import defaultdict
from dataclasses import dataclass

from ...errors import SqlError, SqlExecutionError
from .types import canonical_type, coerce_value


@dataclass(frozen=True)
class Column:
    """A typed table column."""

    name: str
    type: str  # canonical: INTEGER/REAL/TEXT/BOOLEAN
    not_null: bool = False

    @classmethod
    def of(cls, name: str, declared_type: str, not_null: bool = False) -> "Column":
        """Build a column, canonicalizing the declared SQL type."""
        return cls(name, canonical_type(declared_type), not_null)


class ColumnData:
    """Column-major value storage: typed buffer + validity bitmap.

    INTEGER columns promote transparently from ``array('q')`` to a plain
    object list when a value exceeds 64 bits (Python ints are unbounded;
    the dense buffer is only an optimization).
    """

    __slots__ = ("type", "_buffer", "_valid", "_nulls")

    def __init__(self, type_name: str, values=()) -> None:
        self.type = type_name
        if type_name == "INTEGER":
            self._buffer: object = array.array("q")
        elif type_name == "REAL":
            self._buffer = array.array("d")
        elif type_name == "BOOLEAN":
            self._buffer = bytearray()
        else:  # TEXT
            self._buffer = []
        self._valid = bytearray()
        self._nulls = 0
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return len(self._valid)

    def append(self, value) -> None:
        """Append one (already coerced) value; None marks a NULL slot."""
        if value is None:
            self._nulls += 1
            self._valid.append(0)
            if isinstance(self._buffer, list):
                self._buffer.append(None)
            else:
                self._buffer.append(0)  # placeholder under a 0 validity bit
            return
        self._valid.append(1)
        if isinstance(self._buffer, list):
            self._buffer.append(value)
        elif self.type == "BOOLEAN":
            self._buffer.append(1 if value else 0)
        else:
            try:
                self._buffer.append(value)
            except OverflowError:
                self._promote()
                self._buffer.append(value)

    def set(self, position: int, value) -> None:
        """Overwrite one slot (already coerced); None marks NULL."""
        was_valid = self._valid[position]
        if value is None:
            if was_valid:
                self._nulls += 1
            self._valid[position] = 0
            if isinstance(self._buffer, list):
                self._buffer[position] = None
            else:
                self._buffer[position] = 0
            return
        if not was_valid:
            self._nulls -= 1
        self._valid[position] = 1
        if isinstance(self._buffer, list):
            self._buffer[position] = value
        elif self.type == "BOOLEAN":
            self._buffer[position] = 1 if value else 0
        else:
            try:
                self._buffer[position] = value
            except OverflowError:
                self._promote()
                self._buffer[position] = value

    def get(self, position: int):
        """The Python value at ``position`` (None for NULL slots)."""
        if not self._valid[position]:
            return None
        if self.type == "BOOLEAN":
            return self._buffer[position] == 1
        return self._buffer[position]

    def gather(self, positions) -> list:
        """Values at ``positions`` as Python objects (None for NULLs).

        A ``range`` (the contiguous full-scan batch shape) takes slice
        fast paths over the dense buffer; arbitrary position lists pay
        one indexed read per element.
        """
        buffer, valid = self._buffer, self._valid
        if isinstance(positions, range):
            lo, hi = positions.start, positions.stop
            chunk = buffer[lo:hi]
            if self.type == "BOOLEAN":
                values = [v == 1 for v in chunk]
            elif isinstance(buffer, list):
                values = chunk
            else:
                values = chunk.tolist()
            if self._nulls:
                return [v if ok else None
                        for v, ok in zip(values, valid[lo:hi])]
            return values
        if self.type == "BOOLEAN":
            return [(buffer[i] == 1) if valid[i] else None
                    for i in positions]
        if self._nulls:
            return [buffer[i] if valid[i] else None for i in positions]
        return [buffer[i] for i in positions]

    def _promote(self) -> None:
        # 64-bit overflow: fall back to object storage for this column.
        self._buffer = [v if ok else None
                        for v, ok in zip(self._buffer, self._valid)]


class Table:
    """An in-memory columnar table with optional single-column hash indexes."""

    def __init__(self, name: str, columns: list[Column]) -> None:
        if not columns:
            raise SqlError(f"table {name!r} must have at least one column")
        names = [c.name.lower() for c in columns]
        if len(set(names)) != len(names):
            raise SqlError(f"duplicate column name in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self._index_of = {c.name.lower(): i for i, c in enumerate(columns)}
        self._data: list[ColumnData] = [ColumnData(c.type) for c in columns]
        self._length = 0
        self._indexes: dict[str, dict[object, list[int]]] = {}
        self._version = 0
        self._rows_cache: list[list] | None = None
        self._rows_version = -1

    # -- schema ----------------------------------------------------------

    def column_index(self, name: str) -> int:
        """Positional index of a column (case-insensitive)."""
        index = self._index_of.get(name.lower())
        if index is None:
            raise SqlExecutionError(
                f"no column {name!r} in table {self.name!r} "
                f"(columns: {[c.name for c in self.columns]})")
        return index

    def has_column(self, name: str) -> bool:
        """Whether the table has a column named ``name``."""
        return name.lower() in self._index_of

    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def column_data(self, position: int) -> ColumnData:
        """Raw columnar storage for the column at ``position``."""
        return self._data[position]

    def rename_column(self, old: str, new: str) -> None:
        """ALTER TABLE ... RENAME COLUMN — the schema-drift primitive used
        by the maintenance experiment (E9)."""
        index = self.column_index(old)
        if self.has_column(new):
            raise SqlError(f"column {new!r} already exists in {self.name!r}")
        column = self.columns[index]
        self.columns[index] = Column(new, column.type, column.not_null)
        self._index_of = {c.name.lower(): i for i, c in enumerate(self.columns)}
        key = old.lower()
        if key in self._indexes:
            self._indexes[new.lower()] = self._indexes.pop(key)

    def add_column(self, column: Column) -> None:
        """Append a column; existing rows backfill with NULL."""
        if self.has_column(column.name):
            raise SqlError(
                f"column {column.name!r} already exists in {self.name!r}")
        self.columns.append(column)
        self._index_of[column.name.lower()] = len(self.columns) - 1
        self._data.append(ColumnData(column.type, [None] * self._length))
        self._version += 1

    # -- data ------------------------------------------------------------

    @property
    def rows(self) -> list[list]:
        """Row-major view (list of lists), cached until the next mutation.

        Read-only: mutate through :meth:`insert` / :meth:`update_where` /
        :meth:`delete_where`, never through this list.
        """
        if self._rows_cache is None or self._rows_version != self._version:
            if self._length:
                span = range(self._length)
                columns = [data.gather(span) for data in self._data]
                self._rows_cache = [list(values) for values in zip(*columns)]
            else:
                self._rows_cache = []
            self._rows_version = self._version
        return self._rows_cache

    def row_at(self, position: int) -> list:
        """One materialized row."""
        return [data.get(position) for data in self._data]

    def insert(self, values: dict[str, object]) -> None:
        """Insert one row from a column→value map, with coercion."""
        row: list = [None] * len(self.columns)
        for name, value in values.items():
            index = self.column_index(name)
            row[index] = coerce_value(value, self.columns[index].type)
        for index, column in enumerate(self.columns):
            if column.not_null and row[index] is None:
                raise SqlExecutionError(
                    f"NULL in NOT NULL column {column.name!r} of "
                    f"{self.name!r}")
        position = self._length
        for index, value in enumerate(row):
            self._data[index].append(value)
        self._length += 1
        self._version += 1
        for column_key, index_map in self._indexes.items():
            index_map[row[self._index_of[column_key]]].append(position)

    def delete_where(self, predicate) -> int:
        """Delete rows matching ``predicate(row) -> bool``; rebuilds indexes."""
        keep = [position for position, row in enumerate(self.rows)
                if not predicate(row)]
        removed = self._length - len(keep)
        self._data = [ColumnData(column.type, data.gather(keep))
                      for column, data in zip(self.columns, self._data)]
        self._length = len(keep)
        self._version += 1
        self._rebuild_indexes()
        return removed

    def update_where(self, predicate, assignments: dict[int, object]) -> int:
        """Set column-index -> value on matching rows."""
        updated = 0
        for position, row in enumerate(self.rows):
            if predicate(row):
                for index, value in assignments.items():
                    self._data[index].set(
                        position, coerce_value(value,
                                               self.columns[index].type))
                updated += 1
        if updated:
            self._version += 1
            self._rebuild_indexes()
        return updated

    # -- indexes -----------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Build a hash index over one column (idempotent)."""
        key = column.lower()
        self.column_index(column)
        if key in self._indexes:
            return
        index_map: dict[object, list[int]] = defaultdict(list)
        position = self._index_of[key]
        for row_number, value in enumerate(
                self._data[position].gather(range(self._length))):
            index_map[value].append(row_number)
        self._indexes[key] = index_map

    def indexed_positions(self, column: str, value) -> list[int] | None:
        """Ascending row positions where column == value, or None if
        unindexed."""
        index_map = self._indexes.get(column.lower())
        if index_map is None:
            return None
        return index_map.get(value, [])

    def indexed_lookup(self, column: str, value) -> list[list] | None:
        """Rows where column == value via index, or None if unindexed."""
        positions = self.indexed_positions(column, value)
        if positions is None:
            return None
        rows = self.rows
        return [rows[i] for i in positions]

    def has_index(self, column: str) -> bool:
        """Whether ``column`` is hash-indexed."""
        return column.lower() in self._indexes

    def _rebuild_indexes(self) -> None:
        for column_key in list(self._indexes):
            index_map: dict[object, list[int]] = defaultdict(list)
            position = self._index_of[column_key]
            for row_number, value in enumerate(
                    self._data[position].gather(range(self._length))):
                index_map[value].append(row_number)
            self._indexes[column_key] = index_map

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={len(self.columns)}, rows={self._length})"
