"""In-memory relational database engine with a SQL subset.

The structured-source substrate: the paper's mapping entries carry literal
SQL extraction rules (``SELECT aatribute FROM atable WHERE ...``,
section 2.3.1 step 3), so this package implements enough of a relational
engine to run them for real — catalog, typed tables, hash indexes, and a
SQL dialect covering DDL (CREATE/DROP/ALTER TABLE), DML (INSERT, UPDATE,
DELETE) and queries (SELECT with projections, WHERE, INNER/LEFT JOIN,
GROUP BY with aggregates, ORDER BY, DISTINCT, LIMIT).
"""

from .database import Database
from .table import Column, Table
from .source import RelationalDataSource

__all__ = ["Database", "Table", "Column", "RelationalDataSource"]
