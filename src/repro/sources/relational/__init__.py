"""In-memory relational database engine with a SQL subset.

The structured-source substrate: the paper's mapping entries carry literal
SQL extraction rules (``SELECT aatribute FROM atable WHERE ...``,
section 2.3.1 step 3), so this package implements enough of a relational
engine to run them for real — catalog, typed tables, hash indexes, and a
SQL dialect covering DDL (CREATE/DROP/ALTER TABLE), DML (INSERT, UPDATE,
DELETE) and queries (SELECT with projections, WHERE, INNER/LEFT JOIN,
GROUP BY with aggregates, ORDER BY, DISTINCT, LIMIT).

Storage is columnar (typed per-column buffers plus validity bitmaps)
and SELECTs default to the vectorized batch executor in
``sql/columnar.py``; the row-at-a-time executor remains available as
``engine="row"`` and serves as the differential-testing oracle.  See
``docs/relational.md``.
"""

from .database import ENGINES, Database
from .table import Column, ColumnData, Table
from .source import RelationalDataSource

__all__ = ["Database", "Table", "Column", "ColumnData", "ENGINES",
           "RelationalDataSource"]
