"""SQL dialect: lexer, AST, parser and executor."""

from .parser import parse_sql
from .executor import execute

__all__ = ["parse_sql", "execute"]
