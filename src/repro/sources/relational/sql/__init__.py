"""SQL dialect: lexer, AST, parser and two executors.

``execute`` is the row-at-a-time oracle; ``execute_columnar`` is the
vectorized engine over column-major storage (returns the result plus a
:class:`PlanReport` of the executed operator chain).
"""

from .parser import parse_sql
from .executor import execute
from .columnar import BATCH_SIZE, PlanReport, execute_columnar

__all__ = ["parse_sql", "execute", "execute_columnar", "PlanReport",
           "BATCH_SIZE"]
