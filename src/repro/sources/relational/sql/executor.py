"""SQL execution over the in-memory catalog.

The executor evaluates parsed statements against a
:class:`~repro.sources.relational.database.Database`.  SELECT produces a
:class:`ResultSet` (column names + row tuples).  Joins are hash joins on
equality conditions when possible, falling back to nested loops; WHERE
equality against an indexed column uses the index.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ....errors import SqlExecutionError
from .ast import (AddColumn, Aggregate, BooleanOp, ColumnRef, Comparison,
                  Condition, CreateIndex, CreateTable, Delete, DropTable,
                  InList, Insert, IsNull, LiteralValue, Not, RenameColumn,
                  Select, Star, Statement, Update)
from ..table import Column, Table


@dataclass
class ResultSet:
    """Columns + rows returned by SELECT (and row counts for DML)."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list:
        """Values of the named result column."""
        try:
            index = self.columns.index(name)
        except ValueError as exc:
            raise SqlExecutionError(
                f"result has no column {name!r}; columns: {self.columns}") from exc
        return [row[index] for row in self.rows]

    def scalars(self) -> list:
        """Values of the single result column."""
        if len(self.columns) != 1:
            raise SqlExecutionError(
                f"scalars() requires a single-column result, got {self.columns}")
        return [row[0] for row in self.rows]

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as column→value dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class _Env:
    """Rows-in-flight during SELECT: binding name -> (table, row)."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: dict[str, tuple[Table, list | None]]) -> None:
        self.bindings = bindings

    def lookup(self, ref: ColumnRef):
        if ref.table is not None:
            entry = self.bindings.get(ref.table.lower())
            if entry is None:
                raise SqlExecutionError(f"unknown table alias {ref.table!r}")
            table, row = entry
            if row is None:
                return None
            return row[table.column_index(ref.name)]
        matches = []
        for table, row in self.bindings.values():
            if table.has_column(ref.name):
                matches.append((table, row))
        if not matches:
            raise SqlExecutionError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            raise SqlExecutionError(f"ambiguous column {ref.name!r}")
        table, row = matches[0]
        if row is None:
            return None
        return row[table.column_index(ref.name)]


def _like_to_regex(pattern: str) -> re.Pattern:
    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts) + r"\Z", re.IGNORECASE | re.DOTALL)


def _eval_scalar(scalar, env: _Env):
    if isinstance(scalar, LiteralValue):
        return scalar.value
    if isinstance(scalar, ColumnRef):
        return env.lookup(scalar)
    raise SqlExecutionError(f"unsupported scalar {scalar!r}")


def _eval_condition(condition: Condition, env: _Env) -> bool:
    if isinstance(condition, BooleanOp):
        if condition.operator == "AND":
            return (_eval_condition(condition.left, env)
                    and _eval_condition(condition.right, env))
        return (_eval_condition(condition.left, env)
                or _eval_condition(condition.right, env))
    if isinstance(condition, Not):
        return not _eval_condition(condition.operand, env)
    if isinstance(condition, IsNull):
        value = _eval_scalar(condition.operand, env)
        return (value is None) != condition.negated
    if isinstance(condition, InList):
        value = _eval_scalar(condition.operand, env)
        options = [_eval_scalar(o, env) for o in condition.options]
        return (value in options) != condition.negated
    if isinstance(condition, Comparison):
        left = _eval_scalar(condition.left, env)
        right = _eval_scalar(condition.right, env)
        if condition.operator == "LIKE":
            if left is None or right is None:
                return False
            return _like_to_regex(str(right)).match(str(left)) is not None
        if left is None or right is None:
            return False  # SQL three-valued logic collapses to False here
        try:
            if condition.operator == "=":
                return left == right
            if condition.operator == "!=":
                return left != right
            if condition.operator == "<":
                return left < right
            if condition.operator == ">":
                return left > right
            if condition.operator == "<=":
                return left <= right
            return left >= right
        except TypeError as exc:
            raise SqlExecutionError(
                f"cannot compare {left!r} with {right!r}") from exc
    raise SqlExecutionError(f"unsupported condition {condition!r}")


def execute(database, statement: Statement) -> ResultSet:
    """Execute a parsed statement against ``database``."""
    if isinstance(statement, Select):
        return _execute_select(database, statement)
    if isinstance(statement, Insert):
        table = database.require_table(statement.table)
        for row in statement.rows:
            table.insert(dict(zip(statement.columns, row)))
        return ResultSet(["inserted"], [(len(statement.rows),)])
    if isinstance(statement, Update):
        table = database.require_table(statement.table)
        env_template = {statement.table.lower(): (table, None)}

        def predicate(row: list) -> bool:
            if statement.where is None:
                return True
            env = _Env({statement.table.lower(): (table, row)})
            return _eval_condition(statement.where, env)

        assignments = {table.column_index(name): value
                       for name, value in statement.assignments}
        del env_template
        updated = table.update_where(predicate, assignments)
        return ResultSet(["updated"], [(updated,)])
    if isinstance(statement, Delete):
        table = database.require_table(statement.table)

        def predicate(row: list) -> bool:
            if statement.where is None:
                return True
            env = _Env({statement.table.lower(): (table, row)})
            return _eval_condition(statement.where, env)

        deleted = table.delete_where(predicate)
        return ResultSet(["deleted"], [(deleted,)])
    if isinstance(statement, CreateTable):
        columns = [Column.of(c.name, c.type, c.not_null)
                   for c in statement.columns]
        database.create_table(statement.table, columns)
        return ResultSet(["created"], [(statement.table,)])
    if isinstance(statement, DropTable):
        database.drop_table(statement.table)
        return ResultSet(["dropped"], [(statement.table,)])
    if isinstance(statement, RenameColumn):
        database.require_table(statement.table).rename_column(
            statement.old, statement.new)
        return ResultSet(["renamed"], [(statement.new,)])
    if isinstance(statement, AddColumn):
        database.require_table(statement.table).add_column(
            Column.of(statement.column.name, statement.column.type,
                      statement.column.not_null))
        return ResultSet(["added"], [(statement.column.name,)])
    if isinstance(statement, CreateIndex):
        database.require_table(statement.table).create_index(statement.column)
        return ResultSet(["indexed"], [(statement.column,)])
    raise SqlExecutionError(f"unsupported statement {statement!r}")


# ---------------------------------------------------------------------------
# SELECT machinery
# ---------------------------------------------------------------------------

def _execute_select(database, select: Select) -> ResultSet:
    base_table = database.require_table(select.table.name)
    base_binding = select.table.binding.lower()

    # Seed rows, using an index for simple `col = literal` WHERE when possible.
    rows: list[dict[str, tuple[Table, list]]] = []
    seed_rows = _indexed_seed(base_table, base_binding, select.where)
    for row in (seed_rows if seed_rows is not None else base_table.rows):
        rows.append({base_binding: (base_table, row)})

    for join in select.joins:
        join_table = database.require_table(join.table.name)
        join_binding = join.table.binding.lower()
        rows = _execute_join(rows, join, join_table, join_binding)

    if select.where is not None:
        rows = [bindings for bindings in rows
                if _eval_condition(select.where, _Env(bindings))]

    if select.group_by or _has_aggregates(select):
        return _execute_grouped(select, rows)

    columns, extractors = _projection(select, rows)
    projected = [tuple(extract(_Env(bindings)) for extract in extractors)
                 for bindings in rows]

    if select.distinct:
        # Dedup keeps the first occurrence of each projected tuple AND
        # its source bindings, so a later ORDER BY still sorts every
        # surviving tuple by its own underlying row.
        seen: set = set()
        kept_rows, kept_projected = [], []
        for bindings, values in zip(rows, projected):
            if values in seen:
                continue
            seen.add(values)
            kept_rows.append(bindings)
            kept_projected.append(values)
        rows, projected = kept_rows, kept_projected

    if select.order_by:
        env_rows = list(zip(rows, projected))
        for item in reversed(select.order_by):
            env_rows.sort(
                key=lambda pair: _sort_key(_Env(pair[0]).lookup(item.column)),
                reverse=item.descending)
        projected = [p for _b, p in env_rows]

    if select.limit is not None:
        projected = projected[: select.limit]
    return ResultSet(columns, projected)


def _indexed_seed(table: Table, binding: str, where) -> list[list] | None:
    """Use a hash index for a top-level `col = literal` conjunct."""
    def find_equality(condition) -> tuple[str, object] | None:
        if isinstance(condition, Comparison) and condition.operator == "=":
            left, right = condition.left, condition.right
            if isinstance(left, ColumnRef) and isinstance(right, LiteralValue):
                ref, literal = left, right
            elif isinstance(right, ColumnRef) and isinstance(left, LiteralValue):
                ref, literal = right, left
            else:
                return None
            if ref.table is not None and ref.table.lower() != binding:
                return None
            if table.has_column(ref.name) and table.has_index(ref.name):
                return ref.name, literal.value
            return None
        if isinstance(condition, BooleanOp) and condition.operator == "AND":
            return (find_equality(condition.left)
                    or find_equality(condition.right))
        return None

    if where is None:
        return None
    hit = find_equality(where)
    if hit is None:
        return None
    column, value = hit
    return table.indexed_lookup(column, value)


def _execute_join(rows, join, join_table: Table, join_binding: str):
    equality = _join_equality(join.condition, join_binding, join_table)
    result = []
    if equality is not None:
        outer_ref, inner_column = equality
        buckets: dict[object, list[list]] = {}
        inner_index = join_table.column_index(inner_column)
        for inner_row in join_table.rows:
            key = inner_row[inner_index]
            if key is None:
                continue  # SQL: NULL = NULL is not a match
            buckets.setdefault(key, []).append(inner_row)
        for bindings in rows:
            key = _Env(bindings).lookup(outer_ref)
            matches = buckets.get(key, []) if key is not None else []
            for inner_row in matches:
                merged = dict(bindings)
                merged[join_binding] = (join_table, inner_row)
                result.append(merged)
            if not matches and join.kind == "LEFT":
                merged = dict(bindings)
                merged[join_binding] = (join_table, None)
                result.append(merged)
        return result
    for bindings in rows:
        matched = False
        for inner_row in join_table.rows:
            merged = dict(bindings)
            merged[join_binding] = (join_table, inner_row)
            if _eval_condition(join.condition, _Env(merged)):
                result.append(merged)
                matched = True
        if not matched and join.kind == "LEFT":
            merged = dict(bindings)
            merged[join_binding] = (join_table, None)
            result.append(merged)
    return result


def _join_equality(condition, join_binding: str, join_table: Table):
    """Detect `outer.col = inner.col` to enable a hash join."""
    if not isinstance(condition, Comparison) or condition.operator != "=":
        return None
    left, right = condition.left, condition.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None

    def is_inner(ref: ColumnRef) -> bool:
        if ref.table is not None:
            return ref.table.lower() == join_binding
        return join_table.has_column(ref.name)

    left_inner, right_inner = is_inner(left), is_inner(right)
    if left_inner and not right_inner:
        return right, left.name
    if right_inner and not left_inner:
        return left, right.name
    return None


def _has_aggregates(select: Select) -> bool:
    return any(isinstance(item.expression, Aggregate) for item in select.items)


def _projection(select: Select, rows):
    """Column labels + per-row extractor callables for plain SELECT."""
    columns: list[str] = []
    extractors = []
    for item in select.items:
        expr = item.expression
        if isinstance(expr, Star):
            if not rows:
                # No rows to introspect; star yields whatever tables hold.
                pass
            bindings = rows[0] if rows else {}
            for binding, (table, _row) in bindings.items():
                for column in table.column_names():
                    columns.append(column)
                    extractors.append(
                        lambda env, b=binding, c=column:
                        env.lookup(ColumnRef(c, b)))
            if not rows:
                columns.append("*")
                extractors.append(lambda env: None)
        elif isinstance(expr, ColumnRef):
            columns.append(item.alias or expr.name)
            extractors.append(lambda env, ref=expr: env.lookup(ref))
        else:
            raise SqlExecutionError(
                "aggregate in non-grouped projection path")
    return columns, extractors


def _sort_key(value):
    """Total order with NULLs first and mixed types grouped by type name."""
    return (value is not None, type(value).__name__, value)


def _execute_grouped(select: Select, rows) -> ResultSet:
    group_refs = list(select.group_by)
    groups: dict[tuple, list] = {}
    for bindings in rows:
        env = _Env(bindings)
        key = tuple(env.lookup(ref) for ref in group_refs)
        groups.setdefault(key, []).append(bindings)
    if not group_refs and not groups:
        groups[()] = []  # aggregates over an empty input still yield one row

    columns: list[str] = []
    for item in select.items:
        expr = item.expression
        if isinstance(expr, Aggregate):
            default = (f"{expr.function.lower()}"
                       f"({expr.argument.name if expr.argument else '*'})")
            columns.append(item.alias or expr.alias or default)
        elif isinstance(expr, ColumnRef):
            if not any(expr.name == ref.name for ref in group_refs):
                raise SqlExecutionError(
                    f"column {expr.name!r} must appear in GROUP BY")
            columns.append(item.alias or expr.name)
        else:
            raise SqlExecutionError("SELECT * is invalid with GROUP BY")

    result_rows: list[tuple] = []
    for key, members in groups.items():
        out: list = []
        for item in select.items:
            expr = item.expression
            if isinstance(expr, ColumnRef):
                position = next(i for i, ref in enumerate(group_refs)
                                if ref.name == expr.name)
                out.append(key[position])
            else:
                out.append(_aggregate_value(expr, members))
        row = tuple(out)
        if select.having is not None:
            # HAVING over aggregates: re-evaluate with aliases bound is out
            # of scope; we support HAVING on grouped columns only.
            env = _Env(members[0]) if members else None
            if env is None or not _eval_condition(select.having, env):
                continue
        result_rows.append(row)

    if select.order_by:
        for item in reversed(select.order_by):
            try:
                position = columns.index(item.column.name)
            except ValueError as exc:
                raise SqlExecutionError(
                    f"ORDER BY column {item.column.name!r} not in result") from exc
            result_rows.sort(key=lambda r: _sort_key(r[position]),
                             reverse=item.descending)
    if select.limit is not None:
        result_rows = result_rows[: select.limit]
    return ResultSet(columns, result_rows)


def _aggregate_value(aggregate: Aggregate, members):
    if aggregate.argument is None:
        values = [1 for _ in members]
    else:
        values = []
        for bindings in members:
            value = _Env(bindings).lookup(aggregate.argument)
            if value is not None:
                values.append(value)
    if aggregate.function == "COUNT":
        return len(values)
    if not values:
        return None
    if aggregate.function == "SUM":
        return sum(values)
    if aggregate.function == "AVG":
        return sum(values) / len(values)
    if aggregate.function == "MIN":
        return min(values)
    if aggregate.function == "MAX":
        return max(values)
    raise SqlExecutionError(f"unsupported aggregate {aggregate.function!r}")
