"""SQL AST node definitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


# -- scalar expressions ------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ColumnRef:
    name: str
    table: str | None = None  # optional qualifier

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True, slots=True)
class LiteralValue:
    value: object  # int | float | str | bool | None


@dataclass(frozen=True, slots=True)
class Comparison:
    operator: str  # = != < > <= >= LIKE
    left: "Scalar"
    right: "Scalar"


@dataclass(frozen=True, slots=True)
class InList:
    operand: "Scalar"
    options: tuple["Scalar", ...]
    negated: bool = False


@dataclass(frozen=True, slots=True)
class IsNull:
    operand: "Scalar"
    negated: bool = False


@dataclass(frozen=True, slots=True)
class BooleanOp:
    operator: str  # AND | OR
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True, slots=True)
class Not:
    operand: "Condition"


Scalar = Union[ColumnRef, LiteralValue]
Condition = Union[Comparison, InList, IsNull, BooleanOp, Not]


# -- select ------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Aggregate:
    function: str  # COUNT SUM AVG MIN MAX
    argument: ColumnRef | None  # None means COUNT(*)
    alias: str | None = None


@dataclass(frozen=True, slots=True)
class SelectItem:
    expression: Union[ColumnRef, Aggregate, "Star"]
    alias: str | None = None


@dataclass(frozen=True, slots=True)
class Star:
    table: str | None = None  # t.* when set


@dataclass(frozen=True, slots=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is referenced by (alias or table name)."""
        return self.alias or self.name


@dataclass(frozen=True, slots=True)
class Join:
    table: TableRef
    kind: str  # INNER | LEFT
    condition: Condition


@dataclass(frozen=True, slots=True)
class OrderItem:
    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True, slots=True)
class Select:
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[Join, ...] = ()
    where: Condition | None = None
    group_by: tuple[ColumnRef, ...] = ()
    having: Condition | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


# -- DML / DDL ----------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]


@dataclass(frozen=True, slots=True)
class Update:
    table: str
    assignments: tuple[tuple[str, object], ...]
    where: Condition | None = None


@dataclass(frozen=True, slots=True)
class Delete:
    table: str
    where: Condition | None = None


@dataclass(frozen=True, slots=True)
class ColumnDef:
    name: str
    type: str
    not_null: bool = False


@dataclass(frozen=True, slots=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True, slots=True)
class DropTable:
    table: str


@dataclass(frozen=True, slots=True)
class RenameColumn:
    table: str
    old: str
    new: str


@dataclass(frozen=True, slots=True)
class AddColumn:
    table: str
    column: ColumnDef


@dataclass(frozen=True, slots=True)
class CreateIndex:
    table: str
    column: str


Statement = Union[Select, Insert, Update, Delete, CreateTable, DropTable,
                  RenameColumn, AddColumn, CreateIndex]
