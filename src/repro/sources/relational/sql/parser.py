"""Recursive-descent SQL parser."""

from __future__ import annotations

from ....errors import SqlSyntaxError
from .ast import (AddColumn, Aggregate, BooleanOp, ColumnDef, ColumnRef,
                  Comparison, Condition, CreateIndex, CreateTable, Delete,
                  DropTable, InList, Insert, IsNull, LiteralValue, Join, Not,
                  OrderItem, RenameColumn, Scalar, Select, SelectItem, Star,
                  Statement, TableRef, Update)
from .lexer import Token, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class _Parser:
    def __init__(self, statement: str) -> None:
        self.statement = statement
        self.tokens = tokenize(statement)
        self.index = 0

    # -- plumbing ---------------------------------------------------------

    def error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(f"{message} in SQL {self.statement!r}")

    def peek(self) -> Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of statement")
        self.index += 1
        return token

    def accept_keyword(self, *words: str) -> str | None:
        token = self.peek()
        if token is not None and token.kind == "keyword" and token.value in words:
            self.index += 1
            return token.value
        return None

    def expect_keyword(self, word: str) -> None:
        token = self.next()
        if token.kind != "keyword" or token.value != word:
            raise self.error(f"expected {word}, got {token.value!r}")

    def accept(self, kind: str) -> Token | None:
        token = self.peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise self.error(f"expected {kind}, got {token.value!r}")
        return token

    def expect_name(self) -> str:
        return self.expect("name").value

    # -- entry point --------------------------------------------------------

    def parse(self) -> Statement:
        token = self.peek()
        if token is None:
            raise self.error("empty statement")
        if token.kind != "keyword":
            raise self.error(f"expected statement keyword, got {token.value!r}")
        dispatch = {
            "SELECT": self.select,
            "INSERT": self.insert,
            "UPDATE": self.update,
            "DELETE": self.delete,
            "CREATE": self.create,
            "DROP": self.drop,
            "ALTER": self.alter,
        }.get(token.value)
        if dispatch is None:
            raise self.error(f"unsupported statement: {token.value}")
        statement = dispatch()
        self.accept("semi")
        if self.peek() is not None:
            raise self.error(f"trailing tokens at {self.peek().value!r}")
        return statement

    # -- SELECT ---------------------------------------------------------

    def select(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        items = [self.select_item()]
        while self.accept("comma"):
            items.append(self.select_item())
        self.expect_keyword("FROM")
        table = self.table_ref()
        joins: list[Join] = []
        while True:
            kind = self.accept_keyword("JOIN", "INNER", "LEFT")
            if kind is None:
                break
            if kind in ("INNER", "LEFT"):
                self.expect_keyword("JOIN")
            join_kind = "LEFT" if kind == "LEFT" else "INNER"
            join_table = self.table_ref()
            self.expect_keyword("ON")
            condition = self.condition()
            joins.append(Join(join_table, join_kind, condition))
        where = None
        if self.accept_keyword("WHERE"):
            where = self.condition()
        group_by: list[ColumnRef] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.column_ref())
            while self.accept("comma"):
                group_by.append(self.column_ref())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.condition()
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.order_item())
            while self.accept("comma"):
                order_by.append(self.order_item())
        limit = None
        if self.accept_keyword("LIMIT"):
            limit_token = self.expect("number")
            limit = int(limit_token.value)
        return Select(tuple(items), table, tuple(joins), where,
                      tuple(group_by), having, tuple(order_by), limit,
                      distinct)

    def select_item(self) -> SelectItem:
        token = self.peek()
        if token is not None and token.kind == "star":
            self.index += 1
            return SelectItem(Star())
        if (token is not None and token.kind == "name"
                and token.value.upper() in _AGGREGATES
                and self._lookahead("lparen")):
            function = self.next().value.upper()
            self.expect("lparen")
            if self.accept("star"):
                argument = None
            else:
                argument = self.column_ref()
            self.expect("rparen")
            alias = self._alias()
            return SelectItem(Aggregate(function, argument, alias), alias)
        column = self.column_ref()
        star = self.peek()
        if (column.table is None and star is not None and star.kind == "star"
                and self.tokens[self.index - 1].kind == "dot"):
            # (unreachable with current column_ref; kept for clarity)
            pass
        alias = self._alias()
        return SelectItem(column, alias)

    def _alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_name()
        token = self.peek()
        if token is not None and token.kind == "name":
            self.index += 1
            return token.value
        return None

    def _lookahead(self, kind: str) -> bool:
        if self.index + 1 < len(self.tokens):
            return self.tokens[self.index + 1].kind == kind
        return False

    def table_ref(self) -> TableRef:
        name = self.expect_name()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_name()
        else:
            token = self.peek()
            if token is not None and token.kind == "name":
                self.index += 1
                alias = token.value
        return TableRef(name, alias)

    def order_item(self) -> OrderItem:
        column = self.column_ref()
        if self.accept_keyword("DESC"):
            return OrderItem(column, True)
        self.accept_keyword("ASC")
        return OrderItem(column, False)

    def column_ref(self) -> ColumnRef:
        first = self.expect_name()
        if self.accept("dot"):
            token = self.peek()
            if token is not None and token.kind == "star":
                raise self.error("qualified star is only valid as t.* in "
                                 "select list (unsupported)")
            second = self.expect_name()
            return ColumnRef(second, first)
        return ColumnRef(first)

    # -- conditions --------------------------------------------------------

    def condition(self) -> Condition:
        return self.or_condition()

    def or_condition(self) -> Condition:
        left = self.and_condition()
        while self.accept_keyword("OR"):
            left = BooleanOp("OR", left, self.and_condition())
        return left

    def and_condition(self) -> Condition:
        left = self.not_condition()
        while self.accept_keyword("AND"):
            left = BooleanOp("AND", left, self.not_condition())
        return left

    def not_condition(self) -> Condition:
        if self.accept_keyword("NOT"):
            return Not(self.not_condition())
        return self.predicate()

    def predicate(self) -> Condition:
        if self.accept("lparen"):
            inner = self.condition()
            self.expect("rparen")
            return inner
        operand = self.scalar()
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT") is not None
            self.expect_keyword("NULL")
            return IsNull(operand, negated)
        negated = self.accept_keyword("NOT") is not None
        if self.accept_keyword("IN"):
            self.expect("lparen")
            options = [self.scalar()]
            while self.accept("comma"):
                options.append(self.scalar())
            self.expect("rparen")
            return InList(operand, tuple(options), negated)
        if self.accept_keyword("LIKE"):
            right = self.scalar()
            comparison: Condition = Comparison("LIKE", operand, right)
            return Not(comparison) if negated else comparison
        if negated:
            raise self.error("expected IN or LIKE after NOT")
        token = self.next()
        operators = {"eq": "=", "ne": "!=", "lt": "<", "gt": ">",
                     "le": "<=", "ge": ">="}
        operator = operators.get(token.kind)
        if operator is None:
            raise self.error(f"expected comparison operator, got {token.value!r}")
        return Comparison(operator, operand, self.scalar())

    def scalar(self) -> Scalar:
        token = self.peek()
        if token is None:
            raise self.error("expected value")
        if token.kind == "number":
            self.index += 1
            text = token.value
            return LiteralValue(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.index += 1
            return LiteralValue(token.value)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE", "NULL"):
            self.index += 1
            return LiteralValue({"TRUE": True, "FALSE": False,
                                 "NULL": None}[token.value])
        return self.column_ref()

    # -- DML ----------------------------------------------------------------

    def insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_name()
        self.expect("lparen")
        columns = [self.expect_name()]
        while self.accept("comma"):
            columns.append(self.expect_name())
        self.expect("rparen")
        self.expect_keyword("VALUES")
        rows: list[tuple[object, ...]] = []
        while True:
            self.expect("lparen")
            values = [self.literal_value()]
            while self.accept("comma"):
                values.append(self.literal_value())
            self.expect("rparen")
            if len(values) != len(columns):
                raise self.error(
                    f"INSERT has {len(columns)} columns but {len(values)} values")
            rows.append(tuple(values))
            if not self.accept("comma"):
                break
        return Insert(table, tuple(columns), tuple(rows))

    def literal_value(self) -> object:
        scalar = self.scalar()
        if not isinstance(scalar, LiteralValue):
            raise self.error("expected literal value")
        return scalar.value

    def update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_name()
        self.expect_keyword("SET")
        assignments: list[tuple[str, object]] = []
        while True:
            column = self.expect_name()
            token = self.next()
            if token.kind != "eq":
                raise self.error(f"expected '=', got {token.value!r}")
            assignments.append((column, self.literal_value()))
            if not self.accept("comma"):
                break
        where = self.condition() if self.accept_keyword("WHERE") else None
        return Update(table, tuple(assignments), where)

    def delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_name()
        where = self.condition() if self.accept_keyword("WHERE") else None
        return Delete(table, where)

    # -- DDL ----------------------------------------------------------------

    def create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("INDEX"):
            self.expect_keyword("ON")
            table = self.expect_name()
            self.expect("lparen")
            column = self.expect_name()
            self.expect("rparen")
            return CreateIndex(table, column)
        self.expect_keyword("TABLE")
        table = self.expect_name()
        self.expect("lparen")
        columns = [self.column_def()]
        while self.accept("comma"):
            columns.append(self.column_def())
        self.expect("rparen")
        return CreateTable(table, tuple(columns))

    def column_def(self) -> ColumnDef:
        name = self.expect_name()
        type_token = self.next()
        if type_token.kind not in ("name", "keyword"):
            raise self.error(f"expected column type, got {type_token.value!r}")
        declared = type_token.value
        if self.accept("lparen"):
            self.expect("number")
            self.expect("rparen")
        not_null = False
        if self.accept_keyword("NOT"):
            self.expect_keyword("NULL")
            not_null = True
        if self.accept_keyword("PRIMARY"):
            self.expect_keyword("KEY")
            not_null = True
        return ColumnDef(name, declared, not_null)

    def drop(self) -> DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        return DropTable(self.expect_name())

    def alter(self) -> Statement:
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        table = self.expect_name()
        if self.accept_keyword("RENAME"):
            self.expect_keyword("COLUMN")
            old = self.expect_name()
            self.expect_keyword("TO")
            new = self.expect_name()
            return RenameColumn(table, old, new)
        if self.accept_keyword("ADD"):
            self.accept_keyword("COLUMN")
            return AddColumn(table, self.column_def())
        raise self.error("expected RENAME COLUMN or ADD COLUMN")


def parse_sql(statement: str) -> Statement:
    """Parse one SQL statement into its AST."""
    if not statement or not statement.strip():
        raise SqlSyntaxError("empty SQL statement")
    return _Parser(statement).parse()
