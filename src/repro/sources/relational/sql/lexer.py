"""SQL tokenizer."""

from __future__ import annotations

import re
from dataclasses import dataclass

from ....errors import SqlSyntaxError

KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "INSERT", "INTO",
    "VALUES", "CREATE", "TABLE", "DROP", "ALTER", "RENAME", "COLUMN",
    "ADD", "UPDATE", "SET", "DELETE", "JOIN", "INNER", "LEFT", "ON",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "GROUP", "HAVING", "DISTINCT",
    "AS", "LIKE", "IN", "IS", "NULL", "TRUE", "FALSE", "INDEX",
    "PRIMARY", "KEY", "TO",
})

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ne><>|!=)
  | (?P<le><=) | (?P<ge>>=)
  | (?P<eq>=) | (?P<lt><) | (?P<gt>>)
  | (?P<lparen>\() | (?P<rparen>\))
  | (?P<comma>,) | (?P<dot>\.) | (?P<star>\*) | (?P<semi>;)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*|"[^"]+")
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token (kind, text, offset)."""
    kind: str  # keyword | name | number | string | operator kinds
    value: str
    position: int


def tokenize(statement: str) -> list[Token]:
    """Tokenize one SQL statement; keywords are case-insensitive."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(statement):
        match = _TOKEN_RE.match(statement, pos)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {statement[pos]!r} at offset {pos}")
        kind = match.lastgroup or ""
        if kind != "ws":
            value = match.group()
            if kind == "name":
                if value.startswith('"'):
                    tokens.append(Token("name", value[1:-1], pos))
                elif value.upper() in KEYWORDS:
                    tokens.append(Token("keyword", value.upper(), pos))
                else:
                    tokens.append(Token("name", value, pos))
            elif kind == "string":
                tokens.append(Token("string", value[1:-1].replace("''", "'"), pos))
            else:
                tokens.append(Token(kind, value, pos))
        pos = match.end()
    return tokens
