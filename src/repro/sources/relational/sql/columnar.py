"""Vectorized columnar SELECT execution.

Operators work on batches of row positions instead of one row at a
time: the scan yields contiguous position batches (``BATCH_SIZE`` rows),
the filter evaluates the WHERE tree into a boolean mask per batch and
collapses it to a selection vector, and projection materializes output
tuples late — gathering only the selected positions of the referenced
columns.  Aggregation buckets positions by group key and folds each
group's gathered values with the same accumulators as the row engine.

The row executor in :mod:`.executor` is the semantics oracle: for every
query the columnar result must be row-for-row identical (the
differential suite in ``tests/sources/test_sql_differential.py`` checks
this property).  Three deliberate consequences:

* joins are not vectorized — a SELECT with joins falls back to the row
  engine (recorded in the plan report);
* a batch whose eager predicate evaluation raises ``TypeError`` re-runs
  row-at-a-time, reproducing the row engine's short-circuit behaviour
  and its exact ``cannot compare`` error;
* column-resolution errors surface only when rows actually flow, just
  as the row engine's lazy per-row lookups do.

Each execution returns the :class:`ResultSet` plus a
:class:`PlanReport` carrying the operator chain with batch counts and
selectivity — rendered by ``explain_sql`` and surfaced as span
annotations / metrics by the relational source.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

from ....errors import SqlExecutionError
from .ast import (Aggregate, BooleanOp, ColumnRef, Comparison, InList,
                  IsNull, LiteralValue, Not, Select, Star)
from .executor import (ResultSet, _Env, _eval_condition, _like_to_regex,
                       _sort_key, execute)

#: Rows per scan batch; one mask evaluation covers one batch.
BATCH_SIZE = 4096

_COMPARE = {"=": operator.eq, "!=": operator.ne, "<": operator.lt,
            ">": operator.gt, "<=": operator.le, ">=": operator.ge}


@dataclass
class OperatorStats:
    """One operator in an executed plan."""

    name: str
    detail: str = ""
    rows_in: int | None = None
    rows_out: int | None = None

    def render(self) -> str:
        parts = [self.name]
        if self.detail:
            parts.append(self.detail)
        stats = []
        if self.rows_in is not None:
            stats.append(f"in={self.rows_in}")
        if self.rows_out is not None:
            stats.append(f"out={self.rows_out}")
        if self.rows_in is not None and self.rows_out is not None:
            ratio = self.rows_out / self.rows_in if self.rows_in else 0.0
            stats.append(f"selectivity={ratio:.3f}")
        if stats:
            parts.append(f"[{', '.join(stats)}]")
        return " ".join(parts)


@dataclass
class PlanReport:
    """The executed operator chain plus scan-level counters."""

    engine: str
    table: str
    rows_total: int
    rows_scanned: int
    batches: int
    batch_size: int = BATCH_SIZE
    operators: list[OperatorStats] = field(default_factory=list)
    fallback: str | None = None

    def summary(self) -> str:
        """Compact operator chain, e.g. ``scan>filter>project``."""
        if self.fallback:
            return f"fallback({self.fallback})"
        return ">".join(op.name for op in self.operators)

    def render(self) -> str:
        """Multi-line plan: one header line, one line per operator."""
        header = (f"engine={self.engine} table={self.table} "
                  f"rows={self.rows_total} batch_size={self.batch_size} "
                  f"batches={self.batches}")
        if self.fallback:
            return f"{header}\nfallback: {self.fallback}"
        return "\n".join([header] + [op.render() for op in self.operators])


def render_condition(condition) -> str:
    """SQL-ish text for a condition tree (used in plan rendering)."""
    if isinstance(condition, BooleanOp):
        return (f"({render_condition(condition.left)} {condition.operator} "
                f"{render_condition(condition.right)})")
    if isinstance(condition, Not):
        return f"(NOT {render_condition(condition.operand)})"
    if isinstance(condition, IsNull):
        middle = "IS NOT NULL" if condition.negated else "IS NULL"
        return f"({_render_scalar(condition.operand)} {middle})"
    if isinstance(condition, InList):
        options = ", ".join(_render_scalar(o) for o in condition.options)
        middle = "NOT IN" if condition.negated else "IN"
        return f"({_render_scalar(condition.operand)} {middle} ({options}))"
    if isinstance(condition, Comparison):
        return (f"({_render_scalar(condition.left)} {condition.operator} "
                f"{_render_scalar(condition.right)})")
    return repr(condition)


def _render_scalar(scalar) -> str:
    if isinstance(scalar, ColumnRef):
        return f"{scalar.table}.{scalar.name}" if scalar.table else scalar.name
    value = scalar.value
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)


# ---------------------------------------------------------------------------
# Column resolution (matching the row engine's lazy lookup errors)
# ---------------------------------------------------------------------------

def _resolve_column(table, binding: str, ref: ColumnRef) -> int:
    if ref.table is not None:
        if ref.table.lower() != binding:
            raise SqlExecutionError(f"unknown table alias {ref.table!r}")
        return table.column_index(ref.name)
    if not table.has_column(ref.name):
        raise SqlExecutionError(f"unknown column {ref.name!r}")
    return table.column_index(ref.name)


# ---------------------------------------------------------------------------
# Vectorized predicate evaluation
# ---------------------------------------------------------------------------

def _scalar_batch(scalar, table, binding: str, positions, count: int) -> list:
    if isinstance(scalar, LiteralValue):
        return [scalar.value] * count
    if isinstance(scalar, ColumnRef):
        position = _resolve_column(table, binding, scalar)
        return table.column_data(position).gather(positions)
    raise SqlExecutionError(f"unsupported scalar {scalar!r}")


def _compare_batch(condition: Comparison, table, binding: str, positions,
                   count: int) -> list[bool]:
    left, right = condition.left, condition.right
    if condition.operator == "LIKE":
        if isinstance(right, LiteralValue):
            if right.value is None:
                return [False] * count
            regex = _like_to_regex(str(right.value))
            values = _scalar_batch(left, table, binding, positions, count)
            return [v is not None and regex.match(str(v)) is not None
                    for v in values]
        left_values = _scalar_batch(left, table, binding, positions, count)
        right_values = _scalar_batch(right, table, binding, positions, count)
        return [lv is not None and rv is not None
                and _like_to_regex(str(rv)).match(str(lv)) is not None
                for lv, rv in zip(left_values, right_values)]
    compare = _COMPARE[condition.operator]
    if isinstance(right, LiteralValue):
        if right.value is None:
            return [False] * count
        constant = right.value
        values = _scalar_batch(left, table, binding, positions, count)
        return [v is not None and compare(v, constant) for v in values]
    if isinstance(left, LiteralValue):
        if left.value is None:
            return [False] * count
        constant = left.value
        values = _scalar_batch(right, table, binding, positions, count)
        return [v is not None and compare(constant, v) for v in values]
    left_values = _scalar_batch(left, table, binding, positions, count)
    right_values = _scalar_batch(right, table, binding, positions, count)
    return [lv is not None and rv is not None and compare(lv, rv)
            for lv, rv in zip(left_values, right_values)]


def _eval_batch(condition, table, binding: str, positions,
                count: int) -> list[bool]:
    """Boolean mask for ``condition`` over one batch of positions."""
    if isinstance(condition, BooleanOp):
        left = _eval_batch(condition.left, table, binding, positions, count)
        right = _eval_batch(condition.right, table, binding, positions, count)
        if condition.operator == "AND":
            return [a and b for a, b in zip(left, right)]
        return [a or b for a, b in zip(left, right)]
    if isinstance(condition, Not):
        return [not m for m in _eval_batch(condition.operand, table, binding,
                                           positions, count)]
    if isinstance(condition, IsNull):
        values = _scalar_batch(condition.operand, table, binding, positions,
                               count)
        if condition.negated:
            return [v is not None for v in values]
        return [v is None for v in values]
    if isinstance(condition, InList):
        values = _scalar_batch(condition.operand, table, binding, positions,
                               count)
        if all(isinstance(option, LiteralValue)
               for option in condition.options):
            options = [option.value for option in condition.options]
            if condition.negated:
                return [v not in options for v in values]
            return [v in options for v in values]
        option_columns = [_scalar_batch(option, table, binding, positions,
                                        count)
                          for option in condition.options]
        return [(value in [column[i] for column in option_columns])
                != condition.negated
                for i, value in enumerate(values)]
    if isinstance(condition, Comparison):
        return _compare_batch(condition, table, binding, positions, count)
    raise SqlExecutionError(f"unsupported condition {condition!r}")


def _vector_filter(table, binding: str, condition, candidates) -> list[int]:
    selection: list[int] = []
    total = len(candidates)
    for start in range(0, total, BATCH_SIZE):
        batch = candidates[start:start + BATCH_SIZE]
        mask = _eval_batch(condition, table, binding, batch, len(batch))
        selection.extend(position for position, keep in zip(batch, mask)
                         if keep)
    return selection


def _row_filter(table, binding: str, condition, candidates) -> list[int]:
    """Row-at-a-time fallback reproducing the row engine's short-circuit
    evaluation (and its exact ``cannot compare`` error, if any)."""
    rows = table.rows
    return [position for position in candidates
            if _eval_condition(condition,
                               _Env({binding: (table, rows[position])}))]


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def execute_columnar(database, select: Select) -> tuple[ResultSet, PlanReport]:
    """Run one SELECT through the vectorized engine.

    Returns the result plus the executed plan.  SELECTs with joins fall
    back to the row engine (joins are not vectorized) with the fallback
    recorded in the report.
    """
    table = database.require_table(select.table.name)
    if select.joins:
        result = execute(database, select)
        report = PlanReport(engine="columnar", table=table.name,
                            rows_total=len(table),
                            rows_scanned=len(table), batches=0,
                            fallback="join query -> row engine")
        return result, report
    binding = select.table.binding.lower()

    seed = _indexed_seed_positions(table, binding, select.where)
    candidates = range(len(table)) if seed is None else seed
    scanned = len(candidates)
    batches = (scanned + BATCH_SIZE - 1) // BATCH_SIZE
    report = PlanReport(engine="columnar", table=table.name,
                        rows_total=len(table), rows_scanned=scanned,
                        batches=batches)
    scan_detail = table.name if seed is None else f"{table.name} (index seed)"
    report.operators.append(OperatorStats(
        "scan", f"{scan_detail} batches={batches}", rows_out=scanned))

    if select.where is None:
        selection = list(candidates)
    else:
        try:
            selection = _vector_filter(table, binding, select.where,
                                       candidates)
        except TypeError:
            selection = _row_filter(table, binding, select.where, candidates)
        report.operators.append(OperatorStats(
            "filter", render_condition(select.where),
            rows_in=scanned, rows_out=len(selection)))

    if select.group_by or _has_aggregates(select):
        result = _grouped(select, table, binding, selection, report)
    else:
        result = _projected(select, table, binding, selection, report)
    return result, report


def _has_aggregates(select: Select) -> bool:
    return any(isinstance(item.expression, Aggregate)
               for item in select.items)


def _indexed_seed_positions(table, binding: str, where) -> list[int] | None:
    """Positions from a hash index for a top-level `col = literal`
    conjunct (the positional twin of the row engine's ``_indexed_seed``)."""
    def find_equality(condition):
        if isinstance(condition, Comparison) and condition.operator == "=":
            left, right = condition.left, condition.right
            if isinstance(left, ColumnRef) and isinstance(right, LiteralValue):
                ref, literal = left, right
            elif isinstance(right, ColumnRef) and isinstance(left,
                                                             LiteralValue):
                ref, literal = right, left
            else:
                return None
            if ref.table is not None and ref.table.lower() != binding:
                return None
            if table.has_column(ref.name) and table.has_index(ref.name):
                return ref.name, literal.value
            return None
        if isinstance(condition, BooleanOp) and condition.operator == "AND":
            return (find_equality(condition.left)
                    or find_equality(condition.right))
        return None

    if where is None:
        return None
    hit = find_equality(where)
    if hit is None:
        return None
    column, value = hit
    return table.indexed_positions(column, value)


# ---------------------------------------------------------------------------
# Plain projection path
# ---------------------------------------------------------------------------

def _projected(select: Select, table, binding: str, selection: list[int],
               report: PlanReport) -> ResultSet:
    columns: list[str] = []
    specs: list[int] = []  # output column -> table column position
    for item in select.items:
        expr = item.expression
        if isinstance(expr, Star):
            if selection:
                for position, name in enumerate(table.column_names()):
                    columns.append(name)
                    specs.append(position)
            else:
                # Row-engine quirk preserved: star over an empty result
                # has no rows to introspect and labels itself "*".
                columns.append("*")
        elif isinstance(expr, ColumnRef):
            columns.append(item.alias or expr.name)
            if selection:
                specs.append(_resolve_column(table, binding, expr))
        else:
            raise SqlExecutionError("aggregate in non-grouped projection path")

    if selection:
        gathered: dict[int, list] = {}
        for position in specs:
            if position not in gathered:
                gathered[position] = table.column_data(position).gather(
                    selection)
        projected = [tuple(values) for values
                     in zip(*(gathered[position] for position in specs))]
    else:
        projected = []

    if select.distinct:
        seen: set = set()
        kept_selection: list[int] = []
        kept_projected: list[tuple] = []
        for position, values in zip(selection, projected):
            if values in seen:
                continue
            seen.add(values)
            kept_selection.append(position)
            kept_projected.append(values)
        report.operators.append(OperatorStats(
            "distinct", rows_in=len(projected),
            rows_out=len(kept_projected)))
        selection, projected = kept_selection, kept_projected

    if select.order_by and selection:
        pairs = list(zip(selection, projected))
        for item in reversed(select.order_by):
            data = table.column_data(
                _resolve_column(table, binding, item.column))
            pairs.sort(key=lambda pair: _sort_key(data.get(pair[0])),
                       reverse=item.descending)
        projected = [values for _position, values in pairs]
    if select.order_by:
        report.operators.append(OperatorStats(
            "order_by", ", ".join(
                f"{_render_scalar(item.column)} "
                f"{'DESC' if item.descending else 'ASC'}"
                for item in select.order_by),
            rows_out=len(projected)))

    if select.limit is not None:
        projected = projected[: select.limit]
        report.operators.append(OperatorStats(
            "limit", str(select.limit), rows_out=len(projected)))
    report.operators.append(OperatorStats(
        "project", f"[{', '.join(columns)}]", rows_out=len(projected)))
    return ResultSet(columns, projected)


# ---------------------------------------------------------------------------
# Hash-group aggregation path
# ---------------------------------------------------------------------------

def _grouped(select: Select, table, binding: str, selection: list[int],
             report: PlanReport) -> ResultSet:
    group_refs = list(select.group_by)
    groups: dict[tuple, list[int]] = {}
    if selection:
        key_columns = [table.column_data(
            _resolve_column(table, binding, ref)).gather(selection)
            for ref in group_refs]
        for offset, position in enumerate(selection):
            key = tuple(column[offset] for column in key_columns)
            groups.setdefault(key, []).append(position)
    if not group_refs and not groups:
        groups[()] = []  # aggregates over an empty input still yield one row

    columns: list[str] = []
    for item in select.items:
        expr = item.expression
        if isinstance(expr, Aggregate):
            default = (f"{expr.function.lower()}"
                       f"({expr.argument.name if expr.argument else '*'})")
            columns.append(item.alias or expr.alias or default)
        elif isinstance(expr, ColumnRef):
            if not any(expr.name == ref.name for ref in group_refs):
                raise SqlExecutionError(
                    f"column {expr.name!r} must appear in GROUP BY")
            columns.append(item.alias or expr.name)
        else:
            raise SqlExecutionError("SELECT * is invalid with GROUP BY")

    result_rows: list[tuple] = []
    for key, members in groups.items():
        out: list = []
        for item in select.items:
            expr = item.expression
            if isinstance(expr, ColumnRef):
                position = next(i for i, ref in enumerate(group_refs)
                                if ref.name == expr.name)
                out.append(key[position])
            else:
                out.append(_aggregate_fold(expr, table, binding, members))
        row = tuple(out)
        if select.having is not None:
            # HAVING on grouped columns only, evaluated like the row
            # engine: against the group's first member.
            if not members:
                continue
            env = _Env({binding: (table, table.row_at(members[0]))})
            if not _eval_condition(select.having, env):
                continue
        result_rows.append(row)
    report.operators.append(OperatorStats(
        "aggregate",
        f"[{', '.join(columns)}]"
        + (f" group_by=[{', '.join(_render_scalar(ref) for ref in group_refs)}]"
           if group_refs else ""),
        rows_in=len(selection), rows_out=len(result_rows)))

    if select.order_by:
        for item in reversed(select.order_by):
            try:
                position = columns.index(item.column.name)
            except ValueError as exc:
                raise SqlExecutionError(
                    f"ORDER BY column {item.column.name!r} "
                    f"not in result") from exc
            result_rows.sort(key=lambda r: _sort_key(r[position]),
                             reverse=item.descending)
        report.operators.append(OperatorStats(
            "order_by", ", ".join(
                f"{_render_scalar(item.column)} "
                f"{'DESC' if item.descending else 'ASC'}"
                for item in select.order_by),
            rows_out=len(result_rows)))
    if select.limit is not None:
        result_rows = result_rows[: select.limit]
        report.operators.append(OperatorStats(
            "limit", str(select.limit), rows_out=len(result_rows)))
    return ResultSet(columns, result_rows)


def _aggregate_fold(aggregate: Aggregate, table, binding: str,
                    members: list[int]):
    if aggregate.argument is None:
        values = [1] * len(members)
    elif members:
        gathered = table.column_data(
            _resolve_column(table, binding, aggregate.argument)).gather(
                members)
        values = [value for value in gathered if value is not None]
    else:
        values = []
    if aggregate.function == "COUNT":
        return len(values)
    if not values:
        return None
    if aggregate.function == "SUM":
        return sum(values)
    if aggregate.function == "AVG":
        return sum(values) / len(values)
    if aggregate.function == "MIN":
        return min(values)
    if aggregate.function == "MAX":
        return max(values)
    raise SqlExecutionError(f"unsupported aggregate {aggregate.function!r}")
