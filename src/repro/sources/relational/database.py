"""Database catalog: named tables plus the SQL entry point."""

from __future__ import annotations

from ...errors import SqlError, SqlExecutionError
from .sql.ast import Aggregate, Select
from .sql.columnar import PlanReport, execute_columnar, render_condition
from .sql.executor import ResultSet, execute
from .sql.parser import parse_sql
from .table import Column, Table

#: Valid values for the SELECT execution engine knob.
ENGINES = ("row", "columnar")


def _check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise SqlError(f"unknown SQL engine {engine!r} "
                       f"(choose from {list(ENGINES)})")
    return engine


class Database:
    """A named collection of tables accepting SQL statements.

    The simulated "remote DBMS" of the B2B scenarios: organizations each
    hold a :class:`Database`, and the middleware's database extractor runs
    mapping-entry SQL against it through
    :class:`~repro.sources.relational.source.RelationalDataSource`.

    ``engine`` selects how SELECTs execute: ``"columnar"`` (default)
    runs the vectorized executor over column-major storage, ``"row"``
    the row-at-a-time oracle.  DML/DDL always take the row path — they
    mutate the table, there is nothing to vectorize.
    """

    def __init__(self, name: str = "default", *,
                 engine: str = "columnar") -> None:
        self.name = name
        self.engine = _check_engine(engine)
        self.last_plan: PlanReport | None = None
        self._tables: dict[str, Table] = {}

    # -- catalog ----------------------------------------------------------

    def create_table(self, name: str, columns: list[Column]) -> Table:
        """Add a table to the catalog."""
        key = name.lower()
        if key in self._tables:
            raise SqlExecutionError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if self._tables.pop(name.lower(), None) is None:
            raise SqlExecutionError(f"no such table: {name!r}")

    def require_table(self, name: str) -> Table:
        """Look up a table, raising with the catalog contents."""
        table = self._tables.get(name.lower())
        if table is None:
            raise SqlExecutionError(
                f"no such table: {name!r} (tables: {sorted(self._tables)})")
        return table

    def has_table(self, name: str) -> bool:
        """Whether the catalog holds ``name``."""
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(t.name for t in self._tables.values())

    # -- SQL ----------------------------------------------------------------

    def execute(self, sql: str, *, engine: str | None = None) -> ResultSet:
        """Parse and run one SQL statement.

        ``engine`` overrides the database's configured engine for this
        statement.  Columnar SELECTs record their executed plan on
        :attr:`last_plan`; every other path clears it.
        """
        return self.execute_statement(parse_sql(sql), engine=engine)

    def execute_statement(self, statement, *,
                          engine: str | None = None) -> ResultSet:
        """Run an already parsed statement (see :meth:`execute`)."""
        chosen = self.engine if engine is None else _check_engine(engine)
        if chosen == "columnar" and isinstance(statement, Select):
            result, self.last_plan = execute_columnar(self, statement)
            return result
        self.last_plan = None
        return execute(self, statement)

    def explain(self, sql: str, *, engine: str | None = None) -> str:
        """Render the operator plan for one statement without keeping
        its result: columnar SELECTs run and report batch counts and
        selectivity; row SELECTs render their static row-at-a-time
        shape; non-SELECTs report there is no plan."""
        statement = parse_sql(sql)
        chosen = self.engine if engine is None else _check_engine(engine)
        if not isinstance(statement, Select):
            return (f"engine={chosen} statement="
                    f"{type(statement).__name__} (no plan: not a SELECT)")
        if chosen == "columnar":
            _result, report = execute_columnar(self, statement)
            return report.render()
        return _render_row_plan(self, statement)

    def executescript(self, script: str) -> list[ResultSet]:
        """Run several semicolon-separated statements."""
        results = []
        for statement in _split_statements(script):
            results.append(self.execute(statement))
        return results

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names()})"


def _render_row_plan(database: Database, select: Select) -> str:
    """Static plan shape for the row-at-a-time oracle (no batch stats —
    it has no batches)."""
    table = database.require_table(select.table.name)
    lines = [f"engine=row table={table.name} rows={len(table)}",
             f"scan {table.name} (row-at-a-time)"]
    for join in select.joins:
        lines.append(f"join {join.table.name} ({join.kind})")
    if select.where is not None:
        lines.append(f"filter {render_condition(select.where)}")
    if select.group_by or any(
            isinstance(item.expression, Aggregate) for item in select.items):
        lines.append("aggregate")
    if select.order_by:
        lines.append("order_by")
    lines.append("project")
    return "\n".join(lines)


def _split_statements(script: str) -> list[str]:
    """Split on semicolons outside single-quoted strings."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in script:
        if ch == "'":
            in_string = not in_string
            current.append(ch)
        elif ch == ";" and not in_string:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements
