"""Database catalog: named tables plus the SQL entry point."""

from __future__ import annotations

from ...errors import SqlExecutionError
from .sql.executor import ResultSet, execute
from .sql.parser import parse_sql
from .table import Column, Table


class Database:
    """A named collection of tables accepting SQL statements.

    The simulated "remote DBMS" of the B2B scenarios: organizations each
    hold a :class:`Database`, and the middleware's database extractor runs
    mapping-entry SQL against it through
    :class:`~repro.sources.relational.source.RelationalDataSource`.
    """

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    # -- catalog ----------------------------------------------------------

    def create_table(self, name: str, columns: list[Column]) -> Table:
        """Add a table to the catalog."""
        key = name.lower()
        if key in self._tables:
            raise SqlExecutionError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if self._tables.pop(name.lower(), None) is None:
            raise SqlExecutionError(f"no such table: {name!r}")

    def require_table(self, name: str) -> Table:
        """Look up a table, raising with the catalog contents."""
        table = self._tables.get(name.lower())
        if table is None:
            raise SqlExecutionError(
                f"no such table: {name!r} (tables: {sorted(self._tables)})")
        return table

    def has_table(self, name: str) -> bool:
        """Whether the catalog holds ``name``."""
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(t.name for t in self._tables.values())

    # -- SQL ----------------------------------------------------------------

    def execute(self, sql: str) -> ResultSet:
        """Parse and run one SQL statement."""
        return execute(self, parse_sql(sql))

    def executescript(self, script: str) -> list[ResultSet]:
        """Run several semicolon-separated statements."""
        results = []
        for statement in _split_statements(script):
            results.append(self.execute(statement))
        return results

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names()})"


def _split_statements(script: str) -> list[str]:
    """Split on semicolons outside single-quoted strings."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in script:
        if ch == "'":
            in_string = not in_string
            current.append(ch)
        elif ch == ";" and not in_string:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements
