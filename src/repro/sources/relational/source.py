"""The database connector implementing the DataSource protocol.

Carries the connection fields the paper lists for databases — "location,
login, password, and driver type" (section 2.3.2) — and runs SQL
extraction rules against the attached in-memory engine.  A source whose
credentials do not match its database raises on connect, modelling an
unreachable remote system (used by failure-injection tests).
"""

from __future__ import annotations

from ...errors import ExtractionError, S2SError
from ...obs.metrics import DEFAULT_REGISTRY, MetricsRegistry
from ..base import ConnectionInfo, DataSource, stable_digest
from .database import Database


class RelationalDataSource(DataSource):
    """A registered database behind SQL extraction rules.

    ``engine`` overrides the database's SELECT engine for rules run
    through this source (``None`` inherits the database's knob).  Each
    columnar execution feeds the ``sql_batches_total`` /
    ``sql_rows_scanned_total`` counters and leaves a plan digest that
    the extraction manager attaches to the rule's span (see
    :meth:`consume_execution_detail`).
    """

    source_type = "database"

    def __init__(self, source_id: str, database: Database, *,
                 location: str = "localhost", login: str = "s2s",
                 password: str = "s2s", driver: str = "repro-mem",
                 expected_password: str | None = None,
                 engine: str | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        super().__init__(source_id)
        self.database = database
        self.location = location
        self.login = login
        self.password = password
        self.driver = driver
        self.engine = engine
        # None means DEFAULT_REGISTRY, resolved at use time: the shard
        # ingest workers pickle sources, and a registry holds a lock.
        self.metrics = metrics
        self._expected_password = (expected_password if expected_password
                                   is not None else password)
        self._compiled: dict[str, object] = {}
        self._last_detail: dict[str, object] | None = None

    def connect(self) -> None:
        """Authenticate against the expected credentials."""
        if self.password != self._expected_password:
            raise S2SError(
                f"authentication failed for database source "
                f"{self.source_id!r} (login {self.login!r})")
        super().connect()

    def execute_rule(self, rule: str) -> list[str]:
        """Run a SQL extraction rule; each row's single column is a record.

        Multi-column results are an authoring error in the mapping (one
        extraction rule feeds exactly one attribute).
        """
        if not self.connected:
            self.connect()
        statement = self._compiled.get(rule)
        if statement is None:
            from .sql.parser import parse_sql
            statement = parse_sql(rule)
            self._compiled[rule] = statement
        result = self.database.execute_statement(statement,
                                                 engine=self.engine)
        self._record_plan(self.database.last_plan)
        if len(result.columns) != 1:
            raise ExtractionError(
                f"SQL extraction rule must select exactly one column, got "
                f"{result.columns}", source_id=self.source_id)
        return ["" if value is None else str(value)
                for value in result.scalars()]

    def explain_sql(self, sql: str) -> str:
        """Operator-plan rendering for one statement under this
        source's engine (see :meth:`Database.explain`)."""
        return self.database.explain(sql, engine=self.engine)

    def _record_plan(self, plan) -> None:
        if plan is None:
            self._last_detail = None
            return
        metrics = DEFAULT_REGISTRY if self.metrics is None else self.metrics
        metrics.counter(
            "sql_batches_total",
            "scan batches processed by the columnar SQL engine").inc(
                plan.batches, source=self.source_id)
        metrics.counter(
            "sql_rows_scanned_total",
            "rows scanned by the columnar SQL engine").inc(
                plan.rows_scanned, source=self.source_id)
        self._last_detail = {
            "sql_plan": plan.summary(),
            "sql_rows_scanned": plan.rows_scanned,
            "sql_batches": plan.batches,
        }

    def consume_execution_detail(self) -> dict[str, object] | None:
        """One-shot plan digest of the most recent rule execution (the
        extraction manager annotates the attempt span with it)."""
        detail = self._last_detail
        self._last_detail = None
        return detail

    def content_fingerprint(self) -> str | None:
        """Hash of the whole catalog: table schemas plus row data."""
        parts: list[str] = []
        for table_name in self.database.table_names():
            table = self.database.require_table(table_name)
            parts.append(table_name)
            parts.extend(f"{column.name}:{column.type}"
                         for column in table.columns)
            parts.extend(repr(row) for row in table.rows)
        return stable_digest(*parts)

    def connection_info(self) -> ConnectionInfo:
        """The paper's database fields: location/login/password/driver."""
        return ConnectionInfo(self.source_type, {
            "location": self.location,
            "login": self.login,
            "password": self.password,
            "driver": self.driver,
            "database": self.database.name,
        })
