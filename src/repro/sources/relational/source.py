"""The database connector implementing the DataSource protocol.

Carries the connection fields the paper lists for databases — "location,
login, password, and driver type" (section 2.3.2) — and runs SQL
extraction rules against the attached in-memory engine.  A source whose
credentials do not match its database raises on connect, modelling an
unreachable remote system (used by failure-injection tests).
"""

from __future__ import annotations

from ...errors import ExtractionError, S2SError
from ..base import ConnectionInfo, DataSource, stable_digest
from .database import Database


class RelationalDataSource(DataSource):
    """A registered database behind SQL extraction rules."""

    source_type = "database"

    def __init__(self, source_id: str, database: Database, *,
                 location: str = "localhost", login: str = "s2s",
                 password: str = "s2s", driver: str = "repro-mem",
                 expected_password: str | None = None) -> None:
        super().__init__(source_id)
        self.database = database
        self.location = location
        self.login = login
        self.password = password
        self.driver = driver
        self._expected_password = (expected_password if expected_password
                                   is not None else password)
        self._compiled: dict[str, object] = {}

    def connect(self) -> None:
        """Authenticate against the expected credentials."""
        if self.password != self._expected_password:
            raise S2SError(
                f"authentication failed for database source "
                f"{self.source_id!r} (login {self.login!r})")
        super().connect()

    def execute_rule(self, rule: str) -> list[str]:
        """Run a SQL extraction rule; each row's single column is a record.

        Multi-column results are an authoring error in the mapping (one
        extraction rule feeds exactly one attribute).
        """
        if not self.connected:
            self.connect()
        statement = self._compiled.get(rule)
        if statement is None:
            from .sql.parser import parse_sql
            statement = parse_sql(rule)
            self._compiled[rule] = statement
        from .sql.executor import execute
        result = execute(self.database, statement)
        if len(result.columns) != 1:
            raise ExtractionError(
                f"SQL extraction rule must select exactly one column, got "
                f"{result.columns}", source_id=self.source_id)
        return ["" if value is None else str(value)
                for value in result.scalars()]

    def content_fingerprint(self) -> str | None:
        """Hash of the whole catalog: table schemas plus row data."""
        parts: list[str] = []
        for table_name in self.database.table_names():
            table = self.database.require_table(table_name)
            parts.append(table_name)
            parts.extend(f"{column.name}:{column.type}"
                         for column in table.columns)
            parts.extend(repr(row) for row in table.rows)
        return stable_digest(*parts)

    def connection_info(self) -> ConnectionInfo:
        """The paper's database fields: location/login/password/driver."""
        return ConnectionInfo(self.source_type, {
            "location": self.location,
            "login": self.login,
            "password": self.password,
            "driver": self.driver,
            "database": self.database.name,
        })
