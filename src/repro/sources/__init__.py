"""Data-source substrates and connectors.

The paper's middleware integrates "structured (e.g. relational databases),
semistructured (e.g. XML) and unstructured (e.g. Web pages and plain text
files)" sources (section 2.1).  Each substrate here is a complete,
self-contained implementation of one source *technology*, plus a connector
class implementing the common :class:`repro.sources.base.DataSource`
protocol the Extractor Manager dispatches on:

* :mod:`repro.sources.relational` — in-memory relational engine + SQL;
* :mod:`repro.sources.xmlstore` — XML document store + XPath;
* :mod:`repro.sources.web` — simulated web (HTML pages behind URLs);
* :mod:`repro.sources.textfiles` — plain-text file store + regex rules.
"""

from .base import ConnectionInfo, DataSource

__all__ = ["DataSource", "ConnectionInfo"]
