"""Tag-soup tolerant HTML parsing.

Real-world B2B supplier pages are rarely well-formed, so unlike the strict
XML parser this one never fails: unknown entities pass through, unclosed
tags are implicitly closed, and stray ``</...>`` tags are dropped.  The
parser produces a lightweight node tree plus the helpers wrappers need:
plain-text rendering (WebL's ``Text``), tag search and attribute access.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_VOID_TAGS = frozenset({
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link",
    "meta", "param", "source", "track", "wbr",
})

#: Tags that implicitly close an open tag of the same name (simplified).
_AUTOCLOSE_SIBLINGS = frozenset({"p", "li", "tr", "td", "th", "option"})

_TAG_RE = re.compile(
    r"<(?P<close>/)?(?P<name>[A-Za-z][A-Za-z0-9]*)(?P<attrs>[^>]*?)(?P<self>/)?>"
    r"|<!--(?P<comment>.*?)-->"
    r"|<!(?P<decl>[^>]*)>",
    re.DOTALL,
)
_ATTR_RE = re.compile(
    r"""([A-Za-z_][A-Za-z0-9_\-:]*)\s*(?:=\s*("[^"]*"|'[^']*'|[^\s>]+))?""")

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'",
             "nbsp": " ", "copy": "©", "reg": "®",
             "eacute": "é", "mdash": "—", "ndash": "–"}


def decode_html_entities(text: str) -> str:
    """Decode the common named entities plus numeric references.

    Unknown entities are left as-is (tag-soup tolerance)."""
    def replace(match: re.Match) -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except ValueError:
                return match.group(0)
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except ValueError:
                return match.group(0)
        return _ENTITIES.get(body, match.group(0))

    return re.sub(r"&([A-Za-z]+|#[0-9]+|#[xX][0-9A-Fa-f]+);", replace, text)


@dataclass
class HtmlNode:
    """An HTML element node."""

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list = field(default_factory=list)  # HtmlNode | str
    parent: "HtmlNode | None" = None

    def append(self, child) -> None:
        """Attach a child node or raw text."""
        if isinstance(child, HtmlNode):
            child.parent = self
        self.children.append(child)

    def iter(self):
        """Depth-first iterator over this node and descendants."""
        yield self
        for child in self.children:
            if isinstance(child, HtmlNode):
                yield from child.iter()

    def find_all(self, tag: str) -> list["HtmlNode"]:
        """All descendant elements with the given tag."""
        return [node for node in self.iter()
                if node is not self and node.tag == tag]

    def find(self, tag: str) -> "HtmlNode | None":
        """First descendant element with the given tag, or None."""
        matches = self.find_all(tag)
        return matches[0] if matches else None

    def get(self, attribute: str, default: str | None = None) -> str | None:
        """Attribute value, or ``default``."""
        return self.attributes.get(attribute, default)

    def text(self) -> str:
        """Concatenated descendant text, entity-decoded."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(decode_html_entities(child))
            else:
                parts.append(child.text())
        return "".join(parts)


class HtmlDocument:
    """A parsed HTML page."""

    def __init__(self, root: HtmlNode, source: str) -> None:
        self.root = root
        self.source = source

    def find_all(self, tag: str) -> list[HtmlNode]:
        """All descendant elements with the given tag."""
        return self.root.find_all(tag)

    def find(self, tag: str) -> HtmlNode | None:
        """First descendant element with the given tag, or None."""
        return self.root.find(tag)

    def text(self) -> str:
        """The page rendered to plain text (WebL's ``Text`` operator):
        scripts/styles skipped, block tags become newlines, whitespace
        collapsed per line."""
        lines: list[str] = []
        buffer: list[str] = []
        block_tags = {"p", "div", "br", "tr", "li", "h1", "h2", "h3", "h4",
                      "table", "ul", "ol", "title"}

        def walk(node: HtmlNode) -> None:
            if node.tag in ("script", "style"):
                return
            if node.tag in block_tags and buffer:
                flush()
            for child in node.children:
                if isinstance(child, str):
                    buffer.append(decode_html_entities(child))
                else:
                    walk(child)
            if node.tag in block_tags and buffer:
                flush()

        def flush() -> None:
            line = " ".join("".join(buffer).split())
            if line:
                lines.append(line)
            buffer.clear()

        walk(self.root)
        flush()
        return "\n".join(lines)

    def title(self) -> str:
        """The page's <title> text, stripped."""
        node = self.find("title")
        return node.text().strip() if node is not None else ""


def parse_html(source: str) -> HtmlDocument:
    """Parse HTML into a node tree; never raises on malformed input."""
    root = HtmlNode("#document")
    stack = [root]
    pos = 0
    for match in _TAG_RE.finditer(source):
        if match.start() > pos:
            text = source[pos:match.start()]
            if text:
                stack[-1].append(text)
        pos = match.end()
        if match.group("comment") is not None or match.group("decl") is not None:
            continue
        name = match.group("name").lower()
        if match.group("close"):
            # Close the nearest matching open tag; drop strays.
            for depth in range(len(stack) - 1, 0, -1):
                if stack[depth].tag == name:
                    del stack[depth:]
                    break
            continue
        attributes: dict[str, str] = {}
        for attr_match in _ATTR_RE.finditer(match.group("attrs") or ""):
            attr_name = attr_match.group(1).lower()
            raw = attr_match.group(2)
            if raw is None:
                attributes[attr_name] = ""
            elif raw[:1] in "\"'":
                attributes[attr_name] = decode_html_entities(raw[1:-1])
            else:
                attributes[attr_name] = decode_html_entities(raw)
        if name in _AUTOCLOSE_SIBLINGS and stack[-1].tag == name:
            stack.pop()
        node = HtmlNode(name, attributes)
        stack[-1].append(node)
        if name not in _VOID_TAGS and not match.group("self"):
            stack.append(node)
    if pos < len(source):
        tail = source[pos:]
        if tail:
            stack[-1].append(tail)
    return HtmlDocument(root, source)
