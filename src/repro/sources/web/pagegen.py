"""Realistic product-page generation.

Real supplier pages bury their data in navigation, advertising, inline
scripts and sloppy markup.  These generators wrap product data in that
noise (seeded, deterministic) so wrapper robustness can be tested: the
extraction rules that work on the clean scenario pages must keep working
here, and the tag-soup HTML parser must not trip on the mess.
"""

from __future__ import annotations

import random

from ...workloads.catalog import ProductRecord

_NAV_ITEMS = ("Home", "Catalog", "Deals", "About us", "Contact",
              "Shipping", "Returns")
_AD_SLOGANS = ("Buy now & save!", "Free shipping over $50",
               "New arrivals — don't miss out", "Sale ends soon!!!")
_SCRIPT_NOISE = """<script type="text/javascript">
var trackingId = 'UA-%(n)s';
function track() { /* <td class="fake">not data</td> */ }
if (1 < 2 && 2 > 1) { track(); }
</script>"""


def _noise_block(rng: random.Random) -> str:
    """One chunk of non-data markup, intentionally sloppy."""
    kind = rng.randrange(5)
    if kind == 0:
        items = "".join(f"<li><a href='/{item.lower().replace(' ', '-')}'>"
                        f"{item}" for item in
                        rng.sample(_NAV_ITEMS, 4))  # unclosed <a>/<li>
        return f"<ul class=nav>{items}</ul>"
    if kind == 1:
        return (f'<div class="ad"><b>{rng.choice(_AD_SLOGANS)}</b>'
                "<img src='banner.gif'></div>")
    if kind == 2:
        return _SCRIPT_NOISE % {"n": rng.randrange(10_000, 99_999)}
    if kind == 3:
        return ("<!-- rendered by LegacyCMS 2.3 "
                '<td class="brand">COMMENTED OUT</td> -->')
    return ("<table class='layout'><tr><td>&nbsp;<td>"
            f"<font size=2>Item of the day: #{rng.randrange(100)}</font>"
            "</table>")  # unclosed td/tr


def render_noisy_product_page(product: ProductRecord, *,
                              seed: int = 7) -> str:
    """A single-record product page drowned in markup noise.

    Data cells use the same ``<span id="...">`` convention the clean
    pages use, so the same extraction rules apply."""
    rng = random.Random(seed ^ product.product_id)
    chunks = [
        "<html><head>",
        f"<title>{product.brand} {product.model} — MegaWatchStore</title>",
        "<style>.ad { color: red } td > span { font-weight: bold }</style>",
        "</head><body>",
        _noise_block(rng),
        _noise_block(rng),
        f"<h1>{product.brand} {product.model}</h1>",
        _noise_block(rng),
        '<div class="product-detail">',
        f'<span id="brand">{product.brand}</span>',
        _noise_block(rng),
        f'<span id="model">{product.model}</span>',
        f'<span id="case">{product.case}</span>',
        f'<span id="movement">{product.movement}</span>',
        f'<span id="water_resistance">{product.water_resistance}</span>',
        _noise_block(rng),
        f'<span id="price">{product.price:.2f}</span>',
        f'<span id="provider">{product.provider_name}</span>',
        f'<span id="provider_country">{product.provider_country}</span>',
        "</div>",
        _noise_block(rng),
        "<div class=footer>&copy; 2006 MegaWatchStore "
        "<a href='/terms'>Terms</body></html>",  # unclosed <a>, no </div>
    ]
    return "\n".join(chunks)


def render_noisy_catalog_page(products: list[ProductRecord], *,
                              seed: int = 7) -> str:
    """An n-record catalog table interleaved with noise rows."""
    rng = random.Random(seed)
    rows = []
    for product in products:
        if rng.random() < 0.4:
            rows.append(f"<tr class='spacer'><td colspan=4>"
                        f"{rng.choice(_AD_SLOGANS)}</tr>")
        rows.append(
            "<tr class='product'>"
            f'<td class="brand">{product.brand}</td>'
            f'<td class="model">{product.model}</td>'
            f'<td class="case">{product.case}</td>'
            f'<td class="price">{product.price:.2f}</td>'
            "</tr>")
    body = "".join(rows)
    return (f"<html><head><title>Catalog</title></head><body>"
            f"{_noise_block(rng)}<table class='products'>{body}</table>"
            f"{_noise_block(rng)}</body></html>")


#: WebL rule extracting one span-marked field from a noisy product page.
def span_rule(field: str) -> str:
    """WebL rule extracting one span-marked field from a noisy page."""
    return (
        'var P = GetURL(SourceURL());\n'
        f'var m = Str_Search(Text(P), `<span id="{field}">([^<]*)</span>`);\n'
        'var v = m[0][1];\n')
