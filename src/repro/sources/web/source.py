"""Web connector implementing the DataSource protocol.

A web source is one page (or site) on the simulated web; its extraction
rules are WebL programs (paper section 2.3.1: "the data source was a Web
page so the extraction rules were defined in a Web extraction language
(WebL)").  The connector binds ``GetURL`` to the simulated web and exposes
the source's own URL to rules as the ``SourceURL()`` builtin, so one WebL
file can serve many registered pages (the paper's ``watch.webl`` +
``wpage_81`` pairing).
"""

from __future__ import annotations

import asyncio

from ...errors import ExtractionError, WeblError
from ...webl.interpreter import WeblInterpreter
from ..base import ConnectionInfo, DataSource, stable_digest
from .site import SimulatedWeb


class WebDataSource(DataSource):
    """A registered web page behind WebL extraction rules."""

    source_type = "webpage"

    def __init__(self, source_id: str, web: SimulatedWeb, url: str) -> None:
        super().__init__(source_id)
        self.web = web
        self.url = url
        self._interpreter = WeblInterpreter(
            web.fetch, extra_builtins={"SourceURL": lambda: self.url})
        self._compiled: dict[str, object] = {}

    def __reduce__(self):
        """Rebuild from constructor args when pickled (subprocess
        workers): the interpreter's builtin closures and the compiled
        program cache don't pickle and are cheap to re-create."""
        return (self.__class__, (self.source_id, self.web, self.url))

    def connect(self) -> None:
        """Verify the page is reachable before extraction."""
        if not self.web.has(self.url):
            raise ExtractionError(
                f"page not reachable at {self.url}", source_id=self.source_id)
        super().connect()

    def _compile(self, rule: str):
        """Parse once per distinct rule text; programs are immutable ASTs."""
        program = self._compiled.get(rule)
        if program is None:
            from ...webl.parser import parse_webl
            program = parse_webl(rule)
            self._compiled[rule] = program
        return program

    def execute_rule(self, rule: str) -> list[str]:
        """Run a WebL program; a list result is n records, a scalar is 1."""
        if not self.connected:
            self.connect()
        try:
            program = self._compile(rule)
            result = self._interpreter.run(program)
        except WeblError as exc:
            raise ExtractionError(
                f"WebL rule failed: {exc}", source_id=self.source_id) from exc
        return self._records(result)

    async def aexecute_rule(self, rule: str) -> list[str]:
        """Awaitable twin of :meth:`execute_rule` for the asyncio engine.

        WebL programs are synchronous — ``GetURL`` calls happen mid-run,
        so the fetches cannot be awaited individually.  Instead the
        program runs on the loop against :meth:`SimulatedWeb.fetch_nowait`
        (counters move, no sleeping) and the simulated latency owed for
        the fetches is awaited *once* afterwards: same fetch accounting,
        same total elapsed time, but the event loop interleaves other
        sources during the wait instead of blocking a borrowed thread."""
        if not self.connected:
            self.connect()
        fetches = 0

        def fetch(url: str) -> str:
            nonlocal fetches
            fetches += 1
            return self.web.fetch_nowait(url)

        interpreter = WeblInterpreter(
            fetch, extra_builtins={"SourceURL": lambda: self.url})
        try:
            program = self._compile(rule)
            result = interpreter.run(program)
        except WeblError as exc:
            raise ExtractionError(
                f"WebL rule failed: {exc}", source_id=self.source_id) from exc
        owed = fetches * self.web.latency_seconds
        if owed > 0:
            await asyncio.sleep(owed)
        return self._records(result)

    def _records(self, result) -> list[str]:
        if result is None:
            return []
        if isinstance(result, list):
            return [self._render(item) for item in result]
        return [self._render(result)]

    @staticmethod
    def _render(value) -> str:
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    def content_fingerprint(self) -> str | None:
        """Hash of the page body, read without counting a fetch."""
        html = self.web.peek(self.url)
        if html is None:
            return None
        return stable_digest(self.url, html)

    def connection_info(self) -> ConnectionInfo:
        """The page URL (all a web source needs, per the paper)."""
        return ConnectionInfo(self.source_type, {"url": self.url})
