"""The simulated web: a URL → page registry with fetch semantics.

Substitutes the live HTTP fetches of the paper's WebL rules (DESIGN.md
section 3).  Fetch behaviour that matters to the middleware is modelled:

* unknown URLs raise :class:`~repro.errors.PageNotFoundError` (the 404
  path exercised by the Instance Generator's error channel);
* per-fetch latency can be simulated (deterministically) so end-to-end
  benchmarks can show where wall time goes;
* pages can be *mutated* after registration, modelling the paper's remark
  that "data sources do not normally change their structures (except
  perhaps Web pages)" — the drift experiment E9 rewrites pages through
  :meth:`SimulatedWeb.mutate`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ...errors import PageNotFoundError, WebError


@dataclass
class WebPage:
    """One registered page."""

    url: str
    html: str
    content_type: str = "text/html"
    fetch_count: int = field(default=0)


class SimulatedWeb:
    """An in-process 'internet' for the wrappers to crawl.

    Fetching is thread-safe: the middleware's parallel extraction mode
    fetches different sources' pages concurrently."""

    def __init__(self, *, latency_seconds: float = 0.0) -> None:
        self._pages: dict[str, WebPage] = {}
        self.latency_seconds = latency_seconds
        self.total_fetches = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Picklable for subprocess ingest workers (lock re-created on
        the other side).  The child gets a snapshot copy of the web:
        its fetch counters diverge from the parent's, which is why the
        coordinator commits store writes, not the workers."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @staticmethod
    def _normalize(url: str) -> str:
        if "://" not in url:
            raise WebError(f"URL must be absolute (scheme://host/...): {url!r}")
        return url.rstrip("/") if url.count("/") > 2 else url

    # -- publishing -------------------------------------------------------

    def publish(self, url: str, html: str,
                content_type: str = "text/html") -> WebPage:
        """Register (or replace) the page served at ``url``."""
        key = self._normalize(url)
        page = WebPage(key, html, content_type)
        self._pages[key] = page
        return page

    def unpublish(self, url: str) -> None:
        """Remove the page at ``url`` (simulates a 404)."""
        if self._pages.pop(self._normalize(url), None) is None:
            raise PageNotFoundError(url)

    def mutate(self, url: str, transform: Callable[[str], str]) -> None:
        """Rewrite a page in place (schema-drift injection)."""
        page = self._pages.get(self._normalize(url))
        if page is None:
            raise PageNotFoundError(url)
        page.html = transform(page.html)

    # -- fetching ---------------------------------------------------------

    def fetch(self, url: str) -> str:
        """GET the page body; the WebL ``GetURL`` builtin lands here."""
        html = self.fetch_nowait(url)
        if self.latency_seconds > 0:
            time.sleep(self.latency_seconds)
        return html

    def fetch_nowait(self, url: str) -> str:
        """GET the page body, deferring the simulated latency.

        Counts as a real fetch (counters move exactly like
        :meth:`fetch`) but does not sleep: callers that must not block —
        the web wrapper's ``aexecute_rule`` running WebL on an event
        loop — fetch through this and *owe* ``latency_seconds`` per
        call, awaiting the total afterwards."""
        with self._lock:
            page = self._pages.get(self._normalize(url))
            if page is None:
                raise PageNotFoundError(url)
            page.fetch_count += 1
            self.total_fetches += 1
            return page.html

    def peek(self, url: str) -> str | None:
        """The page body without counting a fetch or simulating latency.

        The semantic store's change detection hashes page content; a
        fingerprint probe must not perturb fetch counters (experiments
        assert on them) nor pay simulated network latency.  Returns
        None for unregistered URLs."""
        with self._lock:
            page = self._pages.get(self._normalize(url))
            return None if page is None else page.html

    def has(self, url: str) -> bool:
        """Whether a page is registered at ``url``."""
        return self._normalize(url) in self._pages

    def urls(self) -> list[str]:
        """All registered URLs, sorted."""
        return sorted(self._pages)

    def __len__(self) -> int:
        return len(self._pages)

    def __repr__(self) -> str:
        return f"SimulatedWeb(pages={len(self._pages)})"
