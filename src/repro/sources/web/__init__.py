"""Simulated web substrate.

Unstructured sources: HTML pages behind URLs.  The paper fetches live
pages with WebL's ``GetURL``; offline we substitute an in-process
:class:`SimulatedWeb` — a URL → page registry with an optional latency
model — so the wrapper code path (fetch, text rendering, regex extraction)
is identical while staying deterministic (see DESIGN.md section 3).
"""

from .html import HtmlDocument, parse_html
from .site import SimulatedWeb, WebPage
from .source import WebDataSource

__all__ = ["SimulatedWeb", "WebPage", "WebDataSource", "HtmlDocument",
           "parse_html"]
