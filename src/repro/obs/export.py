"""Exporters: traces and metrics as indented text or JSON.

The text trace renderer is what ``S2SMiddleware.explain(query)`` and the
CLI's ``--trace`` flag print — the executable analogue of the paper's
Figure 5 flow, one line per span with millisecond timings::

    query 'SELECT product'                      12.41ms
      parse                                      0.05ms
      plan                                       0.31ms  attributes=8
      extract                                   11.20ms  sources=2
        source database_0                        6.01ms
          entry thing.product.brand              0.74ms
            attempt #1                           0.71ms  outcome=ok
      ...
"""

from __future__ import annotations

import json
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .metrics import MetricsRegistry
    from .trace import Span, Trace

#: Attributes already shown elsewhere on the line.
_SKIP_ATTRS = ("error",)


def _format_attrs(attributes: dict[str, Any]) -> str:
    parts = [f"{name}={value!r}" if isinstance(value, str)
             else f"{name}={value}"
             for name, value in attributes.items()
             if name not in _SKIP_ATTRS]
    return "  " + " ".join(parts) if parts else ""


def render_span(span: "Span", *, indent: int = 0,
                duration_width: int = 10) -> list[str]:
    """Indented text lines for a span subtree."""
    label = "  " * indent + span.name
    duration = f"{span.duration_seconds * 1e3:{duration_width}.3f}ms"
    status = "" if span.status == "ok" else \
        f"  [{span.status}: {span.attributes.get('error', '')}]"
    lines = [f"{label:<44}{duration}{status}{_format_attrs(span.attributes)}"]
    for child in list(span.children):
        lines.extend(render_span(child, indent=indent + 1,
                                 duration_width=duration_width))
    return lines


def render_trace(trace: "Trace") -> str:
    """The whole trace as an indented span report."""
    return "\n".join(render_span(trace.root))


def trace_to_json(trace: "Trace", *, indent: int | None = 2) -> str:
    """The trace as a JSON document (span tree, seconds as floats)."""
    return json.dumps(trace.to_dict(), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# metrics


def _labels_text(label_key) -> str:
    if not label_key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in label_key)
    return "{" + inner + "}"


def render_metrics(registry: "MetricsRegistry") -> str:
    """Prometheus-like text exposition of every family in the registry."""
    from .metrics import Histogram
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help_text:
            lines.append(f"# HELP {metric.name} {metric.help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for label_key, series in metric.series():
                labels = dict(label_key)
                running = 0
                for bound, count in zip(metric.buckets,
                                        series.bucket_counts):
                    running += count
                    bucket_labels = _labels_text(
                        tuple(sorted({**labels, "le": f"{bound:g}"}.items())))
                    lines.append(f"{metric.name}_bucket{bucket_labels} "
                                 f"{running}")
                inf_labels = _labels_text(
                    tuple(sorted({**labels, "le": "+Inf"}.items())))
                lines.append(f"{metric.name}_bucket{inf_labels} "
                             f"{series.count}")
                plain = _labels_text(label_key)
                lines.append(f"{metric.name}_sum{plain} {series.total:g}")
                lines.append(f"{metric.name}_count{plain} {series.count}")
        else:
            for label_key, value in metric.series():
                lines.append(f"{metric.name}{_labels_text(label_key)} "
                             f"{value:g}")
    return "\n".join(lines)


def metrics_to_dict(registry: "MetricsRegistry") -> dict[str, Any]:
    """JSON-ready snapshot: family → kind + series list."""
    from .metrics import Histogram
    snapshot: dict[str, Any] = {}
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            series = [{"labels": dict(label_key), "count": s.count,
                       "sum": s.total,
                       "buckets": {f"{bound:g}": count
                                   for bound, count
                                   in zip(metric.buckets, s.bucket_counts)}}
                      for label_key, s in metric.series()]
        else:
            series = [{"labels": dict(label_key), "value": value}
                      for label_key, value in metric.series()]
        snapshot[metric.name] = {"kind": metric.kind,
                                 "help": metric.help_text,
                                 "series": series}
    return snapshot


def metrics_to_json(registry: "MetricsRegistry", *,
                    indent: int | None = 2) -> str:
    return json.dumps(metrics_to_dict(registry), indent=indent,
                      sort_keys=True)
