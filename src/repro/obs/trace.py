"""Per-query tracing: nested spans over the extraction pipeline.

A :class:`Trace` is the executable analogue of the paper's Figure 5 —
one span per pipeline stage (parse, plan, per-source extract, per-entry
rule evaluation, retry attempts, breaker decisions, cache lookups,
instance generation, condition filtering), nested to mirror the call
structure and timed on the injectable :class:`~repro.clock.Clock`.
Pairing the tracer with a :class:`~repro.clock.FakeClock` makes traces
fully deterministic: span durations reflect exactly the fake sleeps the
resilience layer performed, with zero real waiting.

Tracing is strictly opt-in.  When no tracer is installed the pipeline
carries :data:`NULL_SPAN`, a no-op sink whose methods do nothing and
return itself, so the hot path pays a couple of method calls and no
allocations per stage.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from ..clock import Clock, SystemClock


class Span:
    """One timed pipeline stage, with attributes and child spans.

    Thread-safe where it must be: parallel extraction appends per-source
    children from worker threads, so mutation of ``children`` and
    ``attributes`` is guarded by a lock shared with the parent trace.
    """

    __slots__ = ("name", "attributes", "children", "started_at", "ended_at",
                 "status", "_clock", "_lock")

    def __init__(self, name: str, clock: Clock, lock: threading.Lock,
                 **attributes: Any) -> None:
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes)
        self.children: list[Span] = []
        self._clock = clock
        self._lock = lock
        self.started_at = clock.monotonic()
        self.ended_at: float | None = None
        self.status = "ok"

    # -- lifecycle ---------------------------------------------------------

    def child(self, name: str, **attributes: Any) -> "Span":
        """Open a nested span (started now, on the same clock)."""
        span = Span(name, self._clock, self._lock, **attributes)
        with self._lock:
            self.children.append(span)
        return span

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the span (e.g. outcome counts)."""
        with self._lock:
            self.attributes.update(attributes)

    def fail(self, error: str) -> None:
        """Mark the span failed, recording the error message."""
        with self._lock:
            self.status = "error"
            self.attributes["error"] = error

    def finish(self) -> None:
        """Stamp the end time (idempotent: first call wins)."""
        with self._lock:
            if self.ended_at is None:
                self.ended_at = self._clock.monotonic()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None and self.status == "ok":
            self.fail(str(exc))
        self.finish()

    # -- inspection --------------------------------------------------------

    @property
    def duration_seconds(self) -> float:
        """Span duration; still-open spans measure up to now."""
        end = self.ended_at
        if end is None:
            end = self._clock.monotonic()
        return max(0.0, end - self.started_at)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in list(self.children):
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant span (or self) with ``name``, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every descendant span (or self) with ``name``, depth-first."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation of the span subtree."""
        return {
            "name": self.name,
            "start": self.started_at,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in list(self.children)],
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration_seconds * 1e3:.3f}ms, "
                f"children={len(self.children)})")


class NullSpan:
    """The no-op span carried when tracing is off.

    Every method is a do-nothing stub returning something sensible
    (``child`` returns the singleton itself), so instrumentation points
    never branch on "is tracing enabled".
    """

    __slots__ = ()

    name = "null"
    status = "ok"
    children: list = []
    attributes: dict = {}

    def child(self, name: str, **attributes: Any) -> "NullSpan":
        return self

    def annotate(self, **attributes: Any) -> None:
        pass

    def fail(self, error: str) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    @property
    def duration_seconds(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: Shared no-op span: the default value of every ``span`` parameter.
NULL_SPAN = NullSpan()


class Trace:
    """The span tree of one query, rooted at the ``query`` span."""

    def __init__(self, root: Span) -> None:
        self.root = root

    @property
    def duration_seconds(self) -> float:
        return self.root.duration_seconds

    def walk(self) -> Iterator[Span]:
        return self.root.walk()

    def find(self, name: str) -> Span | None:
        return self.root.find(name)

    def find_all(self, name: str) -> list[Span]:
        return self.root.find_all(name)

    def stage_seconds(self) -> dict[str, float]:
        """Total duration per span name across the whole tree."""
        totals: dict[str, float] = {}
        for span in self.walk():
            totals[span.name] = (totals.get(span.name, 0.0)
                                 + span.duration_seconds)
        return totals

    def render(self) -> str:
        """The indented text form (see :mod:`repro.obs.export`)."""
        from .export import render_trace
        return render_trace(self)

    def to_dict(self) -> dict[str, Any]:
        return self.root.to_dict()

    def __repr__(self) -> str:
        return (f"Trace({self.root.name!r}, "
                f"{self.duration_seconds * 1e3:.3f}ms, "
                f"spans={sum(1 for _ in self.walk())})")


class Tracer:
    """Produces one :class:`Trace` per traced query.

    The tracer is deliberately tiny: it owns the clock and remembers the
    traces it produced (``keep_last`` bounds the memory).  Install one on
    :class:`~repro.core.middleware.S2SMiddleware` (``tracer=Tracer()``)
    and every ``query()`` carries its trace on ``QueryResult.trace``.
    """

    def __init__(self, clock: Clock | None = None, *,
                 keep_last: int = 16) -> None:
        if keep_last < 0:
            raise ValueError("keep_last must be >= 0")
        self.clock = clock or SystemClock()
        self.keep_last = keep_last
        self._traces: list[Trace] = []
        self._lock = threading.Lock()

    def start(self, name: str, **attributes: Any) -> Span:
        """Open a root span; pair with ``finish()``/``with``."""
        return Span(name, self.clock, threading.Lock(), **attributes)

    def trace_of(self, root: Span) -> Trace:
        """Wrap a finished root span, remembering the trace."""
        trace = Trace(root)
        with self._lock:
            self._traces.append(trace)
            if len(self._traces) > self.keep_last:
                del self._traces[:len(self._traces) - self.keep_last]
        return trace

    @property
    def traces(self) -> list[Trace]:
        """The most recent traces, oldest first."""
        with self._lock:
            return list(self._traces)

    @property
    def last(self) -> Trace | None:
        """The most recent trace, or None before the first query."""
        with self._lock:
            return self._traces[-1] if self._traces else None
