"""Observability: per-query tracing + a process-wide metrics registry.

The ROADMAP's north star (heavy traffic, "as fast as the hardware
allows") needs measurement before it needs optimization.  This package
is the measuring kit, with zero external dependencies:

* :class:`Tracer` / :class:`Trace` / :class:`Span` — a per-query tree of
  nested, wall-clock-timed spans over the pipeline stages of Figures 1
  and 5 (parse → plan → per-source extract → per-entry rule eval →
  retry/breaker/cache decisions → instance generation → condition
  filtering), timed on the injectable :mod:`repro.clock`;
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — cumulative process-wide counts fed by hooks in
  the Query Handler, Extractor Manager, fragment cache, retry loop and
  circuit breakers (:data:`DEFAULT_REGISTRY` is the shared default);
* exporters — traces and metrics rendered as indented text or JSON
  (``S2SMiddleware.explain()``, the CLI ``--trace``/``--metrics`` flags
  and the benchmark stage-breakdown tables all go through these).

Tracing is opt-in and free when off: the pipeline carries
:data:`NULL_SPAN` (a no-op sink) unless a tracer is installed.

See ``docs/observability.md`` for a walk-through.
"""

from .export import (metrics_to_dict, metrics_to_json, render_metrics,
                     render_span, render_trace, trace_to_json)
from .metrics import (DEFAULT_BUCKETS, DEFAULT_REGISTRY, Counter, Gauge,
                      Histogram, MetricsRegistry)
from .trace import NULL_SPAN, NullSpan, Span, Trace, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "DEFAULT_REGISTRY",
    "Span", "NullSpan", "NULL_SPAN", "Trace", "Tracer",
    "render_span", "render_trace", "trace_to_json",
    "render_metrics", "metrics_to_dict", "metrics_to_json",
]
