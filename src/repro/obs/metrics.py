"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

No external dependencies: the registry is a thread-safe dict of metric
families, each holding one value per label combination, rendered in a
Prometheus-like text exposition or as JSON.  The middleware feeds it from
hooks in the Query Handler, Extractor Manager, fragment cache, retry loop
and circuit breakers; share one registry across middleware instances to
aggregate, or inject a fresh one per test for isolation.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

#: Default latency buckets (seconds): sub-ms to 10s, roughly logarithmic.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((name, str(value))
                        for name, value in labels.items()))


class Metric:
    """Base class: one named family of labelled series."""

    kind = "metric"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()

    def series(self) -> Iterator[tuple[LabelKey, Any]]:
        """(label key, value) pairs, sorted by label key."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current count for the exact label set (0.0 when unseen)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._values.values())

    def series(self) -> Iterator[tuple[LabelKey, float]]:
        with self._lock:
            items = sorted(self._values.items())
        return iter(items)


class Gauge(Metric):
    """A value that can go up and down (e.g. open breakers)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def series(self) -> Iterator[tuple[LabelKey, float]]:
        with self._lock:
            items = sorted(self._values.items())
        return iter(items)


class HistogramSeries:
    """Bucket counts + sum + count for one label combination."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 = overflow (+Inf)
        self.total = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket distribution (cumulative buckets on render)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending tuple")
        self.buckets = tuple(float(b) for b in buckets)
        self._series: dict[LabelKey, HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = HistogramSeries(len(self.buckets))
                self._series[key] = series
            index = len(self.buckets)  # overflow bucket by default
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series.bucket_counts[index] += 1
            series.total += value
            series.count += 1

    def count(self, **labels: Any) -> int:
        """Observations for the exact label set."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series is not None else 0.0

    def cumulative_buckets(self, **labels: Any) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +Inf last."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            counts = (list(series.bucket_counts) if series is not None
                      else [0] * (len(self.buckets) + 1))
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + counts[-1]))
        return pairs

    def series(self) -> Iterator[tuple[LabelKey, HistogramSeries]]:
        with self._lock:
            items = sorted(self._series.items())
        return iter(items)


class MetricsRegistry:
    """Named metric families, created lazily and shared freely.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the family's kind (and buckets); later calls return the same
    object, so instrumentation points never coordinate registration.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {kind.__name__.lower()}")
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, Counter, help_text=help_text)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help_text=help_text)  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(name, Histogram, help_text=help_text,  # type: ignore[return-value]
                                   buckets=buckets)

    def get(self, name: str) -> Metric | None:
        """The family by name, or None when never touched."""
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, **labels: Any) -> float:
        """Shortcut: a counter/gauge series value (0.0 when unseen)."""
        metric = self.get(name)
        if metric is None:
            return 0.0
        if isinstance(metric, (Counter, Gauge)):
            return metric.value(**labels)
        raise ValueError(f"metric {name!r} is a {metric.kind}; "
                         "read histograms through get()")

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def metrics(self) -> list[Metric]:
        """Every family, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render_text(self) -> str:
        """Prometheus-like text exposition (see :mod:`repro.obs.export`)."""
        from .export import render_metrics
        return render_metrics(self)

    def to_dict(self) -> dict[str, Any]:
        from .export import metrics_to_dict
        return metrics_to_dict(self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


#: The process-wide default registry: what every middleware built without
#: an explicit ``metrics=`` argument reports into.
DEFAULT_REGISTRY = MetricsRegistry()
