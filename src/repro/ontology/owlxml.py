"""OWL import/export for ontologies and their individuals.

The middleware "wraps the result in OWL format" (paper section 1); this
module converts between the in-memory :class:`Ontology` model and an RDF
graph using the OWL vocabulary, serialized as RDF/XML (the W3C exchange
syntax of 2004-era OWL) or Turtle.

Schema terms map as:

* class → ``owl:Class`` with ``rdfs:subClassOf``;
* datatype property → ``owl:DatatypeProperty`` with ``rdfs:domain`` /
  ``rdfs:range`` (XSD) and ``owl:FunctionalProperty`` when functional;
* object property → ``owl:ObjectProperty`` with domain/range;
* individual → a typed node with one triple per attribute value and one
  per object-property link.
"""

from __future__ import annotations

from ..errors import OntologyError
from ..rdf.graph import Graph
from ..rdf.namespace import OWL, RDF, RDFS, XSD, Namespace, NamespaceManager
from ..rdf.rdfxml import parse_rdfxml, serialize_rdfxml
from ..rdf.terms import IRI, Literal, python_to_literal
from ..rdf.turtle import parse_turtle, serialize_turtle
from .model import Individual, Ontology


def _bool_literal(value: bool) -> Literal:
    return Literal("true" if value else "false", XSD.boolean)


def ontology_to_graph(ontology: Ontology, *, include_individuals: bool = True,
                      prefix: str = "onto") -> Graph:
    """Render the ontology (schema and, optionally, individuals) as RDF."""
    manager = NamespaceManager()
    namespace = Namespace(ontology.base_iri)
    manager.bind(prefix, namespace)
    graph = Graph(namespace_manager=manager)

    ontology_iri = IRI(ontology.base_iri.rstrip("#/"))
    graph.add(ontology_iri, RDF.type, OWL.Ontology)
    graph.add(ontology_iri, RDFS.label, Literal(ontology.name))

    for cls in ontology.classes():
        class_iri = namespace[cls.name]
        graph.add(class_iri, RDF.type, OWL.Class)
        if cls.parent is not None:
            graph.add(class_iri, RDFS.subClassOf, namespace[cls.parent])
        if cls.label:
            graph.add(class_iri, RDFS.label, Literal(cls.label))
        for attr in cls.attributes.values():
            prop_iri = namespace[attr.name]
            graph.add(prop_iri, RDF.type, OWL.DatatypeProperty)
            graph.add(prop_iri, RDFS.domain, class_iri)
            graph.add(prop_iri, RDFS.range, XSD[attr.range])
            if attr.functional:
                graph.add(prop_iri, RDF.type, OWL.FunctionalProperty)
            if attr.label:
                graph.add(prop_iri, RDFS.label, Literal(attr.label))
        for prop in cls.object_properties.values():
            prop_iri = namespace[prop.name]
            graph.add(prop_iri, RDF.type, OWL.ObjectProperty)
            graph.add(prop_iri, RDFS.domain, class_iri)
            graph.add(prop_iri, RDFS.range, namespace[prop.range])
            if prop.functional:
                graph.add(prop_iri, RDF.type, OWL.FunctionalProperty)

    if include_individuals:
        for individual in ontology.individuals():
            add_individual_triples(graph, namespace, individual)
    return graph


def add_individual_triples(graph: Graph, namespace: Namespace,
                           individual: Individual) -> IRI:
    """Emit the triples describing one individual into ``graph``."""
    subject = namespace[individual.identifier]
    graph.add(subject, RDF.type, namespace[individual.class_name])
    for name, value in individual.values.items():
        items = value if isinstance(value, list) else [value]
        for item in items:
            graph.add(subject, namespace[name], python_to_literal(item))
    for name, targets in individual.links.items():
        for target in targets:
            graph.add(subject, namespace[name], namespace[target.identifier])
    return subject


def serialize_ontology(ontology: Ontology, format: str = "rdfxml",
                       *, include_individuals: bool = True) -> str:
    """Serialize to ``rdfxml`` (default) or ``turtle``."""
    graph = ontology_to_graph(ontology, include_individuals=include_individuals)
    if format == "rdfxml":
        return serialize_rdfxml(graph)
    if format == "turtle":
        return serialize_turtle(graph)
    raise OntologyError(f"unsupported OWL serialization format: {format!r}")


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------

def graph_to_ontology(graph: Graph, name: str,
                      base_iri: str | None = None) -> Ontology:
    """Rebuild an :class:`Ontology` from OWL triples.

    Only terms inside ``base_iri`` are imported (other vocabularies in the
    document are ignored).  When ``base_iri`` is omitted it is inferred from
    the ``owl:Ontology`` node or, failing that, the first ``owl:Class``.
    """
    if base_iri is None:
        base_iri = _infer_base(graph)
    ontology = Ontology(name, base_iri)
    namespace = Namespace(ontology.base_iri)

    def local(iri: IRI) -> str | None:
        if iri.value.startswith(ontology.base_iri):
            return iri.value[len(ontology.base_iri):]
        return None

    # Pass 1: classes (topologically, parents before children).
    class_parent: dict[str, str | None] = {}
    for subject in graph.subjects(RDF.type, OWL.Class):
        if not isinstance(subject, IRI):
            continue
        class_name = local(subject)
        if class_name is None:
            continue
        parent_iri = next(iter(graph.objects(subject, RDFS.subClassOf)), None)
        parent = local(parent_iri) if isinstance(parent_iri, IRI) else None
        class_parent[class_name] = parent
    remaining = dict(class_parent)
    while remaining:
        progress = False
        for class_name, parent in list(remaining.items()):
            if parent is None or ontology.has_class(parent):
                label_lit = next(
                    (o for o in graph.objects(namespace[class_name], RDFS.label)
                     if isinstance(o, Literal)), None)
                ontology.add_class(class_name,
                                   parent if parent in class_parent else None,
                                   label_lit.lexical if label_lit else None)
                del remaining[class_name]
                progress = True
        if not progress:
            raise OntologyError(
                f"cannot order classes (cycle or missing parent): "
                f"{sorted(remaining)}")

    # Pass 2: properties.
    functional = set(graph.subjects(RDF.type, OWL.FunctionalProperty))
    for subject in graph.subjects(RDF.type, OWL.DatatypeProperty):
        if not isinstance(subject, IRI):
            continue
        prop_name = local(subject)
        if prop_name is None:
            continue
        domain = next(iter(graph.objects(subject, RDFS.domain)), None)
        range_iri = next(iter(graph.objects(subject, RDFS.range)), None)
        domain_name = local(domain) if isinstance(domain, IRI) else None
        if domain_name is None or not ontology.has_class(domain_name):
            continue
        range_name = (range_iri.local_name
                      if isinstance(range_iri, IRI) else "string")
        ontology.add_attribute(domain_name, prop_name, range_name,
                               functional=subject in functional)
    for subject in graph.subjects(RDF.type, OWL.ObjectProperty):
        if not isinstance(subject, IRI):
            continue
        prop_name = local(subject)
        if prop_name is None:
            continue
        domain = next(iter(graph.objects(subject, RDFS.domain)), None)
        range_iri = next(iter(graph.objects(subject, RDFS.range)), None)
        domain_name = local(domain) if isinstance(domain, IRI) else None
        range_name = local(range_iri) if isinstance(range_iri, IRI) else None
        if (domain_name and range_name and ontology.has_class(domain_name)
                and ontology.has_class(range_name)):
            ontology.add_object_property(domain_name, prop_name, range_name,
                                         functional=subject in functional)

    # Pass 3: individuals (typed by an imported class).
    imported_classes = set(ontology.class_names())
    links_pending: list[tuple[Individual, str, str]] = []
    for class_name in imported_classes:
        for subject in graph.subjects(RDF.type, namespace[class_name]):
            if not isinstance(subject, IRI):
                continue
            identifier = local(subject)
            if identifier is None or identifier == class_name:
                continue
            try:
                individual = ontology.add_individual(identifier, class_name)
            except OntologyError:
                continue  # typed with several classes; keep the first
            for triple in graph.triples(subject, None, None):
                prop_name = local(triple.predicate)
                if prop_name is None or triple.predicate == RDF.type:
                    continue
                if isinstance(triple.object, Literal):
                    existing = individual.values.get(prop_name)
                    value = triple.object.to_python()
                    if existing is None:
                        individual.values[prop_name] = value
                    elif isinstance(existing, list):
                        existing.append(value)
                    else:
                        individual.values[prop_name] = [existing, value]
                elif isinstance(triple.object, IRI):
                    target = local(triple.object)
                    if target is not None:
                        links_pending.append((individual, prop_name, target))
    for individual, prop_name, target in links_pending:
        try:
            individual.link(prop_name, ontology.individual(target))
        except OntologyError:
            pass  # dangling reference: target not materialized as individual
    return ontology


def _infer_base(graph: Graph) -> str:
    for subject in graph.subjects(RDF.type, OWL.Ontology):
        if isinstance(subject, IRI):
            return subject.value + "#"
    for subject in graph.subjects(RDF.type, OWL.Class):
        if isinstance(subject, IRI) and subject.namespace_part:
            return subject.namespace_part
    raise OntologyError("cannot infer ontology base IRI from graph")


def parse_ontology(text: str, name: str, format: str = "rdfxml",
                   *, base_iri: str | None = None) -> Ontology:
    """Parse an OWL document into an :class:`Ontology`."""
    if format == "rdfxml":
        graph = parse_rdfxml(text)
    elif format == "turtle":
        graph = parse_turtle(text)
    else:
        raise OntologyError(f"unsupported OWL format: {format!r}")
    return graph_to_ontology(graph, name, base_iri)
