"""Fluent construction API for ontologies.

Ontology definitions read top-down, mirroring the paper's Figure 2::

    ontology = (OntologyBuilder("watch-domain")
                .klass("thing")
                .klass("product", parent="thing")
                .attribute("product", "brand")
                .attribute("product", "price", "double")
                .klass("watch", parent="product")
                .attribute("watch", "case")
                .klass("provider", parent="thing")
                .attribute("provider", "name")
                .object_property("product", "hasProvider", "provider")
                .build())
"""

from __future__ import annotations

from .model import Ontology
from .schema import OntologySchema


class OntologyBuilder:
    """Chainable builder producing an :class:`Ontology`."""

    def __init__(self, name: str,
                 base_iri: str = "http://example.org/s2s/ontology#") -> None:
        self._ontology = Ontology(name, base_iri)

    def klass(self, name: str, parent: str | None = None,
              label: str | None = None) -> "OntologyBuilder":
        """Declare a class; returns self."""
        self._ontology.add_class(name, parent, label)
        return self

    def attribute(self, class_name: str, name: str, range: str = "string",
                  *, functional: bool = True,
                  label: str | None = None) -> "OntologyBuilder":
        """Declare a datatype property; returns self."""
        self._ontology.add_attribute(class_name, name, range,
                                     functional=functional, label=label)
        return self

    def object_property(self, domain: str, name: str, range: str,
                        *, functional: bool = False,
                        label: str | None = None) -> "OntologyBuilder":
        """Declare a class link; returns self."""
        self._ontology.add_object_property(domain, name, range,
                                           functional=functional, label=label)
        return self

    def build(self) -> Ontology:
        """The constructed ontology."""
        return self._ontology

    def build_schema(self) -> OntologySchema:
        """The constructed ontology wrapped in its schema view."""
        return OntologySchema(self._ontology)


def logistics_ontology(base_iri: str = "http://example.org/s2s/logistics#"
                       ) -> Ontology:
    """A second, unrelated domain: B2B shipment tracking.

    Exists to exercise the paper's ontology-independence claim (§2.6:
    "this approach has the advantage of providing an ontology-independent
    system") — the middleware code is identical for any domain schema.
    """
    return (OntologyBuilder("logistics", base_iri)
            .klass("thing")
            .klass("shipment", parent="thing")
            .attribute("shipment", "tracking_id")
            .attribute("shipment", "weight_kg", "double")
            .attribute("shipment", "status")
            .attribute("shipment", "ship_date", "date")
            .klass("express_shipment", parent="shipment")
            .attribute("express_shipment", "guaranteed_hours", "integer")
            .klass("carrier", parent="thing")
            .attribute("carrier", "name")
            .attribute("carrier", "fleet_size", "integer")
            .object_property("shipment", "carriedBy", "carrier")
            .build())


def watch_domain_ontology(base_iri: str = "http://example.org/s2s/watch#") -> Ontology:
    """The paper's running example (Figure 2): a watch product domain.

    ``thing ⊃ product ⊃ watch`` with a ``provider`` linked to every
    product; attribute IDs come out as ``thing.product.brand``,
    ``thing.product.watch.case`` etc., exactly as in sections 2.3.1.
    """
    return (OntologyBuilder("watch-domain", base_iri)
            .klass("thing")
            .klass("product", parent="thing")
            .attribute("product", "brand")
            .attribute("product", "model")
            .attribute("product", "price", "double")
            .klass("watch", parent="product")
            .attribute("watch", "case")
            .attribute("watch", "movement")
            .attribute("watch", "water_resistance", "integer")
            .klass("provider", parent="thing")
            .attribute("provider", "name")
            .attribute("provider", "country")
            .object_property("product", "hasProvider", "provider")
            .build())
