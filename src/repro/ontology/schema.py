"""The attribute-path view of an ontology (paper Figure 4).

The Mapping Module identifies every attribute by a dotted path through the
class hierarchy — ``thing.product.brand``, ``thing.product.watch.case`` —
"keeping a notion of the ontology hierarchy" (section 2.3.1).  The
:class:`OntologySchema` derives those unique identifiers from an
:class:`~repro.ontology.model.Ontology` and answers the lookups the
middleware needs:

* enumerate all attribute paths (for registration completeness checks);
* resolve a path back to its class and property;
* find the paths relevant to a query class, including inherited attributes;
* compute the *class closure* of a query result (section 2.5: querying
  ``product`` also returns associated classes such as ``Provider``).
"""

from __future__ import annotations

from ..errors import OntologyError
from ..ids import AttributePath
from .model import DatatypeProperty, ObjectProperty, Ontology


class OntologySchema:
    """Attribute-path index over an ontology."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self._paths: dict[str, tuple[str, DatatypeProperty]] = {}
        self._rebuild()

    def _rebuild(self) -> None:
        self._paths.clear()
        for cls in self.ontology.classes():
            lineage = self.ontology.lineage(cls.name)
            for attr in cls.attributes.values():
                path = ".".join(lineage + [attr.name])
                self._paths[path] = (cls.name, attr)

    def refresh(self) -> None:
        """Recompute paths after the ontology schema changed."""
        self._rebuild()

    # ------------------------------------------------------------------
    # Path enumeration and resolution
    # ------------------------------------------------------------------

    def attribute_paths(self) -> list[AttributePath]:
        """Every attribute identifier defined by the schema, sorted."""
        return [AttributePath.parse(p) for p in sorted(self._paths)]

    def paths_for_class(self, class_name: str,
                        *, include_inherited: bool = True) -> list[AttributePath]:
        """Attribute paths whose owning class is ``class_name`` (or an
        ancestor, when ``include_inherited``)."""
        self.ontology.require_class(class_name)
        relevant = {class_name}
        if include_inherited:
            relevant.update(self.ontology.ancestors(class_name))
        return [AttributePath.parse(path)
                for path, (owner, _attr) in sorted(self._paths.items())
                if owner in relevant]

    def resolve(self, path: AttributePath | str) -> tuple[str, DatatypeProperty]:
        """Return (owning class name, property) for an attribute path."""
        text = str(path)
        entry = self._paths.get(text)
        if entry is None:
            raise OntologyError(
                f"attribute path {text!r} does not exist in ontology "
                f"{self.ontology.name!r}")
        return entry

    def has_path(self, path: AttributePath | str) -> bool:
        """Whether the dotted path exists in the schema."""
        return str(path) in self._paths

    def path_for(self, class_name: str, attribute: str) -> AttributePath:
        """Build the canonical path for ``attribute`` as seen from
        ``class_name`` (the attribute may be inherited)."""
        prop = self.ontology.find_attribute(class_name, attribute)
        if prop is None:
            raise OntologyError(
                f"class {class_name!r} has no attribute {attribute!r}")
        lineage = self.ontology.lineage(prop.domain)
        return AttributePath.parse(".".join(lineage + [attribute]))

    # ------------------------------------------------------------------
    # Query support
    # ------------------------------------------------------------------

    def resolve_query_class(self, name: str) -> str:
        """Map a query's class token to a schema class (case-insensitive)."""
        if self.ontology.has_class(name):
            return name
        lowered = name.lower()
        for cls in self.ontology.classes():
            if cls.name.lower() == lowered:
                return cls.name
        raise OntologyError(
            f"query class {name!r} does not exist in ontology "
            f"{self.ontology.name!r}")

    def class_closure(self, class_name: str) -> list[str]:
        """Classes included in a query output for ``class_name``.

        Per the paper's example (section 2.5): querying ``product`` returns
        Product plus its subclasses (the records live there) plus every
        class reachable through object properties — "all products have a
        Provider, and therefore the output classes will be Product, watch,
        and Provider".
        """
        self.ontology.require_class(class_name)
        closure: list[str] = []
        pending = [class_name]
        seen = set()
        while pending:
            current = pending.pop(0)
            if current in seen:
                continue
            seen.add(current)
            closure.append(current)
            for child in self.ontology.children_of(current):
                pending.append(child.name)
            for prop in self.ontology.all_object_properties(current):
                pending.append(prop.range)
        return closure

    def object_properties_between(self, source: str,
                                  target: str) -> list[ObjectProperty]:
        """Object properties linking ``source`` (or its ancestors) to
        ``target``."""
        return [prop for prop in self.ontology.all_object_properties(source)
                if prop.range == target]

    def __len__(self) -> int:
        return len(self._paths)

    def __repr__(self) -> str:
        return (f"OntologySchema({self.ontology.name!r}, "
                f"paths={len(self._paths)})")
