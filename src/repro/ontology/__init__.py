"""OWL-Lite-flavoured ontology substrate.

The paper's S2S middleware is *ontology driven*: the shared OWL ontology
schema (paper section 2.2, Figure 2) defines both the vocabulary that
queries are written against and the structure the instance generator
populates.  This package provides:

* :mod:`repro.ontology.model` — classes, datatype/object properties,
  individuals;
* :mod:`repro.ontology.schema` — the *attribute path* view used by the
  Mapping Module (``thing.product.brand`` identifiers, Figure 4);
* :mod:`repro.ontology.reasoner` — subclass/subproperty closure, attribute
  inheritance, domain/range checking;
* :mod:`repro.ontology.builders` — fluent construction API;
* :mod:`repro.ontology.validation` — individual-vs-schema validation;
* :mod:`repro.ontology.owlxml` — OWL (RDF/XML) import/export.
"""

from .model import (DatatypeProperty, Individual, ObjectProperty, OntClass,
                    Ontology)
from .schema import OntologySchema
from .builders import OntologyBuilder
from .reasoner import Reasoner
from .validation import validate_individual, validate_ontology

__all__ = [
    "Ontology",
    "OntClass",
    "DatatypeProperty",
    "ObjectProperty",
    "Individual",
    "OntologySchema",
    "OntologyBuilder",
    "Reasoner",
    "validate_individual",
    "validate_ontology",
]
