"""Ontology object model.

An :class:`Ontology` owns a set of named classes arranged in a single
subclass hierarchy (OWL-Lite style, one superclass per class — the shape
the paper's Figure 2 example uses: ``thing ⊃ product ⊃ watch``), datatype
properties (the *attributes* the mapping module registers extraction rules
for), object properties (links between classes, e.g. every ``product`` has
a ``provider``) and individuals (the instances the extractor populates).

Names are local (``"watch"``); IRIs are derived from the ontology base IRI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import OntologyError
from ..rdf.terms import IRI

#: XSD datatypes accepted as datatype-property ranges.
XSD_TYPES = frozenset({
    "string", "integer", "decimal", "double", "float", "boolean",
    "date", "dateTime", "anyURI",
})


@dataclass
class DatatypeProperty:
    """An ontology attribute: a literal-valued property of a class."""

    name: str
    domain: str  # class name
    range: str = "string"  # XSD local name
    functional: bool = True
    label: str | None = None

    def __post_init__(self) -> None:
        if self.range not in XSD_TYPES:
            raise OntologyError(
                f"datatype property {self.name!r} has unsupported range "
                f"{self.range!r}; expected one of {sorted(XSD_TYPES)}")


@dataclass
class ObjectProperty:
    """A link between two ontology classes."""

    name: str
    domain: str
    range: str
    functional: bool = False
    label: str | None = None


@dataclass
class OntClass:
    """An ontology class with an optional superclass."""

    name: str
    parent: str | None = None
    label: str | None = None
    attributes: dict[str, DatatypeProperty] = field(default_factory=dict)
    object_properties: dict[str, ObjectProperty] = field(default_factory=dict)


@dataclass
class Individual:
    """An instance of an ontology class.

    ``values`` maps datatype-property names to literal Python values;
    ``links`` maps object-property names to lists of other individuals.
    """

    identifier: str
    class_name: str
    values: dict[str, object] = field(default_factory=dict)
    links: dict[str, list["Individual"]] = field(default_factory=dict)

    def set(self, attribute: str, value: object) -> "Individual":
        """Set one attribute value; returns self for chaining."""
        self.values[attribute] = value
        return self

    def link(self, object_property: str, target: "Individual") -> "Individual":
        """Append an object-property link; returns self for chaining."""
        self.links.setdefault(object_property, []).append(target)
        return self

    def get(self, attribute: str, default=None):
        """One attribute value, or ``default``."""
        return self.values.get(attribute, default)


class Ontology:
    """A named ontology: class hierarchy + properties + individuals."""

    def __init__(self, name: str,
                 base_iri: str = "http://example.org/s2s/ontology#") -> None:
        if not name:
            raise OntologyError("ontology name must be non-empty")
        if not base_iri.endswith(("#", "/")):
            base_iri += "#"
        self.name = name
        self.base_iri = base_iri
        self._classes: dict[str, OntClass] = {}
        self._individuals: dict[str, Individual] = {}

    # ------------------------------------------------------------------
    # Schema construction
    # ------------------------------------------------------------------

    def add_class(self, name: str, parent: str | None = None,
                  label: str | None = None) -> OntClass:
        """Declare a class, optionally under a superclass."""
        if name in self._classes:
            raise OntologyError(f"class {name!r} already defined")
        if parent is not None and parent not in self._classes:
            raise OntologyError(
                f"superclass {parent!r} of {name!r} is not defined")
        cls = OntClass(name, parent, label)
        self._classes[name] = cls
        # Reject hierarchy cycles eagerly (possible only via future mutation,
        # but ancestors() relies on acyclicity).
        self._check_acyclic(name)
        return cls

    def _check_acyclic(self, start: str) -> None:
        seen = set()
        current: str | None = start
        while current is not None:
            if current in seen:
                raise OntologyError(f"class hierarchy cycle at {current!r}")
            seen.add(current)
            current = self._classes[current].parent

    def add_attribute(self, class_name: str, name: str, range: str = "string",
                      *, functional: bool = True,
                      label: str | None = None) -> DatatypeProperty:
        """Declare a datatype property on a class."""
        cls = self.require_class(class_name)
        if name in cls.attributes:
            raise OntologyError(
                f"attribute {name!r} already defined on class {class_name!r}")
        prop = DatatypeProperty(name, class_name, range, functional, label)
        cls.attributes[name] = prop
        return prop

    def add_object_property(self, domain: str, name: str, range: str,
                            *, functional: bool = False,
                            label: str | None = None) -> ObjectProperty:
        """Declare a link between two classes."""
        domain_cls = self.require_class(domain)
        self.require_class(range)
        if name in domain_cls.object_properties:
            raise OntologyError(
                f"object property {name!r} already defined on {domain!r}")
        prop = ObjectProperty(name, domain, range, functional, label)
        domain_cls.object_properties[name] = prop
        return prop

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def require_class(self, name: str) -> OntClass:
        """Look up a class, raising when undefined."""
        cls = self._classes.get(name)
        if cls is None:
            raise OntologyError(f"class {name!r} is not defined in "
                                f"ontology {self.name!r}")
        return cls

    def has_class(self, name: str) -> bool:
        """Whether ``name`` is a defined class."""
        return name in self._classes

    def classes(self) -> Iterator[OntClass]:
        """Iterate over all class definitions."""
        return iter(self._classes.values())

    def class_names(self) -> list[str]:
        """All class names, in definition order."""
        return list(self._classes)

    def roots(self) -> list[OntClass]:
        """Classes with no superclass."""
        return [c for c in self._classes.values() if c.parent is None]

    def children_of(self, name: str) -> list[OntClass]:
        """Direct subclasses of ``name``."""
        self.require_class(name)
        return [c for c in self._classes.values() if c.parent == name]

    def ancestors(self, name: str) -> list[str]:
        """Superclass chain from the immediate parent up to the root."""
        chain: list[str] = []
        current = self.require_class(name).parent
        while current is not None:
            chain.append(current)
            current = self._classes[current].parent
        return chain

    def lineage(self, name: str) -> list[str]:
        """Root-to-class path, inclusive (used for attribute paths)."""
        return list(reversed(self.ancestors(name))) + [name]

    def iri_for_class(self, name: str) -> IRI:
        """The class's IRI under the ontology base."""
        self.require_class(name)
        return IRI(self.base_iri + name)

    def iri_for_property(self, name: str) -> IRI:
        """A property's IRI under the ontology base."""
        return IRI(self.base_iri + name)

    # ------------------------------------------------------------------
    # Attributes (inherited view)
    # ------------------------------------------------------------------

    def own_attributes(self, class_name: str) -> list[DatatypeProperty]:
        """Attributes declared directly on the class."""
        return list(self.require_class(class_name).attributes.values())

    def all_attributes(self, class_name: str) -> list[DatatypeProperty]:
        """Attributes declared on the class or inherited from ancestors."""
        collected: dict[str, DatatypeProperty] = {}
        for cls_name in self.lineage(class_name):
            for attr in self._classes[cls_name].attributes.values():
                collected[attr.name] = attr
        return list(collected.values())

    def all_object_properties(self, class_name: str) -> list[ObjectProperty]:
        """Object properties declared on the class or inherited."""
        collected: dict[str, ObjectProperty] = {}
        for cls_name in self.lineage(class_name):
            for prop in self._classes[cls_name].object_properties.values():
                collected[prop.name] = prop
        return list(collected.values())

    def find_attribute(self, class_name: str, attribute: str) -> DatatypeProperty | None:
        """Resolve an attribute on the class or its ancestors."""
        for cls_name in reversed(self.lineage(class_name)):
            attr = self._classes[cls_name].attributes.get(attribute)
            if attr is not None:
                return attr
        return None

    # ------------------------------------------------------------------
    # Individuals
    # ------------------------------------------------------------------

    def add_individual(self, identifier: str, class_name: str,
                       values: dict[str, object] | None = None) -> Individual:
        """Create an instance of a class."""
        self.require_class(class_name)
        if identifier in self._individuals:
            raise OntologyError(f"individual {identifier!r} already exists")
        individual = Individual(identifier, class_name, dict(values or {}))
        self._individuals[identifier] = individual
        return individual

    def individual(self, identifier: str) -> Individual:
        """Look up an individual by identifier."""
        ind = self._individuals.get(identifier)
        if ind is None:
            raise OntologyError(f"individual {identifier!r} not found")
        return ind

    def individuals(self, class_name: str | None = None,
                    *, include_subclasses: bool = True) -> list[Individual]:
        """Instances of a class (optionally including subclasses)."""
        if class_name is None:
            return list(self._individuals.values())
        self.require_class(class_name)
        matched: list[Individual] = []
        for individual in self._individuals.values():
            if individual.class_name == class_name:
                matched.append(individual)
            elif include_subclasses and class_name in self.ancestors(
                    individual.class_name):
                matched.append(individual)
        return matched

    def remove_individuals(self) -> None:
        """Drop every individual, keeping the schema."""
        self._individuals.clear()

    def __len__(self) -> int:
        return len(self._classes)

    def __repr__(self) -> str:
        return (f"Ontology({self.name!r}, classes={len(self._classes)}, "
                f"individuals={len(self._individuals)})")
