"""Lightweight structural reasoner.

The middleware does not need a DL reasoner — only the structural inferences
the paper's data flow relies on:

* transitive subclass closure (``watch`` is-a ``product`` is-a ``thing``);
* attribute inheritance (a ``watch`` individual may carry ``brand``);
* membership entailment for individuals (a ``watch`` instance satisfies a
  query over ``product``);
* datatype coercion/checking for attribute values.
"""

from __future__ import annotations

from datetime import date, datetime

from ..errors import OntologyError, ValidationError
from .model import Individual, Ontology


class Reasoner:
    """Structural inference over a fixed ontology."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self._ancestor_cache: dict[str, frozenset[str]] = {}

    def ancestors(self, class_name: str) -> frozenset[str]:
        """Cached superclass set of a class."""
        cached = self._ancestor_cache.get(class_name)
        if cached is None:
            cached = frozenset(self.ontology.ancestors(class_name))
            self._ancestor_cache[class_name] = cached
        return cached

    def is_subclass(self, child: str, parent: str) -> bool:
        """Reflexive-transitive subclass test."""
        if child == parent:
            self.ontology.require_class(child)
            return True
        return parent in self.ancestors(child)

    def common_ancestor(self, first: str, second: str) -> str | None:
        """Most specific common superclass, or None when unrelated."""
        first_line = [first] + list(self.ontology.lineage(first))[::-1]
        second_set = {second, *self.ancestors(second)}
        for candidate in [first] + list(reversed(self.ontology.lineage(first))):
            if candidate in second_set:
                return candidate
        return None

    def satisfies_class(self, individual: Individual, class_name: str) -> bool:
        """True when the individual's class is ``class_name`` or a subclass."""
        return self.is_subclass(individual.class_name, class_name)

    # ------------------------------------------------------------------
    # Datatype handling
    # ------------------------------------------------------------------

    _COERCERS = {
        "string": str,
        "integer": int,
        "decimal": float,
        "double": float,
        "float": float,
        "anyURI": str,
    }

    def coerce(self, class_name: str, attribute: str, raw: object):
        """Coerce a raw extracted value to the attribute's declared range.

        Extractors return strings (chunks of raw data, section 2.4); the
        instance generator uses this to produce typed values.  Raises
        :class:`ValidationError` when the value cannot be interpreted.
        """
        prop = self.ontology.find_attribute(class_name, attribute)
        if prop is None:
            raise OntologyError(
                f"class {class_name!r} has no attribute {attribute!r}")
        range_name = prop.range
        if range_name == "boolean":
            if isinstance(raw, bool):
                return raw
            text = str(raw).strip().lower()
            if text in ("true", "1", "yes"):
                return True
            if text in ("false", "0", "no"):
                return False
            raise ValidationError(
                f"value {raw!r} is not a boolean for {attribute!r}")
        if range_name == "date":
            if isinstance(raw, date) and not isinstance(raw, datetime):
                return raw
            try:
                return date.fromisoformat(str(raw).strip())
            except ValueError as exc:
                raise ValidationError(
                    f"value {raw!r} is not an ISO date for {attribute!r}") from exc
        if range_name == "dateTime":
            if isinstance(raw, datetime):
                return raw
            try:
                return datetime.fromisoformat(str(raw).strip())
            except ValueError as exc:
                raise ValidationError(
                    f"value {raw!r} is not an ISO dateTime for "
                    f"{attribute!r}") from exc
        coercer = self._COERCERS.get(range_name)
        if coercer is None:
            raise OntologyError(f"unsupported range {range_name!r}")
        try:
            if coercer is int and isinstance(raw, str):
                return int(raw.strip())
            if coercer is float and isinstance(raw, str):
                return float(raw.strip())
            return coercer(raw)
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"value {raw!r} is not a valid {range_name} for "
                f"{attribute!r}") from exc
