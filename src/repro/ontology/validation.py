"""Validation of individuals against the ontology schema.

The paper argues manual mapping "offers the highest degree of data
extraction accuracy and domain consistency" (section 2.3); this module is
the enforcement side of that claim — every individual the instance
generator produces can be checked against the schema before serialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import Individual, Ontology
from .reasoner import Reasoner
from ..errors import ValidationError


@dataclass
class ValidationReport:
    """Accumulated validation problems; empty means valid."""

    problems: list[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """True when no problems were recorded."""
        return not self.problems

    def add(self, message: str) -> None:
        """Record one validation problem."""
        self.problems.append(message)

    def raise_if_invalid(self) -> None:
        """Raise ValidationError when problems exist."""
        if self.problems:
            raise ValidationError("; ".join(self.problems))


def validate_individual(ontology: Ontology, individual: Individual,
                        *, reasoner: Reasoner | None = None) -> ValidationReport:
    """Check one individual against the schema.

    Verifies: the class exists; every value belongs to a declared (possibly
    inherited) attribute; values match the declared XSD range; functional
    attributes are single-valued; links target declared object properties
    and range-compatible individuals.
    """
    report = ValidationReport()
    reasoner = reasoner or Reasoner(ontology)
    if not ontology.has_class(individual.class_name):
        report.add(f"individual {individual.identifier!r} has unknown class "
                   f"{individual.class_name!r}")
        return report

    declared = {a.name: a for a in ontology.all_attributes(individual.class_name)}
    for name, value in individual.values.items():
        prop = declared.get(name)
        if prop is None:
            report.add(f"{individual.identifier}: undeclared attribute {name!r} "
                       f"for class {individual.class_name!r}")
            continue
        candidates = value if isinstance(value, list) else [value]
        if prop.functional and isinstance(value, list) and len(value) > 1:
            report.add(f"{individual.identifier}: functional attribute {name!r} "
                       f"has {len(value)} values")
        for item in candidates:
            try:
                reasoner.coerce(individual.class_name, name, item)
            except ValidationError as exc:
                report.add(f"{individual.identifier}: {exc}")

    object_props = {p.name: p for p in
                    ontology.all_object_properties(individual.class_name)}
    for name, targets in individual.links.items():
        prop = object_props.get(name)
        if prop is None:
            report.add(f"{individual.identifier}: undeclared object property "
                       f"{name!r} for class {individual.class_name!r}")
            continue
        if prop.functional and len(targets) > 1:
            report.add(f"{individual.identifier}: functional object property "
                       f"{name!r} has {len(targets)} targets")
        for target in targets:
            if not ontology.has_class(target.class_name):
                report.add(f"{individual.identifier}: link {name!r} targets "
                           f"unknown class {target.class_name!r}")
            elif not reasoner.is_subclass(target.class_name, prop.range):
                report.add(f"{individual.identifier}: link {name!r} targets "
                           f"{target.class_name!r}, expected {prop.range!r}")
    return report


def validate_ontology(ontology: Ontology) -> ValidationReport:
    """Check every individual currently held by the ontology."""
    report = ValidationReport()
    reasoner = Reasoner(ontology)
    for individual in ontology.individuals():
        sub_report = validate_individual(ontology, individual,
                                         reasoner=reasoner)
        report.problems.extend(sub_report.problems)
    return report
