"""Exception hierarchy for the S2S middleware and its substrates.

Every error raised by this library derives from :class:`S2SError`, so a
caller integrating S2S into a larger application can catch a single base
class.  Substrates (RDF store, SQL engine, XPath engine, WebL interpreter)
define their own subclasses here so that the `Instance Generator`'s error
channel (paper section 2.6) can classify failures by origin.
"""

from __future__ import annotations


class S2SError(Exception):
    """Base class for all errors raised by the S2S library."""


# ---------------------------------------------------------------------------
# Substrate errors
# ---------------------------------------------------------------------------

class RdfError(S2SError):
    """Errors from the RDF substrate (terms, graph, serializers)."""


class RdfSyntaxError(RdfError):
    """A Turtle or RDF/XML document could not be parsed."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class OntologyError(S2SError):
    """Errors from the ontology model (schema construction, lookup)."""


class ValidationError(OntologyError):
    """An individual or value violates the ontology schema."""


class SqlError(S2SError):
    """Errors from the in-memory relational engine."""


class SqlSyntaxError(SqlError):
    """A SQL statement could not be parsed."""


class SqlExecutionError(SqlError):
    """A parsed SQL statement failed during execution."""


class XmlError(S2SError):
    """Errors from the XML substrate."""


class XmlSyntaxError(XmlError):
    """An XML document could not be parsed."""


class XPathError(XmlError):
    """An XPath expression could not be parsed or evaluated."""


class WebError(S2SError):
    """Errors from the simulated web substrate."""


class PageNotFoundError(WebError):
    """No page is registered at the requested URL."""

    def __init__(self, url: str) -> None:
        super().__init__(f"no page registered at URL: {url}")
        self.url = url


class WeblError(S2SError):
    """Errors from the WebL-like extraction language."""


class WeblSyntaxError(WeblError):
    """A WebL program could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"{message} (line {line})"
        super().__init__(message)
        self.line = line


class WeblRuntimeError(WeblError):
    """A WebL program failed during interpretation."""


# ---------------------------------------------------------------------------
# Middleware errors
# ---------------------------------------------------------------------------

class MappingError(S2SError):
    """Errors in the Mapping Module (attribute/data-source repositories)."""


class UnknownAttributeError(MappingError):
    """An attribute ID is not registered in the attribute repository."""

    def __init__(self, attribute_id: str) -> None:
        super().__init__(f"attribute not registered: {attribute_id!r}")
        self.attribute_id = attribute_id


class UnknownDataSourceError(MappingError):
    """A data source ID is not registered in the data source repository."""

    def __init__(self, source_id: str) -> None:
        super().__init__(f"data source not registered: {source_id!r}")
        self.source_id = source_id


class ExtractionError(S2SError):
    """An extractor failed to retrieve data from a source."""

    def __init__(self, message: str, *, attribute_id: str | None = None,
                 source_id: str | None = None) -> None:
        parts = [message]
        if attribute_id is not None:
            parts.append(f"attribute={attribute_id}")
        if source_id is not None:
            parts.append(f"source={source_id}")
        super().__init__("; ".join(parts))
        self.attribute_id = attribute_id
        self.source_id = source_id


class TransientSourceError(S2SError):
    """A source failed in a way that is expected to heal on retry.

    The Extractor Manager's retry policy re-attempts only this class;
    permanent failures (bad rules, missing columns, authentication)
    fail fast."""


class PoisonPayloadError(S2SError):
    """A payload that deterministically breaks its processor.

    Non-retryable by construction: re-running the job would fail the
    same way every time, so the ingest pipeline quarantines the job to
    the dead-letter ledger instead of burning its retry budget."""

    def __init__(self, message: str, *, source_id: str | None = None) -> None:
        if source_id is not None:
            message = f"{message} (source={source_id})"
        super().__init__(message)
        self.source_id = source_id


class DeadlineExceededError(S2SError):
    """An extraction ran out of its wall-clock time budget.

    Raised inside the Extractor Manager when a :class:`~repro.core.\
resilience.deadline.Deadline` expires; it is collected as an extraction
    problem (the source is reported as timed out) rather than aborting
    the whole query."""


class CircuitOpenError(S2SError):
    """A source's circuit breaker is open; the call was not attempted.

    Open breakers fail fast so a down source cannot burn the retry
    budget or the deadline of an entire federated query.  The Extractor
    Manager reacts by falling through to a replica when one is mapped."""

    def __init__(self, source_id: str, *, retry_after: float | None = None
                 ) -> None:
        message = f"circuit breaker open for source {source_id!r}"
        if retry_after is not None:
            message += f" (retry in {retry_after:.3f}s)"
        super().__init__(message)
        self.source_id = source_id
        self.retry_after = retry_after


class FleetQuotaExceeded(S2SError):
    """A sharded query fleet refused admission at one of its quotas.

    Raised by ``QueryShardCoordinator`` when a new query would exceed
    the fleet-wide ``max_inflight_requests`` cap (``scope="fleet"``) or
    the submitting tenant's ``tenant_quota`` of in-flight shard items
    (``scope="tenant"``).  The query server maps it onto the same
    RETRY_AFTER pushback frame its own admission control uses, so
    clients see one uniform "come back later" signal."""

    def __init__(self, message: str, *, tenant: str = "default",
                 scope: str = "fleet",
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.scope = scope
        self.retry_after = retry_after


class QueryError(S2SError):
    """Errors from the S2SQL query handler."""


class S2sqlSyntaxError(QueryError):
    """An S2SQL query could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class InstanceGenerationError(S2SError):
    """The instance generator could not assemble ontology instances."""
