"""Module entry point: ``python -m repro``.

The ``__name__`` guard matters: ``ingest run --pool subprocess`` spawns
worker processes, and the spawn start method re-imports the main module
in each child — without the guard every worker would re-run the CLI.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
