"""Measurement helpers.

``pytest-benchmark`` drives the statistically careful runs; these helpers
cover the *printed series* each benchmark also reports (the rows recorded
in EXPERIMENTS.md), with simple repeat-and-summarize timing.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Measurement:
    """Summary statistics of repeated timings (seconds)."""

    label: str
    repeats: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        """Mean in milliseconds."""
        return self.mean * 1e3

    @property
    def median_ms(self) -> float:
        """Median in milliseconds."""
        return self.median * 1e3

    def __str__(self) -> str:
        return (f"{self.label}: mean={self.mean_ms:.3f}ms "
                f"median={self.median_ms:.3f}ms "
                f"min={self.minimum * 1e3:.3f}ms (n={self.repeats})")


def measure(function: Callable[[], object], *, label: str = "",
            repeats: int = 5, warmup: int = 1) -> Measurement:
    """Time ``function`` ``repeats`` times after ``warmup`` runs."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    for _ in range(warmup):
        function()
    samples: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        samples.append(time.perf_counter() - started)
    return Measurement(
        label=label,
        repeats=repeats,
        mean=statistics.fmean(samples),
        median=statistics.median(samples),
        stdev=statistics.stdev(samples) if len(samples) > 1 else 0.0,
        minimum=min(samples),
        maximum=max(samples),
    )


def measure_value(function: Callable[[], object], *, label: str = ""
                  ) -> tuple[float, object]:
    """Single timed run returning (seconds, function result)."""
    started = time.perf_counter()
    result = function()
    return time.perf_counter() - started, result


def throughput(count: int, seconds: float) -> float:
    """Items per second, guarding against zero elapsed time."""
    if seconds <= 0:
        return float("inf")
    return count / seconds


@dataclass(frozen=True)
class StageCost:
    """One pipeline stage's share of a traced query."""

    stage: str
    seconds: float
    share: float  # fraction of the root span's duration

    @property
    def ms(self) -> float:
        return self.seconds * 1e3


def stage_breakdown(trace) -> list[StageCost]:
    """Per-stage cost of one traced query, in pipeline order.

    ``trace`` is a :class:`repro.obs.Trace` (``QueryResult.trace``).  The
    stages are the root span's direct children — parse, plan, extract,
    generate, filter for a standard query — each with its share of the
    end-to-end time, so benchmark tables can answer "where does the
    latency go?" per configuration."""
    total = trace.root.duration_seconds or 1.0
    return [StageCost(child.name, child.duration_seconds,
                      child.duration_seconds / total)
            for child in trace.root.children]
