"""Measurement helpers.

``pytest-benchmark`` drives the statistically careful runs; these helpers
cover the *printed series* each benchmark also reports (the rows recorded
in EXPERIMENTS.md), with simple repeat-and-summarize timing.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Measurement:
    """Summary statistics of repeated timings (seconds)."""

    label: str
    repeats: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        """Mean in milliseconds."""
        return self.mean * 1e3

    @property
    def median_ms(self) -> float:
        """Median in milliseconds."""
        return self.median * 1e3

    def __str__(self) -> str:
        return (f"{self.label}: mean={self.mean_ms:.3f}ms "
                f"median={self.median_ms:.3f}ms "
                f"min={self.minimum * 1e3:.3f}ms (n={self.repeats})")


def measure(function: Callable[[], object], *, label: str = "",
            repeats: int = 5, warmup: int = 1) -> Measurement:
    """Time ``function`` ``repeats`` times after ``warmup`` runs."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    for _ in range(warmup):
        function()
    samples: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        samples.append(time.perf_counter() - started)
    return Measurement(
        label=label,
        repeats=repeats,
        mean=statistics.fmean(samples),
        median=statistics.median(samples),
        stdev=statistics.stdev(samples) if len(samples) > 1 else 0.0,
        minimum=min(samples),
        maximum=max(samples),
    )


def measure_value(function: Callable[[], object], *, label: str = ""
                  ) -> tuple[float, object]:
    """Single timed run returning (seconds, function result)."""
    started = time.perf_counter()
    result = function()
    return time.perf_counter() - started, result


def throughput(count: int, seconds: float) -> float:
    """Items per second, guarding against zero elapsed time."""
    if seconds <= 0:
        return float("inf")
    return count / seconds
