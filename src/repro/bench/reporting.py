"""Result tables: aligned console output + CSV/Markdown export."""

from __future__ import annotations

import io


class ResultTable:
    """A small column-aligned table builder used by every benchmark."""

    def __init__(self, title: str, columns: list[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: object) -> None:
        """Append one row (arity-checked)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns")
        self.rows.append([self._render(value) for value in values])

    @staticmethod
    def _render(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.1f}"
            if abs(value) >= 1:
                return f"{value:.3f}"
            return f"{value:.5f}"
        return str(value)

    def to_text(self) -> str:
        """Column-aligned console rendering."""
        widths = [len(name) for name in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        header = "  ".join(name.ljust(widths[index])
                           for index, name in enumerate(self.columns))
        out.write(header + "\n")
        out.write("  ".join("-" * width for width in widths) + "\n")
        for row in self.rows:
            out.write("  ".join(cell.ljust(widths[index])
                                for index, cell in enumerate(row)) + "\n")
        return out.getvalue()

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        out = io.StringIO()
        out.write(f"### {self.title}\n\n")
        out.write("| " + " | ".join(self.columns) + " |\n")
        out.write("|" + "|".join("---" for _ in self.columns) + "|\n")
        for row in self.rows:
            out.write("| " + " | ".join(row) + " |\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """CSV rendering with quoting."""
        def escape(cell: str) -> str:
            if "," in cell or '"' in cell:
                return '"' + cell.replace('"', '""') + '"'
            return cell

        lines = [",".join(escape(name) for name in self.columns)]
        lines.extend(",".join(escape(cell) for cell in row)
                     for row in self.rows)
        return "\n".join(lines) + "\n"

    def print(self) -> None:
        """Print the text rendering to stdout."""
        print(self.to_text())
