"""Benchmark harness utilities: timing, statistics and table printing."""

from .harness import (Measurement, StageCost, measure, measure_value,
                      stage_breakdown)
from .reporting import ResultTable

__all__ = ["measure", "measure_value", "Measurement", "ResultTable",
           "StageCost", "stage_breakdown"]
