"""Benchmark harness utilities: timing, statistics and table printing."""

from .harness import Measurement, measure, measure_value
from .reporting import ResultTable

__all__ = ["measure", "measure_value", "Measurement", "ResultTable"]
