"""Per-source-type extractors (wrappers) and their registry.

"The extraction manager delegates a specific extractor for each extraction
method depending on the data source type.  For Web pages, the extraction
rules are delegated to a Web wrapper, for databases to a database
extractor, and so on." (paper section 2.4.3 step 4)

The :class:`Extractor` layer is deliberately thin — connectors already
speak their own rule language — because it is the *extensibility point*
the paper advertises ("the extractor and mapping architecture were
designed in order to be easily extended to support other extraction
methods and languages"): supporting a new source technology means one
DataSource subclass plus one Extractor subclass registered here, nothing
in the middleware core changes (claim C4 in DESIGN.md).
"""

from __future__ import annotations

import abc
import asyncio

from ...errors import ExtractionError, S2SError, TransientSourceError
from ...sources.base import DataSource
from ..mapping.attributes import MappingEntry
from ..mapping.rules import TransformRegistry
from .records import RawFragment


class Extractor(abc.ABC):
    """Executes extraction rules of one language against one source type."""

    #: The DataSource.source_type this extractor serves.
    source_type: str = "abstract"

    def __init__(self, transforms: TransformRegistry | None = None) -> None:
        self.transforms = transforms or TransformRegistry()

    def extract(self, source: DataSource, entry: MappingEntry) -> RawFragment:
        """Run one mapping entry against its source."""
        if source.source_type != self.source_type:
            raise ExtractionError(
                f"{type(self).__name__} cannot extract from "
                f"{source.source_type!r} source",
                attribute_id=entry.attribute_id, source_id=source.source_id)
        try:
            values = source.execute_rule(entry.rule.code)
        except (ExtractionError, TransientSourceError):
            # Transient errors keep their type so the manager's retry
            # policy can distinguish them from permanent failures.
            raise
        except S2SError as exc:
            raise ExtractionError(
                str(exc), attribute_id=entry.attribute_id,
                source_id=source.source_id) from exc
        values = self.transforms.apply(entry.rule.transform, values)
        return RawFragment(entry.attribute, source.source_id, values)

    async def aextract(self, source: DataSource,
                       entry: MappingEntry) -> RawFragment:
        """Async twin of :meth:`extract` for the asyncio engine.

        Sources exposing an ``aexecute_rule`` coroutine (the
        :class:`~repro.sources.base.AsyncDataSource` protocol) are
        awaited natively, keeping the event loop free while they wait on
        their transport; legacy sync connectors are the auto-adapted
        path — the whole synchronous :meth:`extract` runs in a worker
        thread.  Error classification and transform application are
        identical on both paths."""
        run_rule = getattr(source, "aexecute_rule", None)
        if run_rule is None:
            return await asyncio.to_thread(self.extract, source, entry)
        if source.source_type != self.source_type:
            raise ExtractionError(
                f"{type(self).__name__} cannot extract from "
                f"{source.source_type!r} source",
                attribute_id=entry.attribute_id, source_id=source.source_id)
        try:
            values = await run_rule(entry.rule.code)
        except (ExtractionError, TransientSourceError):
            raise
        except S2SError as exc:
            raise ExtractionError(
                str(exc), attribute_id=entry.attribute_id,
                source_id=source.source_id) from exc
        values = self.transforms.apply(entry.rule.transform, values)
        return RawFragment(entry.attribute, source.source_id, values)


class WebExtractor(Extractor):
    """Runs WebL rules against web-page sources (the paper's Web wrapper)."""

    source_type = "webpage"


class DatabaseExtractor(Extractor):
    """Runs SQL rules against database sources."""

    source_type = "database"


class XmlExtractor(Extractor):
    """Runs XPath rules against XML sources."""

    source_type = "xml"


class TextExtractor(Extractor):
    """Runs regex rules against plain-text sources."""

    source_type = "textfile"


class ExtractorRegistry:
    """source type → extractor dispatch table."""

    def __init__(self, transforms: TransformRegistry | None = None,
                 *, include_defaults: bool = True) -> None:
        self.transforms = transforms or TransformRegistry()
        self._extractors: dict[str, Extractor] = {}
        if include_defaults:
            for extractor_cls in (WebExtractor, DatabaseExtractor,
                                  XmlExtractor, TextExtractor):
                self.register(extractor_cls(self.transforms))

    def register(self, extractor: Extractor, *, replace: bool = False) -> None:
        """Install an extractor for its source type."""
        if extractor.source_type in self._extractors and not replace:
            raise ExtractionError(
                f"extractor for {extractor.source_type!r} already registered")
        self._extractors[extractor.source_type] = extractor

    def for_source(self, source: DataSource) -> Extractor:
        """The extractor serving a source's type; raises if none."""
        extractor = self._extractors.get(source.source_type)
        if extractor is None:
            raise ExtractionError(
                f"no extractor registered for source type "
                f"{source.source_type!r}", source_id=source.source_id)
        return extractor

    def supported_types(self) -> list[str]:
        """Source types with a registered extractor, sorted."""
        return sorted(self._extractors)
