"""Per-source fragment caching.

B2B sources change slowly (the paper: "data sources do not normally
change their structures"), so repeated queries over the same mapping can
reuse extracted fragments.  The cache key is the full extraction identity
— (source, attribute, rule code, transform) — so editing a rule naturally
misses; *data* changes inside a source are invisible to the middleware,
which is why invalidation is explicit (`invalidate(source_id)`) and the
cache is opt-in.

This is the lazy-vs-cached ablation of experiment E1.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..mapping.attributes import MappingEntry
from .records import RawFragment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...obs import MetricsRegistry


def _key(entry: MappingEntry) -> tuple[str, str, str, str | None]:
    return (entry.source_id, entry.attribute_id, entry.rule.code,
            entry.rule.transform)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), or 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FragmentCache:
    """Thread-safe cache of extracted fragments keyed by mapping entry.

    ``metrics`` optionally names a :class:`~repro.obs.MetricsRegistry`;
    when set, every lookup/invalidation also feeds the process-wide
    ``cache_hits_total`` / ``cache_misses_total`` /
    ``cache_invalidations_total`` counters (labelled by source)."""

    def __init__(self, *, max_entries: int = 10_000,
                 metrics: "MetricsRegistry | None" = None) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._entries: dict[tuple, list[str]] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.metrics = metrics

    def get(self, entry: MappingEntry) -> RawFragment | None:
        """Cached fragment for the entry, or None (counts a miss)."""
        with self._lock:
            values = self._entries.get(_key(entry))
            if values is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        if self.metrics is not None:
            name = ("cache_hits_total" if values is not None
                    else "cache_misses_total")
            self.metrics.counter(
                name, "fragment cache lookups").inc(
                    source=entry.source_id)
        if values is None:
            return None
        return RawFragment(entry.attribute, entry.source_id, list(values))

    def put(self, entry: MappingEntry, fragment: RawFragment) -> None:
        """Cache a fragment; resets wholesale when capacity is hit."""
        with self._lock:
            if len(self._entries) >= self.max_entries:
                # Simple wholesale reset: bounded memory matters more than
                # eviction precision for this workload.
                self._entries.clear()
            self._entries[_key(entry)] = list(fragment.values)

    def invalidate(self, source_id: str | None = None) -> int:
        """Drop cached fragments for one source, or everything."""
        with self._lock:
            if source_id is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                victims = [key for key in self._entries
                           if key[0] == source_id]
                for key in victims:
                    del self._entries[key]
                removed = len(victims)
            self.stats.invalidations += removed
        if self.metrics is not None and removed:
            self.metrics.counter(
                "cache_invalidations_total",
                "fragment cache entries dropped").inc(
                    removed, source=source_id or "*")
        return removed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
