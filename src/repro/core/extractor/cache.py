"""Per-source fragment caching with coherence and single-flight dedup.

B2B sources change slowly (the paper: "data sources do not normally
change their structures"), so repeated queries over the same mapping can
reuse extracted fragments.  The cache key is the full extraction identity
— (source, attribute, rule code, transform) — so editing a rule naturally
misses; *data* changes inside a source are invisible to the middleware,
which is why invalidation is explicit (`invalidate(source_id)`) and the
cache is opt-in.

Two coherence mechanisms support concurrent, batched query traffic:

* **Single-flight dedup** — when several threads miss on the same key at
  once, exactly one (the *leader*) performs the extraction; the others
  wait on the in-flight marker and are served the leader's result.  A
  failed flight does not poison the waiters: they wake, find the cache
  still empty, and the next one becomes leader and extracts itself.

* **Generation tags** — ``bump_generation()`` (called on every mapping
  reload) clears the cache *and* advances a generation counter.  Writers
  stamp :meth:`put` with the generation they observed when their scan
  started, so an extraction that began against the old mapping cannot
  write a stale fragment back after the reload — the put is discarded.

This is the lazy-vs-cached ablation of experiment E1 and the coherence
substrate of the batched executor (E14).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..mapping.attributes import MappingEntry
from .records import RawFragment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...obs import MetricsRegistry


def _key(entry: MappingEntry) -> tuple[str, str, str, str | None]:
    return (entry.source_id, entry.attribute_id, entry.rule.code,
            entry.rule.transform)


class _Flight:
    """In-flight marker for one cache key being extracted by a leader."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    flights: int = 0          # single-flight leaderships (extractions run)
    waits: int = 0            # lookups that blocked behind a flight
    dedup_hits: int = 0       # waiters served by a leader's result
    stale_discards: int = 0   # puts dropped by a generation bump

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), or 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def dedup_ratio(self) -> float:
        """Fraction of would-be extractions collapsed into a leader's
        flight: dedup_hits / (flights + dedup_hits), or 0.0."""
        total = self.flights + self.dedup_hits
        return self.dedup_hits / total if total else 0.0


class FragmentCache:
    """Thread-safe cache of extracted fragments keyed by mapping entry.

    ``metrics`` optionally names a :class:`~repro.obs.MetricsRegistry`;
    when set, every lookup/invalidation also feeds the process-wide
    ``cache_hits_total`` / ``cache_misses_total`` /
    ``cache_invalidations_total`` counters (labelled by source), and the
    single-flight protocol feeds ``cache_single_flight_total`` (labelled
    by role: leader / wait / dedup-hit) plus
    ``cache_stale_discards_total``."""

    def __init__(self, *, max_entries: int = 10_000,
                 metrics: "MetricsRegistry | None" = None) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._entries: dict[tuple, list[str]] = {}
        self._flights: dict[tuple, _Flight] = {}
        self._generation = 0
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.metrics = metrics

    # -- generations --------------------------------------------------------

    @property
    def generation(self) -> int:
        """The current mapping generation; captured at scan start and
        passed back through :meth:`put` so stale write-backs die."""
        with self._lock:
            return self._generation

    def bump_generation(self) -> int:
        """Advance the generation and drop every cached fragment.

        Called when the mapping is reloaded: fragments extracted under
        the old mapping are invalid, and any extraction *still running*
        against it will have its :meth:`put` discarded because it carries
        the old generation.  Returns the new generation."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += removed
            self._generation += 1
            generation = self._generation
        if self.metrics is not None and removed:
            self.metrics.counter(
                "cache_invalidations_total",
                "fragment cache entries dropped").inc(removed, source="*")
        return generation

    # -- lookups ------------------------------------------------------------

    def get(self, entry: MappingEntry) -> RawFragment | None:
        """Cached fragment for the entry, or None (counts a miss)."""
        with self._lock:
            values = self._entries.get(_key(entry))
            if values is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
                values = list(values)
        if self.metrics is not None:
            name = ("cache_hits_total" if values is not None
                    else "cache_misses_total")
            self.metrics.counter(
                name, "fragment cache lookups").inc(
                    source=entry.source_id)
        if values is None:
            return None
        return RawFragment(entry.attribute, entry.source_id, values)

    def _acquire_step(self, entry: MappingEntry, key: tuple,
                      waited: bool) -> tuple[list[str] | None, _Flight | None]:
        """One locked evaluation of the single-flight protocol.

        Returns ``(values, None)`` on a hit, ``(None, None)`` when the
        caller was elected leader, ``(None, flight)`` when it must wait
        on an existing flight.  Stats and metrics are recorded here so
        the sync and async acquire paths count identically."""
        flight = None
        with self._lock:
            values = self._entries.get(key)
            if values is not None:
                self.stats.hits += 1
                if waited:
                    self.stats.dedup_hits += 1
                values = list(values)
            else:
                flight = self._flights.get(key)
                if flight is None:
                    self._flights[key] = _Flight()
                    self.stats.misses += 1
                    self.stats.flights += 1
                else:
                    self.stats.waits += 1
        if self.metrics is None:
            return values, flight
        single_flight = self.metrics.counter(
            "cache_single_flight_total", "single-flight protocol events")
        if values is not None:
            self.metrics.counter(
                "cache_hits_total", "fragment cache lookups").inc(
                    source=entry.source_id)
            if waited:
                single_flight.inc(role="dedup-hit")
        elif flight is None:
            self.metrics.counter(
                "cache_misses_total", "fragment cache lookups").inc(
                    source=entry.source_id)
            single_flight.inc(role="leader")
        else:
            single_flight.inc(role="wait")
        return values, flight

    def acquire(self, entry: MappingEntry) -> tuple[RawFragment | None, bool]:
        """Single-flight lookup: ``(fragment, False)`` on a hit, or
        ``(None, True)`` when the caller is elected leader and must
        extract then :meth:`put` + :meth:`release`.

        When another thread already has the key in flight, blocks until
        that flight completes, then re-evaluates: a successful leader
        turns the wait into a dedup hit; a failed leader leaves the cache
        empty and this caller is elected leader itself (a failed flight
        never poisons its waiters)."""
        key = _key(entry)
        waited = False
        while True:
            values, flight = self._acquire_step(entry, key, waited)
            if values is not None:
                return (RawFragment(entry.attribute, entry.source_id,
                                    values), False)
            if flight is None:  # elected leader
                return None, True
            flight.event.wait()
            waited = True

    async def acquire_async(self, entry: MappingEntry
                            ) -> tuple[RawFragment | None, bool]:
        """:meth:`acquire` for callers running on an event loop.

        Identical protocol and bookkeeping, but waiting on a flight
        parks in a worker thread instead of blocking the loop — when the
        leader is another *task* on the same loop (concurrent queries on
        the asyncio engine's private loop), a blocking wait would
        deadlock it."""
        key = _key(entry)
        waited = False
        while True:
            values, flight = self._acquire_step(entry, key, waited)
            if values is not None:
                return (RawFragment(entry.attribute, entry.source_id,
                                    values), False)
            if flight is None:  # elected leader
                return None, True
            await asyncio.to_thread(flight.event.wait)
            waited = True

    def release(self, entry: MappingEntry) -> None:
        """End the caller's flight for ``entry``, waking every waiter.

        Must run (success *or* failure) after :meth:`acquire` elected the
        caller leader; :meth:`put` first on success so waiters observe
        the result.  Idempotent."""
        with self._lock:
            flight = self._flights.pop(_key(entry), None)
        if flight is not None:
            flight.event.set()

    # -- writes -------------------------------------------------------------

    def put(self, entry: MappingEntry, fragment: RawFragment, *,
            generation: int | None = None) -> bool:
        """Cache a fragment; resets wholesale when capacity is hit.

        ``generation`` is the value of :attr:`generation` the writer
        observed when its scan started; when the mapping was reloaded in
        the meantime the write is silently discarded (returns False) so a
        pre-reload extraction cannot resurrect stale data."""
        with self._lock:
            if (generation is not None
                    and generation != self._generation):
                self.stats.stale_discards += 1
                stale = True
            else:
                stale = False
                if len(self._entries) >= self.max_entries:
                    # Simple wholesale reset: bounded memory matters more
                    # than eviction precision for this workload.
                    self._entries.clear()
                self._entries[_key(entry)] = list(fragment.values)
        if stale and self.metrics is not None:
            self.metrics.counter(
                "cache_stale_discards_total",
                "stale write-backs dropped by a generation bump").inc(
                    source=entry.source_id)
        return not stale

    def invalidate(self, source_id: str | None = None) -> int:
        """Drop cached fragments for one source, or everything."""
        with self._lock:
            if source_id is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                victims = [key for key in self._entries
                           if key[0] == source_id]
                for key in victims:
                    del self._entries[key]
                removed = len(victims)
            self.stats.invalidations += removed
        if self.metrics is not None and removed:
            self.metrics.counter(
                "cache_invalidations_total",
                "fragment cache entries dropped").inc(
                    removed, source=source_id or "*")
        return removed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
