"""Raw extraction output and record correlation.

Section 2.3 of the paper distinguishes two data-source scenarios: a source
may hold *one* data record (a product page) or *n* records (a database of
watches).  An extractor returns, per attribute, the list of values found
in the source; :class:`SourceRecordSet` correlates those per-attribute
columns back into records by position — value *i* of every attribute
belongs to record *i* of the source.

Positional correlation is exact for SQL (row order is preserved across
rules with the same table scan order), for XPath over a homogeneous
document (document order), and for WebL rules written over repeating page
structure; it is the same contract wrapper systems of the period (W4F,
Caméléon) exposed.  Ragged columns — attributes yielding different counts
— indicate either optional fields or a mis-authored rule; the shorter
columns are padded with ``None`` and the event is flagged so the error
channel can report it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...ids import AttributePath


@dataclass
class RawFragment:
    """One attribute's extracted column from one source."""

    attribute: AttributePath
    source_id: str
    values: list[str]

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class SourceRecordSet:
    """All fragments from one source, aligned into records."""

    source_id: str
    fragments: list[RawFragment] = field(default_factory=list)
    ragged: bool = False

    def add(self, fragment: RawFragment) -> None:
        """Attach a fragment; must belong to this source."""
        if fragment.source_id != self.source_id:
            raise ValueError(
                f"fragment from {fragment.source_id!r} added to record set "
                f"of {self.source_id!r}")
        self.fragments.append(fragment)

    @property
    def record_count(self) -> int:
        """The longest fragment's length: the source's record count."""
        if not self.fragments:
            return 0
        return max(len(fragment) for fragment in self.fragments)

    @property
    def attributes(self) -> list[AttributePath]:
        """Attribute paths of the collected fragments."""
        return [fragment.attribute for fragment in self.fragments]

    def align(self) -> list[dict[str, str | None]]:
        """Correlate columns into records: attribute ID → value maps.

        Detects ragged columns and pads them with ``None``."""
        count = self.record_count
        lengths = {len(fragment) for fragment in self.fragments}
        if len(lengths) > 1:
            self.ragged = True
        records: list[dict[str, str | None]] = []
        for index in range(count):
            record: dict[str, str | None] = {}
            for fragment in self.fragments:
                value = (fragment.values[index]
                         if index < len(fragment.values) else None)
                record[str(fragment.attribute)] = value
            records.append(record)
        return records

    def is_single_record(self) -> bool:
        """The paper's scenario 1: a source describing one entity."""
        return self.record_count == 1
