"""Extraction schemas (paper section 2.4.1).

"After processing the query, the system must retrieve data in order to
answer the query.  The extraction is based on attributes, so this area
retrieves extraction schemas of the required attributes, thus indicating
to the extractor how the extraction is executed."

An :class:`ExtractionSchema` is the per-query slice of the attribute
repository: the mapping entries for the required attributes, grouped by
data source so each source is visited once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...ids import AttributePath
from ..mapping.attributes import MappingEntry
from ..mapping.repository import AttributeRepository


@dataclass
class ExtractionSchema:
    """Mapping entries for one extraction run, grouped by source."""

    requested: list[AttributePath]
    by_source: dict[str, list[MappingEntry]] = field(default_factory=dict)
    missing: list[AttributePath] = field(default_factory=list)

    @classmethod
    def build(cls, repository: AttributeRepository,
              attributes: list[AttributePath]) -> "ExtractionSchema":
        """Collect entries for ``attributes``; unmapped paths are recorded in
        ``missing`` rather than raising — a query may legitimately touch
        attributes no source provides, and the instance generator reports
        them through the error channel."""
        schema = cls(requested=list(attributes))
        for path in attributes:
            entries = repository.try_entries_for(path)
            if not entries:
                schema.missing.append(path)
                continue
            for entry in entries:
                schema.by_source.setdefault(entry.source_id, []).append(entry)
        return schema

    def source_ids(self) -> list[str]:
        """Sources this extraction must visit, sorted."""
        return sorted(self.by_source)

    def entry_count(self) -> int:
        """Total mapping entries in the schema."""
        return sum(len(entries) for entries in self.by_source.values())

    def attributes_for_source(self, source_id: str) -> list[AttributePath]:
        """Attribute paths extracted from one source."""
        return [entry.attribute for entry in self.by_source.get(source_id, [])]

    def __bool__(self) -> bool:
        return bool(self.by_source)
