"""Extraction schemas (paper section 2.4.1).

"After processing the query, the system must retrieve data in order to
answer the query.  The extraction is based on attributes, so this area
retrieves extraction schemas of the required attributes, thus indicating
to the extractor how the extraction is executed."

An :class:`ExtractionSchema` is the per-query slice of the attribute
repository: the mapping entries for the required attributes, grouped by
data source so each source is visited once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...ids import AttributePath
from ..mapping.attributes import MappingEntry
from ..mapping.repository import AttributeRepository


@dataclass
class ExtractionSchema:
    """Mapping entries for one extraction run, grouped by source.

    Failover replicas (entries with ``replica_of`` set) are kept out of
    the normal per-source fan-out: they sit in ``replicas``, keyed by
    ``(attribute_id, primary_source_id)``, and are only consulted when
    the primary's extraction fails (see the Extractor Manager)."""

    requested: list[AttributePath]
    by_source: dict[str, list[MappingEntry]] = field(default_factory=dict)
    missing: list[AttributePath] = field(default_factory=list)
    replicas: dict[tuple[str, str], list[MappingEntry]] = field(
        default_factory=dict)

    @classmethod
    def build(cls, repository: AttributeRepository,
              attributes: list[AttributePath]) -> "ExtractionSchema":
        """Collect entries for ``attributes``; unmapped paths are recorded in
        ``missing`` rather than raising — a query may legitimately touch
        attributes no source provides, and the instance generator reports
        them through the error channel."""
        schema = cls(requested=list(attributes))
        for path in attributes:
            entries = repository.try_entries_for(path)
            if not entries:
                schema.missing.append(path)
                continue
            primaries = [e for e in entries if not e.is_replica]
            if not primaries:
                # Replicas with no surviving primary still serve the
                # attribute: promote them so the data stays reachable.
                primaries = entries
            for entry in primaries:
                schema.by_source.setdefault(entry.source_id, []).append(entry)
            for entry in entries:
                if entry.is_replica and entry not in primaries:
                    key = (str(path), entry.replica_of)
                    schema.replicas.setdefault(key, []).append(entry)
        return schema

    def replicas_for(self, attribute_id: str,
                     source_id: str) -> list[MappingEntry]:
        """Failover entries for one (attribute, primary source) pair, in
        registration order."""
        return list(self.replicas.get((attribute_id, source_id), []))

    def source_ids(self) -> list[str]:
        """Sources this extraction must visit, sorted."""
        return sorted(self.by_source)

    def entry_count(self) -> int:
        """Total mapping entries in the schema."""
        return sum(len(entries) for entries in self.by_source.values())

    def attributes_for_source(self, source_id: str) -> list[AttributePath]:
        """Attribute paths extracted from one source."""
        return [entry.attribute for entry in self.by_source.get(source_id, [])]

    def __bool__(self) -> bool:
        return bool(self.by_source)
