"""The Extractor Manager: the 4-step extraction process of Figure 5.

Step 1 — *know what data to extract*: the query handler supplies the
required attribute list.
Step 2 — *obtain extraction schema*: the attribute repository yields the
rules for those attributes.
Step 3 — *obtain data source information*: each referenced source's
connection definition is fetched from the data source repository.
Step 4 — *extract data*: the mediator delegates each entry to the
extractor registered for the source's type and collects the raw
fragments into per-source record sets.

Failures are collected, not fatal: a dead source must not take down a
federated query.  In ``strict`` mode the first failure raises instead —
useful in tests and during mapping authoring.

Two opt-in performance features (both ablated in experiment E1):

* ``parallel=True`` extracts sources concurrently with a thread pool —
  sources are independent remote systems, so with any per-source latency
  the fan-out wins wall-clock time;
* ``cache=FragmentCache()`` reuses fragments across queries until
  explicitly invalidated.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ...errors import S2SError
from ...ids import AttributePath
from ..mapping.attributes import MappingEntry
from ..mapping.datasources import DataSourceRepository
from ..mapping.repository import AttributeRepository
from .cache import FragmentCache
from .extractors import ExtractorRegistry
from .records import SourceRecordSet
from .schema import ExtractionSchema


@dataclass
class ExtractionProblem:
    """One failure recorded during extraction (for the error channel)."""

    source_id: str
    attribute_id: str | None
    message: str

    def __str__(self) -> str:
        scope = f"{self.source_id}" + (
            f"/{self.attribute_id}" if self.attribute_id else "")
        return f"[{scope}] {self.message}"


@dataclass
class ExtractionOutcome:
    """Everything step 4 produced: record sets + problems + timings."""

    record_sets: dict[str, SourceRecordSet] = field(default_factory=dict)
    problems: list[ExtractionProblem] = field(default_factory=list)
    missing_attributes: list[AttributePath] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    per_source_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no problems were recorded."""
        return not self.problems

    def total_records(self) -> int:
        """Total records across all sources' record sets."""
        return sum(rs.record_count for rs in self.record_sets.values())


@dataclass
class _SourceResult:
    source_id: str
    record_set: SourceRecordSet | None
    problems: list[ExtractionProblem]
    elapsed: float


class ExtractorManager:
    """Mediator between the mapping repositories and the extractors."""

    def __init__(self, attributes: AttributeRepository,
                 sources: DataSourceRepository,
                 extractors: ExtractorRegistry | None = None,
                 *, strict: bool = False, parallel: bool = False,
                 max_workers: int | None = None,
                 cache: FragmentCache | None = None,
                 retries: int = 0, retry_delay: float = 0.0) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.attributes = attributes
        self.sources = sources
        self.extractors = extractors or ExtractorRegistry()
        self.strict = strict
        self.parallel = parallel
        self.max_workers = max_workers
        self.cache = cache
        self.retries = retries
        self.retry_delay = retry_delay
        self.retry_count = 0  # total retried attempts, for observability

    def obtain_extraction_schema(self,
                                 required: list[AttributePath]
                                 ) -> ExtractionSchema:
        """Step 2 (task 2.4.1)."""
        return ExtractionSchema.build(self.attributes, required)

    def extract(self, required: list[AttributePath]) -> ExtractionOutcome:
        """Run steps 2-4 for the given required-attribute list (step 1 is
        the caller's query analysis)."""
        started = time.perf_counter()
        schema = self.obtain_extraction_schema(required)
        outcome = ExtractionOutcome(missing_attributes=list(schema.missing))

        source_ids = schema.source_ids()
        if self.parallel and len(source_ids) > 1:
            workers = self.max_workers or min(len(source_ids), 16)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(
                    lambda sid: self._extract_source(
                        sid, schema.by_source[sid]),
                    source_ids))
        else:
            results = [self._extract_source(sid, schema.by_source[sid])
                       for sid in source_ids]

        for result in results:
            outcome.problems.extend(result.problems)
            if result.record_set is not None and result.record_set.fragments:
                outcome.record_sets[result.source_id] = result.record_set
            outcome.per_source_seconds[result.source_id] = result.elapsed
        outcome.elapsed_seconds = time.perf_counter() - started
        return outcome

    def _extract_source(self, source_id: str,
                        entries: list[MappingEntry]) -> _SourceResult:
        """Steps 3 and 4 for one source."""
        started = time.perf_counter()
        problems: list[ExtractionProblem] = []
        try:
            source = self.sources.get(source_id)  # step 3
            extractor = self.extractors.for_source(source)
        except S2SError as exc:
            if self.strict:
                raise
            problems.append(ExtractionProblem(source_id, None, str(exc)))
            return _SourceResult(source_id, None, problems,
                                 time.perf_counter() - started)
        record_set = SourceRecordSet(source_id)
        for entry in entries:
            if self.cache is not None:
                cached = self.cache.get(entry)
                if cached is not None:
                    record_set.add(cached)
                    continue
            try:
                fragment = self._extract_with_retry(extractor, source,
                                                    entry)  # step 4
            except S2SError as exc:
                if self.strict:
                    raise
                problems.append(ExtractionProblem(
                    source_id, entry.attribute_id, str(exc)))
                continue
            if self.cache is not None:
                self.cache.put(entry, fragment)
            record_set.add(fragment)
        return _SourceResult(source_id, record_set, problems,
                             time.perf_counter() - started)

    def _extract_with_retry(self, extractor, source, entry):
        """Retry transient failures up to ``retries`` times.

        Only :class:`~repro.errors.TransientSourceError` is retried —
        permanent failures (rule errors, missing columns, authentication)
        would fail identically every time."""
        from ...errors import TransientSourceError
        attempt = 0
        while True:
            try:
                return extractor.extract(source, entry)
            except TransientSourceError:
                if attempt >= self.retries:
                    raise
                attempt += 1
                self.retry_count += 1
                if self.retry_delay > 0:
                    time.sleep(self.retry_delay)

    def extract_all_registered(self) -> ExtractionOutcome:
        """Eager full materialization: extract every mapped attribute.

        This is the non-query-driven variant measured by the E1 ablation
        (lazy query-driven extraction vs eager materialization)."""
        paths = [AttributePath.parse(attribute_id)
                 for attribute_id in self.attributes.attribute_ids()]
        return self.extract(paths)
