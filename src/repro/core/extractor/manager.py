"""The Extractor Manager: the 4-step extraction process of Figure 5.

Step 1 — *know what data to extract*: the query handler supplies the
required attribute list.
Step 2 — *obtain extraction schema*: the attribute repository yields the
rules for those attributes.
Step 3 — *obtain data source information*: each referenced source's
connection definition is fetched from the data source repository.
Step 4 — *extract data*: the mediator delegates each entry to the
extractor registered for the source's type and collects the raw
fragments into per-source record sets.

Failures are collected, not fatal: a dead source must not take down a
federated query.  In ``strict`` mode the first failure raises instead —
useful in tests and during mapping authoring.

Because B2B sources live on other organizations' infrastructure, step 4
runs under the resilience layer (:mod:`repro.core.resilience`, all
configured through one :class:`~repro.core.resilience.ResilienceConfig`):

* transient failures are retried with exponential backoff + full jitter
  under a per-extraction retry budget;
* every source sits behind a circuit breaker — a down source fails fast
  instead of burning the rest of the query's budget;
* a wall-clock :class:`~repro.core.resilience.Deadline` bounds the whole
  run in both the serial and the parallel path, reporting timed-out
  sources as problems instead of hanging;
* when a primary source is exhausted or its breaker is open, the manager
  falls through to *replica* mappings of the same attribute
  (``register_attribute(..., replica_of=...)``);
* a per-source :class:`~repro.core.resilience.SourceHealth` ledger is
  attached to every outcome so callers can distinguish a complete answer
  from a best-effort one.

Two opt-in performance features (both ablated in experiment E1): a
``thread``-mode :class:`~repro.core.resilience.ConcurrencyConfig`
extracts sources concurrently with a thread pool (``asyncio`` mode
selects the :class:`~repro.core.extractor.AsyncExtractorManager`
subclass instead — see ``docs/async.md``), and ``cache=FragmentCache()``
reuses fragments across queries until explicitly invalidated.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any

from ...errors import (CircuitOpenError, DeadlineExceededError, S2SError,
                       TransientSourceError)
from ...ids import AttributePath
from ...obs import NULL_SPAN, MetricsRegistry
from ...obs.trace import NullSpan, Span
from ..mapping.attributes import MappingEntry
from ..mapping.datasources import DataSourceRepository
from ..mapping.repository import AttributeRepository
from ..resilience import (UNSET, CircuitBreakerRegistry, Deadline,
                          RetryBudget, SourceHealth, SourceHealthRegistry,
                          legacy_kwargs_to_config)
from ..resilience.config import ResilienceConfig
from .cache import FragmentCache
from .extractors import ExtractorRegistry
from .records import RawFragment, SourceRecordSet
from .schema import ExtractionSchema

#: Anything span-shaped the instrumentation points accept.
AnySpan = Span | NullSpan

logger = logging.getLogger("repro.core.extractor")


@dataclass
class ExtractionProblem:
    """One failure recorded during extraction (for the error channel)."""

    source_id: str
    attribute_id: str | None
    message: str

    def __str__(self) -> str:
        scope = f"{self.source_id}" + (
            f"/{self.attribute_id}" if self.attribute_id else "")
        return f"[{scope}] {self.message}"


@dataclass
class ExtractionOutcome:
    """Everything step 4 produced: record sets + problems + timings +
    per-source health."""

    record_sets: dict[str, SourceRecordSet] = field(default_factory=dict)
    problems: list[ExtractionProblem] = field(default_factory=list)
    missing_attributes: list[AttributePath] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    per_source_seconds: dict[str, float] = field(default_factory=dict)
    health: dict[str, SourceHealth] = field(default_factory=dict)
    deadline_seconds: float | None = None

    @property
    def ok(self) -> bool:
        """True when no problems were recorded."""
        return not self.problems

    @property
    def degraded(self) -> bool:
        """True when the answer is best-effort rather than complete:
        problems, unmapped attributes, replica substitution, deadline
        expiry or a non-closed breaker."""
        return bool(self.problems or self.missing_attributes
                    or any(h.degraded for h in self.health.values()))

    @property
    def degraded_sources(self) -> list[str]:
        """Sources that contributed to degradation, sorted."""
        sources = {p.source_id for p in self.problems}
        sources.update(source_id for source_id, h in self.health.items()
                       if h.degraded)
        return sorted(sources)

    def total_records(self) -> int:
        """Total records across all sources' record sets."""
        return sum(rs.record_count for rs in self.record_sets.values())


@dataclass
class _SourceResult:
    source_id: str
    record_set: SourceRecordSet | None
    problems: list[ExtractionProblem]
    elapsed: float


@dataclass
class _RunContext:
    """Per-``extract()`` state shared by all source workers."""

    schema: ExtractionSchema
    deadline: Deadline
    budget: RetryBudget
    health: SourceHealthRegistry
    #: Cache generation observed when this run started; write-backs carry
    #: it so a mapping reload mid-run discards them (coherence).
    cache_generation: int = 0


class ExtractorManager:
    """Mediator between the mapping repositories and the extractors."""

    def __init__(self, attributes: AttributeRepository,
                 sources: DataSourceRepository,
                 extractors: ExtractorRegistry | None = None,
                 *, strict: bool = False,
                 cache: FragmentCache | None = None,
                 resilience: ResilienceConfig | None = None,
                 metrics: MetricsRegistry | None = None,
                 parallel: Any = UNSET, max_workers: Any = UNSET,
                 retries: Any = UNSET, retry_delay: Any = UNSET) -> None:
        self.config = legacy_kwargs_to_config(
            resilience, parallel=parallel, max_workers=max_workers,
            retries=retries, retry_delay=retry_delay,
            owner="ExtractorManager")
        self.attributes = attributes
        self.sources = sources
        self.extractors = extractors or ExtractorRegistry()
        self.strict = strict
        self.cache = cache
        self.metrics = metrics
        self.breakers = (CircuitBreakerRegistry(
            self.config.breaker, self.config.clock,
            listener=self._breaker_transition
            if metrics is not None else None)
            if self.config.breaker is not None else None)
        self.health = SourceHealthRegistry()  # cumulative across runs
        self.retry_count = 0  # total retried attempts, for observability
        self._rng = self.config.retry.make_rng()
        self._lock = threading.Lock()  # guards _rng and retry_count

    def _breaker_transition(self, source_id: str, old: str,
                            new: str) -> None:
        """Breaker listener: count every state transition per source."""
        self.metrics.counter(
            "breaker_transitions_total",
            "circuit breaker state transitions").inc(
                source=source_id, from_state=old, to_state=new)

    # -- legacy accessors (pre-ResilienceConfig API) -----------------------

    @property
    def parallel(self) -> bool:
        return self.config.parallel

    @property
    def max_workers(self) -> int | None:
        return self.config.max_workers

    @property
    def retries(self) -> int:
        return self.config.retry.retries

    @property
    def retry_delay(self) -> float:
        return self.config.retry.base_delay

    # ----------------------------------------------------------------------

    def obtain_extraction_schema(self,
                                 required: list[AttributePath]
                                 ) -> ExtractionSchema:
        """Step 2 (task 2.4.1)."""
        return ExtractionSchema.build(self.attributes, required)

    def extract(self, required: list[AttributePath],
                *, deadline: Deadline | float | None = None,
                span: AnySpan = NULL_SPAN,
                schema: ExtractionSchema | None = None) -> ExtractionOutcome:
        """Run steps 2-4 for the given required-attribute list (step 1 is
        the caller's query analysis).

        ``deadline`` overrides the configured wall-clock budget for this
        run (a number of seconds or a prepared :class:`Deadline`);
        ``span`` is the parent trace span when the caller is traced;
        ``schema`` lets a caller that already built the extraction schema
        (the batch executor shares one between planning and result
        projection) pass it in instead of rebuilding it."""
        started = time.perf_counter()
        if schema is None:
            schema = self.obtain_extraction_schema(required)
        if deadline is None:
            deadline = Deadline(self.config.deadline_seconds,
                                self.config.clock)
        elif not isinstance(deadline, Deadline):
            deadline = Deadline(float(deadline), self.config.clock)
        ctx = _RunContext(schema, deadline,
                          RetryBudget(self.config.retry.budget),
                          SourceHealthRegistry(),
                          cache_generation=(self.cache.generation
                                            if self.cache is not None else 0))
        outcome = ExtractionOutcome(missing_attributes=list(schema.missing),
                                    deadline_seconds=deadline.seconds)

        source_ids = schema.source_ids()
        span.annotate(sources=len(source_ids),
                      entries=schema.entry_count(),
                      parallel=self.config.parallel)
        if self.config.parallel and len(source_ids) > 1:
            results = self._extract_parallel(source_ids, ctx, outcome, span)
        else:
            results = [self._extract_source(sid, schema.by_source[sid], ctx,
                                            span)
                       for sid in source_ids]

        for result in sorted(results, key=lambda r: r.source_id):
            outcome.problems.extend(result.problems)
            if result.record_set is not None and result.record_set.fragments:
                outcome.record_sets[result.source_id] = result.record_set
            outcome.per_source_seconds[result.source_id] = result.elapsed
        self._stamp_breaker_states(ctx.health)
        outcome.health = ctx.health.snapshot()
        self.health.merge_from(ctx.health)
        outcome.elapsed_seconds = time.perf_counter() - started
        if self.metrics is not None:
            self._record_outcome_metrics(outcome)
        return outcome

    async def extract_async(self, required: list[AttributePath],
                            *, deadline: Deadline | float | None = None,
                            span: AnySpan = NULL_SPAN,
                            schema: ExtractionSchema | None = None
                            ) -> ExtractionOutcome:
        """Awaitable :meth:`extract` — the hook ``aquery()`` rides on.

        The base (serial / thread-pool) engine has no native async
        implementation, so the whole synchronous extraction runs in a
        worker thread, keeping the caller's event loop responsive while
        producing byte-identical outcomes and span trees.  The
        :class:`~repro.core.extractor.AsyncExtractorManager` subclass
        overrides this with a true asyncio fan-out."""
        return await asyncio.to_thread(
            self.extract, required, deadline=deadline, span=span,
            schema=schema)

    def close(self) -> None:
        """Release engine resources; a no-op for the thread engine.

        The middleware calls this when a mapping reload replaces the
        manager; the asyncio subclass uses it to stop its private event
        loop."""

    def _record_outcome_metrics(self, outcome: ExtractionOutcome) -> None:
        metrics = self.metrics
        metrics.counter("extractions_total",
                        "extraction runs").inc()
        metrics.histogram("extraction_seconds",
                          "wall-clock time of one extraction run"
                          ).observe(outcome.elapsed_seconds)
        if outcome.problems:
            metrics.counter("extraction_problems_total",
                            "failures recorded during extraction").inc(
                                len(outcome.problems))
        if outcome.degraded:
            metrics.counter("degraded_extractions_total",
                            "extraction runs with best-effort answers"
                            ).inc()
        for source_id, health in outcome.health.items():
            if health.failovers:
                metrics.counter("failovers_total",
                                "replica substitutions for a primary"
                                ).inc(health.failovers, source=source_id)

    def _extract_parallel(self, source_ids: list[str], ctx: _RunContext,
                          outcome: ExtractionOutcome,
                          span: AnySpan) -> list[_SourceResult]:
        """Fan out one worker per source, bounded by the deadline.

        Workers police the deadline themselves between entries (their
        sleeps are clamped to the remaining budget), so the outer wait
        timeout only matters when a connector blocks in foreign code —
        then the source is reported as timed out and its thread is
        abandoned rather than joined.

        Pool sizing follows the concurrency config: an explicit
        ``max_workers`` is honored exactly, ``0`` means one worker per
        source (unbounded), and the adaptive default caps at
        ``min(n_sources, 16)`` — when that default cap truncates the
        fan-out, the truncation is logged, counted
        (``fanout_capped_total``) and annotated on the span, so a
        many-slow-sources workload silently queueing behind 16 threads
        is visible (and steerable to ``asyncio`` mode, which has no
        cap)."""
        concurrency = self.config.concurrency
        workers = concurrency.workers_for(len(source_ids))
        if concurrency.caps_fanout(len(source_ids)):
            span.annotate(fanout_capped=workers)
            logger.warning(
                "extraction fan-out truncated: %d sources queue behind "
                "%d workers (set ConcurrencyConfig(max_workers=0) for "
                "unbounded threads, or mode='asyncio' for uncapped "
                "non-blocking fan-out)", len(source_ids), workers)
            if self.metrics is not None:
                self.metrics.counter(
                    "fanout_capped_total",
                    "extractions whose fan-out was truncated by the "
                    "adaptive worker cap").inc(
                        sources=str(len(source_ids)))
        pool = ThreadPoolExecutor(max_workers=workers)
        try:
            futures = {
                pool.submit(self._extract_source, sid,
                            ctx.schema.by_source[sid], ctx, span): sid
                for sid in source_ids}
            timeout = (None if ctx.deadline.unbounded
                       else max(ctx.deadline.remaining(), 0.05))
            done, not_done = wait(futures, timeout=timeout,
                                  return_when=FIRST_EXCEPTION)
            results = []
            for future in done:
                results.append(future.result())  # re-raises in strict mode
            for future in not_done:
                future.cancel()
                source_id = futures[future]
                ctx.health.for_source(source_id).deadline_hits += 1
                outcome.problems.append(ExtractionProblem(
                    source_id, None,
                    f"source did not complete within the "
                    f"{ctx.deadline.seconds:.3f}s extraction deadline"))
                outcome.per_source_seconds.setdefault(
                    source_id, ctx.deadline.seconds or 0.0)
        finally:
            # Never join abandoned workers: they police the deadline
            # themselves and exit on their next check.
            pool.shutdown(wait=False, cancel_futures=True)
        return results

    def _stamp_breaker_states(self, health: SourceHealthRegistry) -> None:
        if self.breakers is None:
            return
        for source_id in health.snapshot():
            breaker = self.breakers.get(source_id)
            record = health.for_source(source_id)
            record.breaker_state = breaker.state
            record.breaker_trips = breaker.open_count

    def _extract_source(self, source_id: str, entries: list[MappingEntry],
                        ctx: _RunContext,
                        parent_span: AnySpan = NULL_SPAN) -> _SourceResult:
        """Steps 3 and 4 for one source."""
        started = time.perf_counter()
        problems: list[ExtractionProblem] = []
        span = parent_span.child("source", source=source_id,
                                 entries=len(entries))
        try:
            try:
                source = self.sources.get(source_id)  # step 3
                extractor = self.extractors.for_source(source)
            except S2SError as exc:
                span.fail(str(exc))
                if self.strict:
                    raise
                problems.append(ExtractionProblem(source_id, None, str(exc)))
                return _SourceResult(source_id, None, problems,
                                     time.perf_counter() - started)
            record_set = SourceRecordSet(source_id)
            for index, entry in enumerate(entries):
                if ctx.deadline.expired:
                    ctx.health.for_source(source_id).deadline_hits += 1
                    span.annotate(deadline_expired=True)
                    problems.append(ExtractionProblem(
                        source_id, entry.attribute_id,
                        f"extraction deadline of {ctx.deadline.seconds:.3f}s "
                        f"exceeded; skipped {len(entries) - index} remaining "
                        f"entries"))
                    break
                entry_span = span.child("entry",
                                        attribute=entry.attribute_id)
                leading = False
                try:
                    if self.cache is not None:
                        # Single-flight: a concurrent identical scan either
                        # serves us its result or elects us leader.
                        cached, leading = self.cache.acquire(entry)
                        if cached is not None:
                            entry_span.annotate(cache="hit")
                            record_set.add(cached)
                            continue
                        entry_span.annotate(cache="miss")
                    try:
                        fragment = self._extract_entry(
                            source_id, source, extractor, entry, ctx,
                            entry_span)  # step 4
                    except DeadlineExceededError as exc:
                        entry_span.fail(str(exc))
                        if self.strict:
                            raise
                        ctx.health.for_source(source_id).deadline_hits += 1
                        problems.append(ExtractionProblem(
                            source_id, entry.attribute_id, str(exc)))
                        break
                    except S2SError as exc:
                        entry_span.fail(str(exc))
                        if self.strict:
                            raise
                        problems.append(ExtractionProblem(
                            source_id, entry.attribute_id, str(exc)))
                        continue
                    if self.cache is not None:
                        self.cache.put(entry, fragment,
                                       generation=ctx.cache_generation)
                    entry_span.annotate(values=len(fragment.values))
                    record_set.add(fragment)
                finally:
                    if leading:
                        # Wakes waiters whether we stored a fragment or
                        # failed — a failed flight must not poison them.
                        self.cache.release(entry)
                    entry_span.finish()
            return _SourceResult(source_id, record_set, problems,
                                 time.perf_counter() - started)
        finally:
            if problems:
                span.annotate(problems=len(problems))
            span.finish()

    def _extract_entry(self, source_id: str, source, extractor,
                       entry: MappingEntry, ctx: _RunContext,
                       span: AnySpan = NULL_SPAN) -> RawFragment:
        """One mapping entry: primary attempt chain, then replicas.

        Failover engages when the primary's retries are exhausted or its
        breaker is open — not on permanent rule errors (a broken rule is
        a mapping bug the replica's own rule would not fix) and not once
        the deadline has expired."""
        try:
            return self._call_with_policy(source_id, source, extractor,
                                          entry, ctx, span)
        except DeadlineExceededError:
            raise
        except (TransientSourceError, CircuitOpenError) as primary_error:
            replicas = (ctx.schema.replicas_for(entry.attribute_id, source_id)
                        if self.config.failover else [])
            for replica in replicas:
                if ctx.deadline.expired:
                    break
                failover_span = span.child("failover",
                                           replica=replica.source_id)
                try:
                    replica_source = self.sources.get(replica.source_id)
                    replica_extractor = self.extractors.for_source(
                        replica_source)
                    fragment = self._call_with_policy(
                        replica.source_id, replica_source, replica_extractor,
                        replica, ctx, failover_span)
                except S2SError as exc:
                    failover_span.fail(str(exc))
                    failover_span.finish()
                    continue
                failover_span.finish()
                ctx.health.for_source(source_id).failovers += 1
                ctx.health.for_source(replica.source_id).served_for += 1
                # Relabel so positional correlation joins the primary's
                # record set (replicas serve the same records in order).
                return RawFragment(fragment.attribute, source_id,
                                   fragment.values)
            raise primary_error

    def _call_with_policy(self, source_id: str, source, extractor,
                          entry: MappingEntry, ctx: _RunContext,
                          span: AnySpan = NULL_SPAN) -> RawFragment:
        """One rule execution under retry policy, breaker and deadline.

        Only :class:`~repro.errors.TransientSourceError` is retried —
        permanent failures (rule errors, missing columns, authentication)
        would fail identically every time, so they propagate at once and
        never count toward the breaker threshold."""
        policy = self.config.retry
        breaker = (self.breakers.get(source_id)
                   if self.breakers is not None else None)
        health = ctx.health.for_source(source_id)
        attempt = 0
        while True:
            ctx.deadline.check(f"extraction of {entry.attribute_id} "
                               f"from {source_id!r}")
            if breaker is not None and not breaker.allow():
                error = CircuitOpenError(source_id,
                                         retry_after=breaker.retry_after())
                health.last_error = str(error)
                span.child("breaker-open", source=source_id).finish()
                if self.metrics is not None:
                    self.metrics.counter(
                        "breaker_rejections_total",
                        "calls refused by an open circuit breaker").inc(
                            source=source_id)
                raise error
            health.attempts += 1
            attempt_span = span.child("attempt", number=attempt + 1,
                                      source=source_id)
            try:
                fragment = extractor.extract(source, entry)
            except TransientSourceError as exc:
                attempt_span.fail(str(exc))
                attempt_span.annotate(outcome="transient-error")
                attempt_span.finish()
                health.failures += 1
                health.last_error = str(exc)
                if breaker is not None:
                    breaker.record_failure()
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
                if not ctx.budget.try_consume():
                    raise TransientSourceError(
                        f"{exc}; per-extraction retry budget exhausted"
                    ) from exc
                with self._lock:
                    self.retry_count += 1
                    delay = policy.delay_for(attempt, self._rng)
                health.retries += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "retries_total",
                        "re-attempts after transient failures").inc(
                            source=source_id)
                if delay > 0:
                    with span.child("backoff", seconds=round(delay, 6)):
                        self.config.clock.sleep(ctx.deadline.clamp(delay))
                continue
            except S2SError as exc:
                attempt_span.fail(str(exc))
                attempt_span.annotate(outcome="permanent-error")
                attempt_span.finish()
                health.failures += 1
                health.last_error = str(exc)
                raise
            if breaker is not None:
                breaker.record_success()
            health.successes += 1
            # Sources may expose a one-shot digest of the execution they
            # just served (e.g. the relational source's SQL plan digest);
            # attach it to the attempt span for explain()/trace output.
            detail_hook = getattr(source, "consume_execution_detail", None)
            if detail_hook is not None:
                detail = detail_hook()
                if detail:
                    attempt_span.annotate(**detail)
            attempt_span.annotate(outcome="ok")
            attempt_span.finish()
            return fragment

    def extract_all_registered(self) -> ExtractionOutcome:
        """Eager full materialization: extract every mapped attribute.

        This is the non-query-driven variant measured by the E1 ablation
        (lazy query-driven extraction vs eager materialization)."""
        paths = [AttributePath.parse(attribute_id)
                 for attribute_id in self.attributes.attribute_ids()]
        return self.extract(paths)
