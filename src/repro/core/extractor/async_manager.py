"""The asyncio extraction engine: non-blocking per-source fan-out.

The thread-pool engine in :mod:`repro.core.extractor.manager` burns one
OS thread per in-flight source and caps the pool at 16 by default; a
many-slow-sources workload (the paper's WebL web wrappers especially)
spends most of that pool *waiting*.  :class:`AsyncExtractorManager`
replaces the pool with one event loop: every source becomes a task,
``asyncio.gather``-style fan-out holds hundreds of slow sources in
flight at once, and no cap exists at all.

The resilience semantics are the thread engine's, verbatim:

* retries with backoff + jitter, awaited on the injectable clock
  (``Clock.sleep_async`` — a :class:`~repro.clock.FakeClock` advances
  instantly, so degraded-world tests stay sleep-free);
* per-source circuit breakers and the shared retry budget (their locks
  are brief and never awaited across);
* deadlines: tasks police ``ctx.deadline`` between entries exactly like
  pool workers do, and the outer ``asyncio.wait`` timeout only matters
  when a connector blocks in foreign code — then the source is reported
  as timed out and its task cancelled rather than joined;
* replica failover, identical engagement rules;
* the fragment cache's single-flight dedup, via
  :meth:`~repro.core.extractor.cache.FragmentCache.acquire_async` so a
  waiting task never blocks the loop its leader runs on.

Sources implementing :class:`~repro.sources.base.AsyncDataSource` are
awaited natively; every legacy sync connector is auto-adapted (its
extraction runs in a worker thread via ``asyncio.to_thread``), so all
five built-in connectors work unchanged.

The synchronous :meth:`AsyncExtractorManager.extract` remains available:
it submits the coroutine to a private, lazily started event loop on a
daemon thread, which is how ``S2SMiddleware.query()`` keeps its blocking
signature under ``concurrency="asyncio"`` — sync and async callers share
one engine, one breaker state, one cache.

This module deliberately mirrors the control flow of ``manager.py``
step for step (same span names, same annotations, same problem
wording): the async/sync equivalence suite asserts the two engines
produce identical answers, and the thread engine's span trees must stay
byte-identical — so behaviour changes belong in *both* files.
"""

from __future__ import annotations

import asyncio
import threading
import time

from ...errors import (CircuitOpenError, DeadlineExceededError, S2SError,
                       TransientSourceError)
from ...ids import AttributePath
from ...obs import NULL_SPAN
from ..mapping.attributes import MappingEntry
from ..resilience import Deadline, RetryBudget, SourceHealthRegistry
from .manager import (AnySpan, ExtractionOutcome, ExtractionProblem,
                      ExtractorManager, _RunContext, _SourceResult)
from .records import RawFragment, SourceRecordSet
from .schema import ExtractionSchema


class AsyncExtractorManager(ExtractorManager):
    """Extractor Manager whose fan-out engine is an asyncio event loop.

    Construction is identical to :class:`ExtractorManager`; the
    middleware selects this class when
    ``ResilienceConfig.concurrency.mode == "asyncio"``.  ``extract()``
    stays synchronous (it drives the private loop), ``extract_async()``
    is the native engine for callers that already live on a loop
    (``aquery()``/``aquery_many()``).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._loop_lock = threading.Lock()

    # -- the private event loop -------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        """The private loop, lazily started on a daemon thread."""
        with self._loop_lock:
            if self._loop is None:
                self._loop = asyncio.new_event_loop()
                self._loop_thread = threading.Thread(
                    target=self._loop.run_forever,
                    name="repro-async-extractor", daemon=True)
                self._loop_thread.start()
            return self._loop

    def close(self) -> None:
        """Stop and dispose the private event loop (idempotent).

        Called by the middleware when a mapping reload replaces the
        manager; safe to call on a manager whose loop never started."""
        with self._loop_lock:
            loop, thread = self._loop, self._loop_thread
            self._loop = self._loop_thread = None
        if loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
        if not loop.is_running():
            loop.close()

    def extract(self, required: list[AttributePath],
                *, deadline: Deadline | float | None = None,
                span: AnySpan = NULL_SPAN,
                schema: ExtractionSchema | None = None) -> ExtractionOutcome:
        """Blocking facade over :meth:`extract_async`.

        Runs the coroutine on the private loop, so synchronous callers
        (``S2SMiddleware.query()``, the scheduler's worker threads) get
        the asyncio engine without touching an event loop themselves.
        Concurrent calls interleave as tasks on that one loop — which is
        exactly what single-flight cache dedup expects."""
        future = asyncio.run_coroutine_threadsafe(
            self.extract_async(required, deadline=deadline, span=span,
                               schema=schema),
            self._ensure_loop())
        return future.result()

    # -- the engine --------------------------------------------------------

    async def extract_async(self, required: list[AttributePath],
                            *, deadline: Deadline | float | None = None,
                            span: AnySpan = NULL_SPAN,
                            schema: ExtractionSchema | None = None
                            ) -> ExtractionOutcome:
        """Steps 2-4 with every source a task on the calling loop."""
        started = time.perf_counter()
        if schema is None:
            schema = self.obtain_extraction_schema(required)
        if deadline is None:
            deadline = Deadline(self.config.deadline_seconds,
                                self.config.clock)
        elif not isinstance(deadline, Deadline):
            deadline = Deadline(float(deadline), self.config.clock)
        ctx = _RunContext(schema, deadline,
                          RetryBudget(self.config.retry.budget),
                          SourceHealthRegistry(),
                          cache_generation=(self.cache.generation
                                            if self.cache is not None else 0))
        outcome = ExtractionOutcome(missing_attributes=list(schema.missing),
                                    deadline_seconds=deadline.seconds)

        source_ids = schema.source_ids()
        span.annotate(sources=len(source_ids),
                      entries=schema.entry_count(),
                      parallel=self.config.parallel)
        results = await self._fanout_async(source_ids, ctx, outcome, span)

        for result in sorted(results, key=lambda r: r.source_id):
            outcome.problems.extend(result.problems)
            if result.record_set is not None and result.record_set.fragments:
                outcome.record_sets[result.source_id] = result.record_set
            outcome.per_source_seconds[result.source_id] = result.elapsed
        self._stamp_breaker_states(ctx.health)
        outcome.health = ctx.health.snapshot()
        self.health.merge_from(ctx.health)
        outcome.elapsed_seconds = time.perf_counter() - started
        if self.metrics is not None:
            self._record_outcome_metrics(outcome)
        return outcome

    async def _fanout_async(self, source_ids: list[str], ctx: _RunContext,
                            outcome: ExtractionOutcome,
                            span: AnySpan) -> list[_SourceResult]:
        """One task per source, bounded by the deadline — no worker cap.

        Tasks police the deadline themselves between entries, so the
        outer timeout (real loop time) only matters when a connector
        blocks in foreign code; those sources are reported as timed out
        and their tasks cancelled."""
        if not source_ids:
            return []
        tasks = {
            asyncio.ensure_future(self._extract_source_async(
                sid, ctx.schema.by_source[sid], ctx, span)): sid
            for sid in source_ids}
        timeout = (None if ctx.deadline.unbounded
                   else max(ctx.deadline.remaining(), 0.05))
        done, not_done = await asyncio.wait(
            set(tasks), timeout=timeout,
            return_when=asyncio.FIRST_EXCEPTION)
        results = []
        try:
            for task in done:
                results.append(task.result())  # re-raises in strict mode
        except BaseException:
            for task in not_done:
                task.cancel()
            raise
        for task in not_done:
            task.cancel()
            source_id = tasks[task]
            ctx.health.for_source(source_id).deadline_hits += 1
            outcome.problems.append(ExtractionProblem(
                source_id, None,
                f"source did not complete within the "
                f"{ctx.deadline.seconds:.3f}s extraction deadline"))
            outcome.per_source_seconds.setdefault(
                source_id, ctx.deadline.seconds or 0.0)
        return results

    async def _extract_source_async(self, source_id: str,
                                    entries: list[MappingEntry],
                                    ctx: _RunContext,
                                    parent_span: AnySpan = NULL_SPAN
                                    ) -> _SourceResult:
        """Steps 3 and 4 for one source (mirror of ``_extract_source``)."""
        started = time.perf_counter()
        problems: list[ExtractionProblem] = []
        span = parent_span.child("source", source=source_id,
                                 entries=len(entries))
        try:
            try:
                source = self.sources.get(source_id)  # step 3
                extractor = self.extractors.for_source(source)
            except S2SError as exc:
                span.fail(str(exc))
                if self.strict:
                    raise
                problems.append(ExtractionProblem(source_id, None, str(exc)))
                return _SourceResult(source_id, None, problems,
                                     time.perf_counter() - started)
            record_set = SourceRecordSet(source_id)
            for index, entry in enumerate(entries):
                if ctx.deadline.expired:
                    ctx.health.for_source(source_id).deadline_hits += 1
                    span.annotate(deadline_expired=True)
                    problems.append(ExtractionProblem(
                        source_id, entry.attribute_id,
                        f"extraction deadline of {ctx.deadline.seconds:.3f}s "
                        f"exceeded; skipped {len(entries) - index} remaining "
                        f"entries"))
                    break
                entry_span = span.child("entry",
                                        attribute=entry.attribute_id)
                leading = False
                try:
                    if self.cache is not None:
                        # Single-flight: a concurrent identical scan either
                        # serves us its result or elects us leader.
                        cached, leading = await self.cache.acquire_async(
                            entry)
                        if cached is not None:
                            entry_span.annotate(cache="hit")
                            record_set.add(cached)
                            continue
                        entry_span.annotate(cache="miss")
                    try:
                        fragment = await self._extract_entry_async(
                            source_id, source, extractor, entry, ctx,
                            entry_span)  # step 4
                    except DeadlineExceededError as exc:
                        entry_span.fail(str(exc))
                        if self.strict:
                            raise
                        ctx.health.for_source(source_id).deadline_hits += 1
                        problems.append(ExtractionProblem(
                            source_id, entry.attribute_id, str(exc)))
                        break
                    except S2SError as exc:
                        entry_span.fail(str(exc))
                        if self.strict:
                            raise
                        problems.append(ExtractionProblem(
                            source_id, entry.attribute_id, str(exc)))
                        continue
                    if self.cache is not None:
                        self.cache.put(entry, fragment,
                                       generation=ctx.cache_generation)
                    entry_span.annotate(values=len(fragment.values))
                    record_set.add(fragment)
                finally:
                    if leading:
                        # Wakes waiters whether we stored a fragment or
                        # failed — a failed flight must not poison them.
                        self.cache.release(entry)
                    entry_span.finish()
            return _SourceResult(source_id, record_set, problems,
                                 time.perf_counter() - started)
        finally:
            if problems:
                span.annotate(problems=len(problems))
            span.finish()

    async def _extract_entry_async(self, source_id: str, source, extractor,
                                   entry: MappingEntry, ctx: _RunContext,
                                   span: AnySpan = NULL_SPAN) -> RawFragment:
        """One mapping entry: primary chain, then replicas (mirror of
        ``_extract_entry``, same failover engagement rules)."""
        try:
            return await self._call_with_policy_async(
                source_id, source, extractor, entry, ctx, span)
        except DeadlineExceededError:
            raise
        except (TransientSourceError, CircuitOpenError) as primary_error:
            replicas = (ctx.schema.replicas_for(entry.attribute_id, source_id)
                        if self.config.failover else [])
            for replica in replicas:
                if ctx.deadline.expired:
                    break
                failover_span = span.child("failover",
                                           replica=replica.source_id)
                try:
                    replica_source = self.sources.get(replica.source_id)
                    replica_extractor = self.extractors.for_source(
                        replica_source)
                    fragment = await self._call_with_policy_async(
                        replica.source_id, replica_source, replica_extractor,
                        replica, ctx, failover_span)
                except S2SError as exc:
                    failover_span.fail(str(exc))
                    failover_span.finish()
                    continue
                failover_span.finish()
                ctx.health.for_source(source_id).failovers += 1
                ctx.health.for_source(replica.source_id).served_for += 1
                # Relabel so positional correlation joins the primary's
                # record set (replicas serve the same records in order).
                return RawFragment(fragment.attribute, source_id,
                                   fragment.values)
            raise primary_error

    async def _call_with_policy_async(self, source_id: str, source,
                                      extractor, entry: MappingEntry,
                                      ctx: _RunContext,
                                      span: AnySpan = NULL_SPAN
                                      ) -> RawFragment:
        """One rule execution under retry policy, breaker and deadline
        (mirror of ``_call_with_policy``; backoff is awaited, never
        slept, and the rule itself goes through
        :meth:`Extractor.aextract`)."""
        policy = self.config.retry
        breaker = (self.breakers.get(source_id)
                   if self.breakers is not None else None)
        health = ctx.health.for_source(source_id)
        attempt = 0
        while True:
            ctx.deadline.check(f"extraction of {entry.attribute_id} "
                               f"from {source_id!r}")
            if breaker is not None and not breaker.allow():
                error = CircuitOpenError(source_id,
                                         retry_after=breaker.retry_after())
                health.last_error = str(error)
                span.child("breaker-open", source=source_id).finish()
                if self.metrics is not None:
                    self.metrics.counter(
                        "breaker_rejections_total",
                        "calls refused by an open circuit breaker").inc(
                            source=source_id)
                raise error
            health.attempts += 1
            attempt_span = span.child("attempt", number=attempt + 1,
                                      source=source_id)
            try:
                fragment = await extractor.aextract(source, entry)
            except TransientSourceError as exc:
                attempt_span.fail(str(exc))
                attempt_span.annotate(outcome="transient-error")
                attempt_span.finish()
                health.failures += 1
                health.last_error = str(exc)
                if breaker is not None:
                    breaker.record_failure()
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
                if not ctx.budget.try_consume():
                    raise TransientSourceError(
                        f"{exc}; per-extraction retry budget exhausted"
                    ) from exc
                with self._lock:
                    self.retry_count += 1
                    delay = policy.delay_for(attempt, self._rng)
                health.retries += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "retries_total",
                        "re-attempts after transient failures").inc(
                            source=source_id)
                if delay > 0:
                    with span.child("backoff", seconds=round(delay, 6)):
                        await self.config.clock.sleep_async(
                            ctx.deadline.clamp(delay))
                continue
            except S2SError as exc:
                attempt_span.fail(str(exc))
                attempt_span.annotate(outcome="permanent-error")
                attempt_span.finish()
                health.failures += 1
                health.last_error = str(exc)
                raise
            if breaker is not None:
                breaker.record_success()
            health.successes += 1
            # Sources may expose a one-shot digest of the execution they
            # just served (e.g. the relational source's SQL plan digest);
            # attach it to the attempt span for explain()/trace output.
            detail_hook = getattr(source, "consume_execution_detail", None)
            if detail_hook is not None:
                detail = detail_hook()
                if detail:
                    attempt_span.annotate(**detail)
            attempt_span.annotate(outcome="ok")
            attempt_span.finish()
            return fragment
