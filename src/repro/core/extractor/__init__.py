"""The Extractor Manager (paper section 2.4).

"This component handles data sources for retrieving the raw data to
accomplish query requirements."  Its three tasks map onto the modules
here:

* *Obtain Extraction Schema* → :mod:`repro.core.extractor.schema`;
* *Obtain Data Source Definition* → resolved through the data source
  repository inside :mod:`repro.core.extractor.manager`;
* *Data Extraction* → the mediator
  (:class:`~repro.core.extractor.manager.ExtractorManager`) delegating to
  per-source-type wrappers (:mod:`repro.core.extractor.extractors`), with
  the raw output modelled in :mod:`repro.core.extractor.records`.
"""

from .async_manager import AsyncExtractorManager
from .extractors import (DatabaseExtractor, Extractor, ExtractorRegistry,
                         TextExtractor, WebExtractor, XmlExtractor)
from .manager import ExtractionOutcome, ExtractorManager
from .records import RawFragment, SourceRecordSet
from .schema import ExtractionSchema

__all__ = [
    "Extractor",
    "ExtractorRegistry",
    "WebExtractor",
    "DatabaseExtractor",
    "XmlExtractor",
    "TextExtractor",
    "ExtractionSchema",
    "ExtractorManager",
    "AsyncExtractorManager",
    "ExtractionOutcome",
    "RawFragment",
    "SourceRecordSet",
]
