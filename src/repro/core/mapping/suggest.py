"""Semi-automatic mapping suggestion.

The paper is explicit that mapping is manual and "time consuming"
(§2.3); the obvious follow-on (future work in spirit) is *assisted*
authoring: introspect each source's native field names, score them
against the ontology's unmapped attributes by lexical similarity, and
propose ready-to-register mapping entries.  A human still confirms every
suggestion — preserving the paper's accuracy argument — but reviews a
ranked list instead of reading source schemas cold.

Experiment E12 measures top-1 suggestion accuracy against the scenario
generator's ground truth under each heterogeneity level.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass

from ...errors import S2SError
from ...ids import AttributePath
from ...sources.base import DataSource
from .attributes import MappingEntry
from .rules import ExtractionRule

#: Cross-language synonym hints for B2B product vocabulary.  Keys and
#: values are normalized tokens; a match via this table scores as if the
#: tokens were equal.
SYNONYMS: dict[str, set[str]] = {
    "brand": {"marke", "manufacturer", "maker", "make"},
    "model": {"modell", "reference", "ref"},
    "case": {"gehaeuse", "housing", "casing"},
    "price": {"preis", "list_price", "cost", "amount"},
    "provider": {"lieferant", "vendor", "supplier"},
    "movement": {"werk", "caliber", "calibre"},
    "water": {"wasserdichte", "wr"},
    "resistance": {"rating"},
    "country": {"land", "origin"},
    "name": {"title"},
}


def _tokens(text: str) -> list[str]:
    return [token for token in re.split(r"[^a-z0-9]+", text.lower())
            if token]


def _synonym_hit(a: str, b: str) -> bool:
    if b in SYNONYMS.get(a, ()) or a in SYNONYMS.get(b, ()):
        return True
    return False


def similarity(attribute: str, field_name: str) -> float:
    """Score in [0, 1]: token overlap (with synonyms) + char similarity."""
    attribute_tokens = _tokens(attribute)
    field_tokens = _tokens(field_name)
    if not attribute_tokens or not field_tokens:
        return 0.0
    hits = 0
    for a_token in attribute_tokens:
        for f_token in field_tokens:
            if a_token == f_token or _synonym_hit(a_token, f_token):
                hits += 1
                break
    token_score = hits / max(len(attribute_tokens), len(field_tokens))
    char_score = difflib.SequenceMatcher(
        None, attribute.lower(), field_name.lower()).ratio()
    return 0.7 * token_score + 0.3 * char_score


@dataclass(frozen=True)
class FieldDescriptor:
    """One introspected native field of a source."""

    source_id: str
    source_type: str
    name: str
    rule_code: str  # ready-to-use extraction rule for this field
    rule_language: str


@dataclass(frozen=True)
class MappingSuggestion:
    """A ranked candidate mapping awaiting human confirmation."""

    attribute: AttributePath
    descriptor: FieldDescriptor
    score: float

    def to_entry(self, *, transform: str | None = None) -> MappingEntry:
        """Materialize the suggestion as a registrable mapping entry."""
        rule = ExtractionRule(self.descriptor.rule_language,
                              self.descriptor.rule_code,
                              transform=transform)
        return MappingEntry(self.attribute, rule,
                            self.descriptor.source_id)

    def __str__(self) -> str:
        return (f"{self.attribute} <- {self.descriptor.source_id}."
                f"{self.descriptor.name} (score {self.score:.2f})")


# ---------------------------------------------------------------------------
# Introspection
# ---------------------------------------------------------------------------

def discover_fields(source: DataSource) -> list[FieldDescriptor]:
    """Enumerate a source's native fields with ready extraction rules."""
    if source.source_type == "database":
        return _discover_database(source)
    if source.source_type == "xml":
        return _discover_xml(source)
    if source.source_type == "webpage":
        return _discover_web(source)
    if source.source_type == "textfile":
        return _discover_text(source)
    raise S2SError(
        f"no field discovery for source type {source.source_type!r}")


def _discover_database(source) -> list[FieldDescriptor]:
    descriptors = []
    for table_name in source.database.table_names():
        table = source.database.require_table(table_name)
        for column in table.column_names():
            descriptors.append(FieldDescriptor(
                source.source_id, "database", column,
                f"SELECT {column} FROM {table_name}", "sql"))
    return descriptors


def _discover_xml(source) -> list[FieldDescriptor]:
    descriptors = []
    seen: set[str] = set()
    names = ([source.default_document] if source.default_document
             else source.store.names())
    for doc_name in names:
        document = source.store.get(doc_name)
        for element in document.iter():
            children = element.element_children()
            if children or not element.text_content().strip():
                continue  # only leaf elements carrying text
            if element.name in seen:
                continue
            seen.add(element.name)
            prefix = "" if source.default_document else f"doc:{doc_name} "
            descriptors.append(FieldDescriptor(
                source.source_id, "xml", element.name,
                f"{prefix}//{element.name}", "xpath"))
    return descriptors


def _discover_web(source) -> list[FieldDescriptor]:
    from ...sources.web.html import parse_html
    markup = source.web.fetch(source.url)
    document = parse_html(markup)
    descriptors = []
    seen: set[str] = set()
    for node in document.root.iter():
        marker = node.get("class") or node.get("id")
        if not marker or marker in seen:
            continue
        if node.tag not in ("td", "span", "div", "p", "li"):
            continue
        seen.add(marker)
        rule = (
            'var P = GetURL(SourceURL());\n'
            f'var m = Str_Search(Text(P), `<{node.tag}[^>]*'
            f'(?:class|id)="{re.escape(marker)}"[^>]*>([^<]*)</{node.tag}>`);\n'
            'var out = [];\n'
            'each g in m { out = Append(out, g[1]); }\n'
            'return out;\n')
        descriptors.append(FieldDescriptor(
            source.source_id, "webpage", marker, rule, "webl"))
    return descriptors


def _discover_text(source) -> list[FieldDescriptor]:
    descriptors = []
    seen: set[str] = set()
    paths = ([source.default_file] if source.default_file
             else source.store.paths())
    for path in paths:
        content = source.store.read(path)
        prefix = "" if source.default_file else f"file:{path} "
        for match in re.finditer(r"^([A-Za-z_][A-Za-z0-9_\-]*)=",
                                 content, re.MULTILINE):
            key = match.group(1)
            if key in seen:
                continue
            seen.add(key)
            descriptors.append(FieldDescriptor(
                source.source_id, "textfile", key,
                rf"{prefix}^{key}=(.*)$", "regex"))
    return descriptors


# ---------------------------------------------------------------------------
# Suggestion
# ---------------------------------------------------------------------------

class MappingSuggester:
    """Ranks source fields against unmapped ontology attributes."""

    def __init__(self, registrar, *, threshold: float = 0.35) -> None:
        self.registrar = registrar
        self.threshold = threshold

    def suggest_for_source(self, source: DataSource,
                           *, attributes: list[AttributePath] | None = None,
                           top_k: int = 1) -> list[MappingSuggestion]:
        """Top-k candidate mappings per attribute for one source.

        ``attributes`` defaults to the schema's currently unmapped paths;
        pass an explicit list to (re-)suggest for mapped ones too."""
        descriptors = discover_fields(source)
        if attributes is None:
            attributes = self.registrar.unregistered_paths()
        suggestions: list[MappingSuggestion] = []
        for path in attributes:
            scored = sorted(
                (MappingSuggestion(path, descriptor,
                                   similarity(path.attribute,
                                              descriptor.name))
                 for descriptor in descriptors),
                key=lambda s: -s.score)
            suggestions.extend(s for s in scored[:top_k]
                               if s.score >= self.threshold)
        return suggestions

    def accept(self, suggestion: MappingSuggestion,
               *, transform: str | None = None,
               replace: bool = False) -> MappingEntry:
        """Human confirmation: validate and register the suggestion."""
        return self.registrar.register(
            suggestion.attribute,
            ExtractionRule(suggestion.descriptor.rule_language,
                           suggestion.descriptor.rule_code,
                           transform=transform),
            suggestion.descriptor.source_id, replace=replace)
