"""Extraction rules and semantic-normalization transforms.

An :class:`ExtractionRule` is "a segment of code that allows taking out
the necessary data from the data source and filling a given attribute …
written according to the data source type" (paper section 2.3.1 step 2):
SQL for databases, XPath for XML, WebL for web pages, regular expressions
for plain-text files.

Rules are *validated at registration time* — the paper argues manual
mapping "offers the highest degree of data extraction accuracy", and the
cheapest way to protect that accuracy is to reject rules that do not even
parse before they enter the repository.

``transform`` is a documented extension point (DESIGN.md section 3): the
name of a registered semantic-normalization function applied to each
extracted value (unit conversion, vocabulary alignment).  In the paper
this normalization lives inside hand-written rules; factoring it into
named transforms keeps rules in their native languages while making the
semantic-conflict experiments (E6) explicit and measurable.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Callable

from ...errors import MappingError, S2SError

#: rule language → data source type it runs on.
RULE_LANGUAGES = {
    "sql": "database",
    "xpath": "xml",
    "webl": "webpage",
    "regex": "textfile",
}


@dataclass(frozen=True)
class ExtractionRule:
    """One typed extraction rule.

    ``name`` is the module/file label the paper shows in mapping entries
    (``watch.webl``); ``code`` is the rule body; ``language`` selects both
    the validator and the extractor; ``transform`` optionally names a
    registered normalization function.
    """

    language: str
    code: str
    name: str = ""
    transform: str | None = None

    def __post_init__(self) -> None:
        if self.language not in RULE_LANGUAGES:
            raise MappingError(
                f"unknown rule language {self.language!r}; expected one of "
                f"{sorted(RULE_LANGUAGES)}")
        if not self.code or not self.code.strip():
            raise MappingError("extraction rule code must be non-empty")

    @classmethod
    def sql(cls, code: str, *, name: str = "",
            transform: str | None = None) -> "ExtractionRule":
        """A SQL rule for relational sources."""
        return cls("sql", code, name=name, transform=transform)

    @classmethod
    def xpath(cls, code: str, *, name: str = "",
              transform: str | None = None) -> "ExtractionRule":
        """An XPath/XQuery rule for XML sources."""
        return cls("xpath", code, name=name, transform=transform)

    @classmethod
    def webl(cls, code: str, *, name: str = "",
             transform: str | None = None) -> "ExtractionRule":
        """A WebL rule for web-page sources."""
        return cls("webl", code, name=name, transform=transform)

    @classmethod
    def regex(cls, code: str, *, name: str = "",
              transform: str | None = None) -> "ExtractionRule":
        """A regular-expression rule for plain-text sources."""
        return cls("regex", code, name=name, transform=transform)

    @property
    def source_type(self) -> str:
        """The data-source type this rule's language targets."""
        return RULE_LANGUAGES[self.language]

    def display_name(self) -> str:
        """The label used in paper-style mapping lines."""
        if self.name:
            return self.name
        head = " ".join(self.code.split())
        return head if len(head) <= 60 else head[:57] + "..."

    def validate(self) -> None:
        """Parse-check the rule in its own language; raises on error."""
        if self.language == "sql":
            from ...sources.relational.sql.parser import parse_sql
            statement = parse_sql(self.code)
            from ...sources.relational.sql.ast import Select
            if not isinstance(statement, Select):
                raise MappingError(
                    f"SQL extraction rule must be a SELECT, got "
                    f"{type(statement).__name__}")
        elif self.language == "xpath":
            from ...xmlkit.xpath.parser import parse_xpath
            from ...xmlkit.xquery import XQuery, is_flwor
            expression = self.code.strip()
            if expression.startswith("doc:"):
                expression = expression.partition(" ")[2].strip()
                if not expression:
                    raise MappingError(
                        "XPath rule missing after document prefix")
            if is_flwor(expression):
                XQuery.compile(expression)
            else:
                parse_xpath(expression)
        elif self.language == "webl":
            from ...webl.parser import parse_webl
            parse_webl(self.code)
        elif self.language == "regex":
            expression = self.code.strip()
            if expression.startswith("file:"):
                expression = expression.partition(" ")[2].strip()
                if not expression:
                    raise MappingError("regex missing after file prefix")
            try:
                re.compile(expression)
            except re.error as exc:
                raise MappingError(
                    f"invalid regex extraction rule: {exc}") from exc


class TransformRegistry:
    """Named semantic-normalization functions.

    Besides explicit registration, names of the form ``scale:<factor>``
    (multiply numeric text) and ``map:{"json": "object"}`` (vocabulary
    lookup, identity on misses) are interpreted on the fly.
    """

    def __init__(self) -> None:
        self._transforms: dict[str, Callable[[str], str]] = {}
        self.register("identity", lambda value: value)
        self.register("strip", str.strip)
        self.register("upper", str.upper)
        self.register("lower", str.lower)
        self.register("title", str.title)
        self.register("collapse_spaces", lambda value: " ".join(value.split()))
        self.register("cents_to_units", lambda value: _scale(value, 0.01))
        self.register("strip_currency",
                      lambda value: re.sub(r"[^\d.\-]", "", value))

    def register(self, name: str, function: Callable[[str], str]) -> None:
        """Register a named transform function."""
        if not name:
            raise MappingError("transform name must be non-empty")
        self._transforms[name] = function

    def resolve(self, name: str) -> Callable[[str], str]:
        """Look up a transform by name (including scale:/map: forms)."""
        function = self._transforms.get(name)
        if function is not None:
            return function
        if name.startswith("scale:"):
            try:
                factor = float(name[len("scale:"):])
            except ValueError as exc:
                raise MappingError(f"bad scale transform {name!r}") from exc
            return lambda value: _scale(value, factor)
        if name.startswith("map:"):
            try:
                table = json.loads(name[len("map:"):])
            except json.JSONDecodeError as exc:
                raise MappingError(f"bad map transform {name!r}") from exc
            if not isinstance(table, dict):
                raise MappingError("map transform must be a JSON object")
            return lambda value: str(table.get(value, value))
        raise MappingError(f"unknown transform {name!r}")

    def apply(self, name: str | None, values: list[str]) -> list[str]:
        """Apply the named transform to each value (None = identity)."""
        if name is None:
            return values
        function = self.resolve(name)
        try:
            return [function(value) for value in values]
        except S2SError:
            raise
        except Exception as exc:
            raise MappingError(
                f"transform {name!r} failed on extracted value: {exc}") from exc

    def names(self) -> list[str]:
        """Explicitly registered transform names, sorted."""
        return sorted(self._transforms)


def _scale(value: str, factor: float) -> str:
    try:
        scaled = float(value.strip()) * factor
    except ValueError as exc:
        raise MappingError(
            f"scale transform expects numeric text, got {value!r}") from exc
    if scaled == int(scaled):
        return str(int(scaled))
    return f"{scaled:.10g}"
