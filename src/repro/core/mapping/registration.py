"""The 3-step attribute registration workflow (paper Figure 3).

Step 1 — *attribute naming*: the attribute is identified by its unique
dotted path through the ontology (validated against the ontology schema).
Step 2 — *extraction rules*: the rule is parsed in its own language and
checked against the target source's type.
Step 3 — *attribute mapping*: the (attribute, rule, source) triple is
stored in the attribute repository; the source must already be registered
in the data source repository (its connection info is what step 3's
``wpage_81`` identifier points at).
"""

from __future__ import annotations

from ...errors import MappingError
from ...ids import AttributePath
from ...ontology.schema import OntologySchema
from .attributes import MappingEntry
from .datasources import DataSourceRepository
from .repository import AttributeRepository
from .rules import ExtractionRule


class AttributeRegistrar:
    """Performs validated attribute registration."""

    def __init__(self, schema: OntologySchema,
                 attributes: AttributeRepository,
                 sources: DataSourceRepository) -> None:
        self.schema = schema
        self.attributes = attributes
        self.sources = sources

    # -- step 1: attribute naming -----------------------------------------

    def name_attribute(self, attribute: AttributePath | str | tuple[str, str]
                       ) -> AttributePath:
        """Resolve the caller's attribute reference to its canonical path.

        Accepts a full dotted path (``"thing.product.brand"``), an
        :class:`AttributePath`, or a ``(class_name, attribute)`` pair from
        which the canonical path is derived via the ontology."""
        if isinstance(attribute, tuple):
            class_name, attr_name = attribute
            return self.schema.path_for(class_name, attr_name)
        path = (attribute if isinstance(attribute, AttributePath)
                else AttributePath.parse(attribute))
        if not self.schema.has_path(path):
            raise MappingError(
                f"attribute path {path} does not exist in the ontology "
                f"schema (step 1 of registration failed)")
        return path

    # -- step 2: extraction rule -------------------------------------------

    def check_rule(self, rule: ExtractionRule, source_id: str) -> None:
        """Validate rule syntax and rule-language/source-type agreement."""
        rule.validate()
        source = self.sources.get(source_id)
        if rule.source_type != source.source_type:
            raise MappingError(
                f"rule language {rule.language!r} targets "
                f"{rule.source_type!r} sources but {source_id!r} is a "
                f"{source.source_type!r} source")

    # -- step 3: attribute mapping -------------------------------------------

    def register(self, attribute: AttributePath | str | tuple[str, str],
                 rule: ExtractionRule, source_id: str,
                 *, replace: bool = False,
                 replica_of: str | None = None) -> MappingEntry:
        """Run all three steps and store the mapping entry.

        ``replica_of`` registers the entry as a failover replica of the
        named primary source's entry for the same attribute — the primary
        mapping must already exist."""
        path = self.name_attribute(attribute)
        self.check_rule(rule, source_id)
        if replica_of is not None:
            self._check_replica(path, source_id, replica_of)
        entry = MappingEntry(path, rule, source_id, replica_of=replica_of)
        self.attributes.add(entry, replace=replace)
        return entry

    def _check_replica(self, path: AttributePath, source_id: str,
                       replica_of: str) -> None:
        """A replica needs a registered primary source *and* mapping."""
        if replica_of == source_id:
            raise MappingError(
                f"source {source_id!r} cannot be a replica of itself")
        self.sources.get(replica_of)  # raises for unknown primaries
        primaries = [entry for entry
                     in self.attributes.try_entries_for(path)
                     if entry.source_id == replica_of
                     and not entry.is_replica]
        if not primaries:
            raise MappingError(
                f"cannot register replica for {path}: primary source "
                f"{replica_of!r} has no (non-replica) mapping entry yet")

    def unregistered_paths(self) -> list[AttributePath]:
        """Schema attributes with no mapping yet — the authoring to-do list."""
        return [path for path in self.schema.attribute_paths()
                if not self.attributes.is_registered(path)]

    def coverage(self) -> float:
        """Fraction of schema attributes with at least one mapping."""
        paths = self.schema.attribute_paths()
        if not paths:
            return 1.0
        mapped = sum(1 for path in paths
                     if self.attributes.is_registered(path))
        return mapped / len(paths)
