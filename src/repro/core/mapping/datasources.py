"""The Data Source Repository (paper section 2.3.2).

"Registering data sources separately from the extraction rules is useful
to create a centralized connection information store, allowing reuse and
preventing information redundancy."  The repository maps source IDs to
live :class:`~repro.sources.base.DataSource` connectors and exposes their
:class:`~repro.sources.base.ConnectionInfo` for persistence.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import UnknownDataSourceError, MappingError
from ...sources.base import ConnectionInfo, DataSource


class DataSourceRepository:
    """Registry of data sources keyed by source ID."""

    def __init__(self) -> None:
        self._sources: dict[str, DataSource] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every (un)registration.

        The sharded query engine's spawn pools hold repository replicas
        pickled at fleet start; they watch this version to know when
        their replica went stale and the fleet must be rebuilt."""
        return self._version

    def register(self, source: DataSource, *, replace: bool = False) -> str:
        """Register a connector under its ``source_id``; returns the ID."""
        if source.source_id in self._sources and not replace:
            raise MappingError(
                f"data source {source.source_id!r} already registered")
        self._sources[source.source_id] = source
        self._version += 1
        return source.source_id

    def unregister(self, source_id: str) -> None:
        """Remove a source from the registry."""
        if self._sources.pop(source_id, None) is None:
            raise UnknownDataSourceError(source_id)
        self._version += 1

    def get(self, source_id: str) -> DataSource:
        """Look up a source by ID, raising when unknown."""
        source = self._sources.get(source_id)
        if source is None:
            raise UnknownDataSourceError(source_id)
        return source

    def connection_info(self, source_id: str) -> ConnectionInfo:
        """The 'Obtain Data Source Definition' lookup of section 2.4.2."""
        return self.get(source_id).connection_info()

    def has(self, source_id: str) -> bool:
        """Whether ``source_id`` is registered."""
        return source_id in self._sources

    def ids(self) -> list[str]:
        """All registered source IDs, sorted."""
        return sorted(self._sources)

    def by_type(self, source_type: str) -> list[DataSource]:
        """Registered sources of one source type."""
        return [s for s in self._sources.values()
                if s.source_type == source_type]

    def __iter__(self) -> Iterator[DataSource]:
        return iter(self._sources.values())

    def __len__(self) -> int:
        return len(self._sources)
