"""Persistence for the mapping repositories.

Mappings are authored once and reused across sessions (the paper: "the
mapping should not need substantial maintenance after being created"), so
both repositories serialize to a single JSON document.  Data sources are
persisted as connection info only — live connectors are re-attached on
load through a caller-supplied factory, because the substrate objects
(databases, stores, the simulated web) live outside the mapping layer.
"""

from __future__ import annotations

import json
from typing import Callable

from ...errors import MappingError
from ...ids import AttributePath
from ...sources.base import ConnectionInfo, DataSource
from .attributes import MappingEntry
from .datasources import DataSourceRepository
from .repository import AttributeRepository
from .rules import ExtractionRule

FORMAT_VERSION = 1


def dump_mapping(attributes: AttributeRepository,
                 sources: DataSourceRepository) -> str:
    """Serialize both repositories to a JSON string."""
    document = {
        "version": FORMAT_VERSION,
        "sources": {
            source.source_id: {
                "type": source.connection_info().source_type,
                "parameters": source.connection_info().parameters,
            }
            for source in sources
        },
        "attributes": [
            {
                "attribute": entry.attribute_id,
                "source": entry.source_id,
                "replica_of": entry.replica_of,
                "rule": {
                    "language": entry.rule.language,
                    "code": entry.rule.code,
                    "name": entry.rule.name,
                    "transform": entry.rule.transform,
                },
            }
            for entry in attributes.all_entries()
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


SourceFactory = Callable[[str, ConnectionInfo], DataSource]


def load_mapping(text: str, source_factory: SourceFactory
                 ) -> tuple[AttributeRepository, DataSourceRepository]:
    """Rebuild both repositories from a JSON string.

    ``source_factory(source_id, connection_info)`` must return a live
    connector for each persisted source — typically a closure over the
    substrate objects of the running application.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise MappingError(f"invalid mapping document: {exc}") from exc
    if document.get("version") != FORMAT_VERSION:
        raise MappingError(
            f"unsupported mapping document version: {document.get('version')!r}")

    sources = DataSourceRepository()
    for source_id, description in sorted(document.get("sources", {}).items()):
        info = ConnectionInfo(description["type"],
                              dict(description.get("parameters", {})))
        source = source_factory(source_id, info)
        if source.source_id != source_id:
            raise MappingError(
                f"source factory returned id {source.source_id!r} for "
                f"{source_id!r}")
        sources.register(source)

    attributes = AttributeRepository()
    for record in document.get("attributes", []):
        rule_record = record["rule"]
        rule = ExtractionRule(
            rule_record["language"], rule_record["code"],
            name=rule_record.get("name", ""),
            transform=rule_record.get("transform"))
        entry = MappingEntry(AttributePath.parse(record["attribute"]), rule,
                             record["source"],
                             replica_of=record.get("replica_of"))
        if not sources.has(entry.source_id):
            raise MappingError(
                f"mapping entry references unknown source "
                f"{entry.source_id!r}")
        if entry.replica_of is not None and not sources.has(entry.replica_of):
            raise MappingError(
                f"replica mapping entry references unknown primary source "
                f"{entry.replica_of!r}")
        attributes.add(entry)
    return attributes, sources
