"""The Attribute Repository.

Holds the mapping entries produced by attribute registration.  One
attribute may be mapped in *several* sources (that is what makes the
middleware an integrator: ``thing.product.brand`` can have a WebL rule on
``wpage_81`` and a SQL rule on ``DB_ID_45`` simultaneously); entries for
one attribute are keyed by source.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import MappingError, UnknownAttributeError
from ...ids import AttributePath
from .attributes import MappingEntry


class AttributeRepository:
    """attribute ID → per-source mapping entries."""

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, MappingEntry]] = {}

    # -- mutation -----------------------------------------------------------

    def add(self, entry: MappingEntry, *, replace: bool = False) -> None:
        """Store an entry; duplicate (attribute, source) needs ``replace``."""
        per_source = self._entries.setdefault(entry.attribute_id, {})
        if entry.source_id in per_source and not replace:
            raise MappingError(
                f"attribute {entry.attribute_id!r} already mapped for source "
                f"{entry.source_id!r}")
        per_source[entry.source_id] = entry

    def remove(self, attribute_id: str, source_id: str | None = None) -> int:
        """Remove one source's entry, or all entries for the attribute."""
        per_source = self._entries.get(attribute_id)
        if not per_source:
            raise UnknownAttributeError(attribute_id)
        if source_id is None:
            removed = len(per_source)
            del self._entries[attribute_id]
            return removed
        if per_source.pop(source_id, None) is None:
            raise MappingError(
                f"attribute {attribute_id!r} has no entry for source "
                f"{source_id!r}")
        if not per_source:
            del self._entries[attribute_id]
        return 1

    # -- lookup ---------------------------------------------------------------

    def entries_for(self, attribute: AttributePath | str) -> list[MappingEntry]:
        """All entries for an attribute; raises when unmapped."""
        per_source = self._entries.get(str(attribute))
        if not per_source:
            raise UnknownAttributeError(str(attribute))
        return list(per_source.values())

    def try_entries_for(self, attribute: AttributePath | str) -> list[MappingEntry]:
        """All entries for an attribute; empty list when unmapped."""
        return list(self._entries.get(str(attribute), {}).values())

    def is_registered(self, attribute: AttributePath | str) -> bool:
        """Whether the attribute has at least one entry."""
        return str(attribute) in self._entries

    def attribute_ids(self) -> list[str]:
        """All mapped attribute IDs, sorted."""
        return sorted(self._entries)

    def entries_for_source(self, source_id: str) -> list[MappingEntry]:
        """Every entry targeting one source."""
        matched = []
        for per_source in self._entries.values():
            entry = per_source.get(source_id)
            if entry is not None:
                matched.append(entry)
        return matched

    def source_ids(self) -> list[str]:
        """All source IDs referenced by any entry, sorted."""
        ids = set()
        for per_source in self._entries.values():
            ids.update(per_source)
        return sorted(ids)

    def all_entries(self) -> Iterator[MappingEntry]:
        """Iterate over every stored entry."""
        for per_source in self._entries.values():
            yield from per_source.values()

    def paper_lines(self) -> list[str]:
        """The whole repository in the paper's textual form, sorted."""
        return sorted(entry.paper_line() for entry in self.all_entries())

    def __len__(self) -> int:
        return sum(len(per_source) for per_source in self._entries.values())
