"""The Mapping Module (paper section 2.3).

"To enable the extraction from distributed and heterogeneous sources it is
necessary to formally denote the notion of mapping between remote data and
the local ontology."  The module holds two repositories:

* :class:`~repro.core.mapping.repository.AttributeRepository` — attribute
  ID → (extraction rule, data source) entries, the paper's
  ``thing.product.brand = watch.webl, wpage_81`` lines;
* :class:`~repro.core.mapping.datasources.DataSourceRepository` — the
  centralized connection-information store of section 2.3.2.

Registration follows the 3-step workflow of Figure 3, implemented by
:class:`~repro.core.mapping.registration.AttributeRegistrar`.
"""

from .attributes import MappingEntry
from .datasources import DataSourceRepository
from .registration import AttributeRegistrar
from .repository import AttributeRepository
from .rules import ExtractionRule, TransformRegistry
from .suggest import MappingSuggester, discover_fields

__all__ = [
    "MappingEntry",
    "ExtractionRule",
    "TransformRegistry",
    "AttributeRepository",
    "DataSourceRepository",
    "AttributeRegistrar",
    "MappingSuggester",
    "discover_fields",
]
