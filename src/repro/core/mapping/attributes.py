"""Mapping entries: attribute ID ↔ (extraction rule, data source).

The paper's section 2.3.1 step 3 shows the stored shape::

    thing.product.brand = watch.webl, wpage_81
    thing.product.watch.case = SELECT aatribute FROM atable WHERE ..., DB_ID_45

:class:`MappingEntry` carries the full rule object (the paper's line only
shows its display name); :func:`format_paper_line` /
:func:`parse_paper_line` reproduce the textual form for round-trip tests
and human inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import MappingError
from ...ids import AttributePath
from .rules import ExtractionRule


@dataclass(frozen=True)
class MappingEntry:
    """One attribute-to-source mapping.

    ``replica_of`` marks this entry as a *failover replica*: it is not
    extracted in the normal fan-out, but stands in for the named primary
    source's entry when that source's breaker is open or its retries are
    exhausted.  A replica must serve the same records in the same order
    as its primary (positional record correlation is preserved across
    the substitution)."""

    attribute: AttributePath
    rule: ExtractionRule
    source_id: str
    replica_of: str | None = None

    def __post_init__(self) -> None:
        if not self.source_id:
            raise MappingError("mapping entry requires a data source id")
        if self.replica_of == self.source_id:
            raise MappingError(
                f"source {self.source_id!r} cannot be a replica of itself")

    @property
    def attribute_id(self) -> str:
        """The dotted attribute identifier as a string."""
        return str(self.attribute)

    @property
    def is_replica(self) -> bool:
        """Whether this entry is a failover replica rather than a primary."""
        return self.replica_of is not None

    def paper_line(self) -> str:
        """The ``attr = rule, source`` rendering of section 2.3.1."""
        line = (f"{self.attribute_id} = {self.rule.display_name()}, "
                f"{self.source_id}")
        if self.replica_of is not None:
            line += f" [replica of {self.replica_of}]"
        return line


def format_paper_line(entry: MappingEntry) -> str:
    """Render an entry in the paper's textual form."""
    return entry.paper_line()


def parse_paper_line(line: str, *, language: str,
                     code: str | None = None) -> MappingEntry:
    """Parse an ``attr = rule, source`` line back into an entry.

    The textual form carries only the rule's display name; the caller
    supplies the rule ``language`` and may supply the full ``code`` (when
    omitted, the display text is taken as the code — correct for SQL and
    regex rules, which the paper embeds verbatim)."""
    if "=" not in line:
        raise MappingError(f"not a mapping line (missing '='): {line!r}")
    attr_text, _, remainder = line.partition("=")
    remainder = remainder.strip()
    if "," not in remainder:
        raise MappingError(
            f"not a mapping line (missing ', source_id'): {line!r}")
    rule_text, _, source_id = remainder.rpartition(",")
    rule_text = rule_text.strip()
    source_id = source_id.strip()
    attribute = AttributePath.parse(attr_text.strip())
    name = rule_text if code is not None else ""
    rule = ExtractionRule(language, code if code is not None else rule_text,
                          name=name)
    return MappingEntry(attribute, rule, source_id)
