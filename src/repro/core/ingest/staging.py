"""Stage checkpoints: the payload half of crash recovery.

The journal records *that* a stage completed; the staging area records
the stage's *output*, so a resumed job continues from its last completed
stage instead of re-running the whole waterfall.  Checkpoints are
pickled per ``(job, stage)`` and fsync'd like journal records.  They are
an optimization, never a correctness dependency: a missing or corrupt
checkpoint quarantines the file (``.corrupt``) and the job simply falls
back to re-running from EXTRACT — at-least-once execution plus the
store's idempotent upsert make the re-run harmless.
"""

from __future__ import annotations

import logging
import os
import pickle
from pathlib import Path
from typing import Any

from ...obs import MetricsRegistry
from .jobs import STAGES

logger = logging.getLogger("repro.core.ingest")

STAGING_DIR = "staging"


class StagingArea:
    """Durable per-(job, stage) payload checkpoints."""

    def __init__(self, directory: str | Path, *, fsync: bool = True,
                 metrics: MetricsRegistry | None = None) -> None:
        self.directory = Path(directory) / STAGING_DIR
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.metrics = metrics

    def _path(self, job_id: str, stage: str) -> Path:
        # job ids contain ':'; keep filenames portable.
        safe = job_id.replace(":", "_").replace("/", "_")
        return self.directory / f"{safe}.{stage}.pkl"

    def checkpoint(self, job_id: str, stage: str, payload: Any) -> None:
        """Durably record ``stage``'s output for ``job_id``."""
        path = self._path(job_id, stage)
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def load(self, job_id: str, stage: str) -> tuple[bool, Any]:
        """(found, payload) for a stage checkpoint.

        Unpicklable/corrupt checkpoints are quarantined and reported as
        absent — the caller falls back to re-running earlier stages."""
        path = self._path(job_id, stage)
        if not path.exists():
            return False, None
        try:
            with open(path, "rb") as handle:
                return True, pickle.load(handle)
        except Exception:
            corrupt = path.with_name(path.name + ".corrupt")
            if corrupt.exists():
                corrupt.unlink()
            path.rename(corrupt)
            logger.warning("corrupt staging checkpoint %s quarantined to %s",
                           path.name, corrupt.name)
            if self.metrics is not None:
                self.metrics.counter(
                    "ingest_journal_corrupt_total",
                    "Corrupt persistence files quarantined during recovery"
                ).inc(kind="staging")
            return False, None

    def latest(self, job_id: str, before_stage: str) -> tuple[str | None, Any]:
        """The newest intact checkpoint at or before ``before_stage``.

        Returns ``(stage, payload)`` for the latest stage whose output
        survives, scanning backwards from the stage *preceding*
        ``before_stage``; ``(None, None)`` means start from scratch."""
        limit = STAGES.index(before_stage)
        for stage in reversed(STAGES[:limit]):
            found, payload = self.load(job_id, stage)
            if found:
                return stage, payload
        return None, None

    def discard(self, job_id: str) -> None:
        """Drop all checkpoints for a finished job."""
        for stage in STAGES:
            path = self._path(job_id, stage)
            if path.exists():
                path.unlink()
