"""Supervised ingest workers: thread and subprocess behind one protocol.

A worker owns one *shard* (a stable partition of the source space, see
:func:`~repro.core.ingest.jobs.shard_of`) and runs the per-job stage
waterfall, reporting progress to the coordinator as plain-dict events on
a results queue:

* ``beat`` — liveness heartbeat, emitted when a job is picked up and at
  every stage boundary (the coordinator stamps receipt time on its own
  clock, so heartbeat detection works identically for threads and
  subprocesses, and under :class:`~repro.clock.FakeClock`);
* ``stage`` — one stage completed, carrying its output payload (the
  coordinator checkpoints it and journals the transition);
* ``done`` — the job's :class:`UpsertPayload` is ready to commit;
* ``failed`` — the job raised; ``retryable`` says whether the queue
  should back off and retry or dead-letter it.

Workers *compute*; the coordinator *commits*.  No worker ever touches
the :class:`~repro.core.store.SemanticStore` or the journal — that is
what makes the two pool flavours interchangeable: a subprocess child
works on pickled copies of the sources and its mutations are discarded,
while the committed results flow back through the event queue either
way.

Subprocess workers use the ``spawn`` start method deliberately: children
re-import and re-pickle everything (no forked shared state), so the
pickling contract the thread pool never exercises is enforced in tests.
Custom user-registered transform *functions* do not cross the boundary —
children rebuild a default :class:`~repro.core.mapping.rules.\
TransformRegistry` (built-ins plus ``scale:``/``map:`` forms); mappings
needing bespoke transforms should use thread workers.
"""

from __future__ import annotations

import pickle
import queue as queue_module
import threading
from dataclasses import dataclass, field
from typing import Any, Protocol

from ...errors import (CircuitOpenError, PoisonPayloadError, S2SError,
                       TransientSourceError)
from ...sources.flaky import KillableWorker, WorkerCrashed
from ..extractor.extractors import ExtractorRegistry
from ..extractor.manager import ExtractionOutcome
from ..extractor.records import SourceRecordSet
from ..instances.generator import InstanceGenerator
from ..mapping.rules import TransformRegistry
from ..store.snapshot import fingerprint_source
from .jobs import CLEAN, EXTRACT, MATERIALIZE, STAGE, STAGES, IngestJob

#: Exit code a subprocess worker dies with on a scripted kill.
KILL_EXIT_CODE = 17


@dataclass
class WorkerContext:
    """Everything a worker needs to run stages, picklable as a unit.

    ``extractors`` rides along for thread workers only — subprocess
    children rebuild a fresh registry (transform lambdas don't pickle).
    """

    sources: Any  # DataSourceRepository
    generator: InstanceGenerator
    killable: KillableWorker | None = None
    extractors: ExtractorRegistry | None = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["extractors"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def registry(self) -> ExtractorRegistry:
        if self.extractors is None:
            self.extractors = ExtractorRegistry(TransformRegistry())
        return self.extractors


@dataclass
class WorkItem:
    """One dispatched job: the job plus everything stage-running needs.

    ``resume_stage`` / ``resume_payload`` carry the newest intact
    staging checkpoint so a resumed job continues mid-waterfall."""

    job: dict
    entries: list  # list[MappingEntry]
    resume_stage: str | None = None
    resume_payload: Any = None


@dataclass
class ExtractBatch:
    """EXTRACT output: raw record set + content fingerprint at read time."""

    record_set: SourceRecordSet
    fingerprint: str | None = None


@dataclass
class StagedBatch:
    """STAGE/CLEAN output: assembled entities + their error entries."""

    entities: list = field(default_factory=list)
    error_entries: list = field(default_factory=list)
    fingerprint: str | None = None


@dataclass
class UpsertPayload:
    """MATERIALIZE output: everything the coordinator commits."""

    source_id: str
    class_name: str
    entities: list = field(default_factory=list)
    error_entries: list = field(default_factory=list)
    fingerprint: str | None = None


def execute_stage(stage: str, job: IngestJob, item: WorkItem, payload: Any,
                  ctx: WorkerContext, *, cancel: Any = None,
                  in_subprocess: bool = False) -> Any:
    """Run one stage of one job; returns the stage's output payload."""
    if ctx.killable is not None:
        ctx.killable.check(job.source_id, stage, cancel=cancel,
                           in_subprocess=in_subprocess)
    if stage == EXTRACT:
        source = ctx.sources.get(job.source_id)
        extractor = ctx.registry().for_source(source)
        record_set = SourceRecordSet(job.source_id)
        for entry in item.entries:
            record_set.add(extractor.extract(source, entry))
        return ExtractBatch(record_set, fingerprint_source(source))
    if stage == STAGE:
        batch: ExtractBatch = payload
        record_sets = ({job.source_id: batch.record_set}
                       if batch.record_set.fragments else {})
        outcome = ExtractionOutcome(
            record_sets=record_sets,
            per_source_seconds={job.source_id: 0.0})
        generation = ctx.generator.generate(outcome, job.class_name)
        return StagedBatch(generation.entities,
                           list(generation.errors.entries),
                           batch.fingerprint)
    if stage == CLEAN:
        staged: StagedBatch = payload
        if job.merge_key:
            from ..instances.errors import ErrorReport
            report = ErrorReport(list(staged.error_entries))
            staged.entities = InstanceGenerator._merge(
                staged.entities, list(job.merge_key), report)
            staged.error_entries = list(report.entries)
        return staged
    if stage == MATERIALIZE:
        staged = payload
        return UpsertPayload(job.source_id, job.class_name,
                             staged.entities, staged.error_entries,
                             staged.fingerprint)
    raise S2SError(f"unknown ingest stage {stage!r}")


def run_item(shard: int, item: WorkItem, ctx: WorkerContext, emit, *,
             cancel: Any = None, in_subprocess: bool = False) -> None:
    """Run one work item's remaining stages, emitting progress events.

    ``emit`` receives plain dicts.  :class:`WorkerCrashed` propagates —
    the caller's loop dies with it, which is the point."""
    job = IngestJob.from_dict(item.job)
    emit({"kind": "beat", "shard": shard, "job_id": job.job_id})
    if item.resume_stage is not None:
        start = STAGES.index(item.resume_stage) + 1
        payload = item.resume_payload
    else:
        start = STAGES.index(job.stage) if job.stage in STAGES else 0
        payload = None
        if start > 0:
            # The journal says earlier stages completed but no intact
            # checkpoint survived: fall back to the top of the waterfall.
            start = 0
    try:
        for stage in STAGES[start:]:
            payload = execute_stage(stage, job, item, payload, ctx,
                                    cancel=cancel,
                                    in_subprocess=in_subprocess)
            if stage == MATERIALIZE:
                emit({"kind": "done", "shard": shard, "job_id": job.job_id,
                      "payload": payload})
            else:
                emit({"kind": "stage", "shard": shard, "job_id": job.job_id,
                      "stage": stage, "payload": payload})
    except (TransientSourceError, CircuitOpenError) as exc:
        emit({"kind": "failed", "shard": shard, "job_id": job.job_id,
              "stage": job.stage, "error": str(exc), "retryable": True})
    except PoisonPayloadError as exc:
        emit({"kind": "failed", "shard": shard, "job_id": job.job_id,
              "stage": job.stage, "error": str(exc), "retryable": False})
    except S2SError as exc:
        emit({"kind": "failed", "shard": shard, "job_id": job.job_id,
              "stage": job.stage, "error": str(exc), "retryable": False})


def worker_loop(shard: int, inbox, results, ctx: WorkerContext, *,
                cancel: Any = None, in_subprocess: bool = False) -> None:
    """The worker main loop: drain the inbox until the None sentinel.

    Shared verbatim by thread and subprocess workers; only the queue
    implementations and the kill mechanism differ."""
    while True:
        item = inbox.get()
        if item is None:
            return
        try:
            run_item(shard, item, ctx, results.put, cancel=cancel,
                     in_subprocess=in_subprocess)
        except WorkerCrashed:
            # Simulated sudden death: exit the loop without reporting
            # anything — no failure event, no further heartbeats.  The
            # supervisor must notice on its own.
            return


def _subprocess_main(shard: int, inbox, results, cancel,
                     context_bytes: bytes) -> None:
    """Top-level subprocess entry point (spawn requires importability)."""
    ctx: WorkerContext = pickle.loads(context_bytes)
    worker_loop(shard, inbox, results, ctx, cancel=cancel,
                in_subprocess=True)


class WorkerPool(Protocol):
    """What the coordinator requires of a pool of shard workers."""

    n_workers: int

    def start(self) -> None: ...
    def submit(self, shard: int, item: WorkItem) -> None: ...
    def events(self, timeout: float) -> list[dict]: ...
    def alive(self, shard: int) -> bool: ...
    def restart(self, shard: int) -> None: ...
    def shutdown(self) -> None: ...


class _ThreadWorker:
    __slots__ = ("thread", "inbox", "cancel")

    def __init__(self, thread: threading.Thread,
                 inbox: "queue_module.Queue", cancel: threading.Event
                 ) -> None:
        self.thread = thread
        self.inbox = inbox
        self.cancel = cancel


class ThreadWorkerPool:
    """Shard workers as daemon threads sharing the process state.

    The cheap default: no pickling, shared fault-injection state (a
    scripted kill consumed by one worker is gone for all), and the
    coordinator's FakeClock is genuinely shared with the workers."""

    def __init__(self, ctx: WorkerContext, n_workers: int = 2) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.ctx = ctx
        self.n_workers = n_workers
        self.results: "queue_module.Queue[dict]" = queue_module.Queue()
        self._workers: dict[int, _ThreadWorker] = {}

    def _spawn(self, shard: int) -> _ThreadWorker:
        inbox: "queue_module.Queue" = queue_module.Queue()
        cancel = threading.Event()
        thread = threading.Thread(
            target=worker_loop, args=(shard, inbox, self.results, self.ctx),
            kwargs={"cancel": cancel}, daemon=True,
            name=f"ingest-worker-{shard}")
        thread.start()
        return _ThreadWorker(thread, inbox, cancel)

    def start(self) -> None:
        for shard in range(self.n_workers):
            self._workers[shard] = self._spawn(shard)

    def submit(self, shard: int, item: WorkItem) -> None:
        self._workers[shard].inbox.put(item)

    def events(self, timeout: float) -> list[dict]:
        collected: list[dict] = []
        try:
            collected.append(self.results.get(timeout=timeout))
        except queue_module.Empty:
            return collected
        while True:
            try:
                collected.append(self.results.get_nowait())
            except queue_module.Empty:
                return collected

    def alive(self, shard: int) -> bool:
        worker = self._workers.get(shard)
        return worker is not None and worker.thread.is_alive()

    def restart(self, shard: int) -> None:
        old = self._workers.get(shard)
        if old is not None:
            old.cancel.set()  # release a hung worker, if that's the cause
        self._workers[shard] = self._spawn(shard)

    def shutdown(self) -> None:
        for worker in self._workers.values():
            worker.cancel.set()
            worker.inbox.put(None)
        for worker in self._workers.values():
            worker.thread.join(timeout=1.0)
        self._workers.clear()


class SubprocessWorkerPool:
    """Shard workers as spawned subprocesses (real process isolation).

    Everything crossing the boundary is pickled: the worker context at
    spawn, work items on dispatch, payloads on the way back — which is
    exactly the contract a distributed deployment would need.  A
    scripted kill here is a genuine ``os._exit``."""

    def __init__(self, ctx: WorkerContext, n_workers: int = 2) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        import multiprocessing
        self._mp = multiprocessing.get_context("spawn")
        self.ctx = ctx
        self._context_bytes = pickle.dumps(ctx)
        self.n_workers = n_workers
        self.results = self._mp.Queue()
        self._workers: dict[int, Any] = {}
        self._inboxes: dict[int, Any] = {}
        self._cancels: dict[int, Any] = {}

    def _spawn(self, shard: int) -> None:
        inbox = self._mp.Queue()
        cancel = self._mp.Event()
        process = self._mp.Process(
            target=_subprocess_main,
            args=(shard, inbox, self.results, cancel, self._context_bytes),
            daemon=True, name=f"ingest-worker-{shard}")
        process.start()
        self._workers[shard] = process
        self._inboxes[shard] = inbox
        self._cancels[shard] = cancel

    def start(self) -> None:
        for shard in range(self.n_workers):
            self._spawn(shard)

    def submit(self, shard: int, item: WorkItem) -> None:
        self._inboxes[shard].put(item)

    def events(self, timeout: float) -> list[dict]:
        collected: list[dict] = []
        try:
            collected.append(self.results.get(timeout=timeout))
        except queue_module.Empty:
            return collected
        while True:
            try:
                collected.append(self.results.get_nowait())
            except queue_module.Empty:
                return collected

    def alive(self, shard: int) -> bool:
        process = self._workers.get(shard)
        return process is not None and process.is_alive()

    def restart(self, shard: int) -> None:
        old = self._workers.get(shard)
        if old is not None and old.is_alive():
            self._cancels[shard].set()
            old.terminate()
            old.join(timeout=2.0)
        self._spawn(shard)

    def shutdown(self) -> None:
        for shard, process in list(self._workers.items()):
            self._cancels[shard].set()
            if process.is_alive():
                self._inboxes[shard].put(None)
        for process in self._workers.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
        self._workers.clear()
        self._inboxes.clear()
        self._cancels.clear()
