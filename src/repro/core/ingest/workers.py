"""Supervised ingest workers: thread and subprocess behind one protocol.

A worker owns one *shard* (a stable partition of the source space, see
:func:`~repro.core.ingest.jobs.shard_of`) and runs the per-job stage
waterfall, reporting progress to the coordinator as plain-dict events on
a results queue:

* ``beat`` — liveness heartbeat, emitted when a job is picked up and at
  every stage boundary (the coordinator stamps receipt time on its own
  clock, so heartbeat detection works identically for threads and
  subprocesses, and under :class:`~repro.clock.FakeClock`);
* ``stage`` — one stage completed, carrying its output payload (the
  coordinator checkpoints it and journals the transition);
* ``done`` — the job's :class:`UpsertPayload` is ready to commit;
* ``failed`` — the job raised; ``retryable`` says whether the queue
  should back off and retry or dead-letter it.

Workers *compute*; the coordinator *commits*.  No worker ever touches
the :class:`~repro.core.store.SemanticStore` or the journal — that is
what makes the two pool flavours interchangeable: a subprocess child
works on pickled copies of the sources and its mutations are discarded,
while the committed results flow back through the event queue either
way.

Subprocess workers use the ``spawn`` start method deliberately: children
re-import and re-pickle everything (no forked shared state), so the
pickling contract the thread pool never exercises is enforced in tests.
Custom user-registered transform *functions* do not cross the boundary —
children rebuild a default :class:`~repro.core.mapping.rules.\
TransformRegistry` (built-ins plus ``scale:``/``map:`` forms); mappings
needing bespoke transforms should use thread workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ...errors import (CircuitOpenError, PoisonPayloadError, S2SError,
                       TransientSourceError)
from ...sources.flaky import KillableWorker, WorkerCrashed
from ..cluster.pool import (KILL_EXIT_CODE, WorkerPool)  # noqa: F401
from ..cluster.pool import SubprocessWorkerPool as _GenericSubprocessPool
from ..cluster.pool import ThreadWorkerPool as _GenericThreadPool
from ..extractor.extractors import ExtractorRegistry
from ..extractor.manager import ExtractionOutcome
from ..extractor.records import SourceRecordSet
from ..instances.generator import InstanceGenerator
from ..mapping.rules import TransformRegistry
from ..store.snapshot import fingerprint_source
from .jobs import CLEAN, EXTRACT, MATERIALIZE, STAGE, STAGES, IngestJob

# KILL_EXIT_CODE and the WorkerPool protocol moved to
# repro.core.cluster.pool when the query fleet landed; both remain
# importable from here (deprecation shim — new code should import from
# repro.core.cluster).


@dataclass
class WorkerContext:
    """Everything a worker needs to run stages, picklable as a unit.

    ``extractors`` rides along for thread workers only — subprocess
    children rebuild a fresh registry (transform lambdas don't pickle).
    """

    sources: Any  # DataSourceRepository
    generator: InstanceGenerator
    killable: KillableWorker | None = None
    extractors: ExtractorRegistry | None = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["extractors"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def registry(self) -> ExtractorRegistry:
        if self.extractors is None:
            self.extractors = ExtractorRegistry(TransformRegistry())
        return self.extractors


@dataclass
class WorkItem:
    """One dispatched job: the job plus everything stage-running needs.

    ``resume_stage`` / ``resume_payload`` carry the newest intact
    staging checkpoint so a resumed job continues mid-waterfall."""

    job: dict
    entries: list  # list[MappingEntry]
    resume_stage: str | None = None
    resume_payload: Any = None


@dataclass
class ExtractBatch:
    """EXTRACT output: raw record set + content fingerprint at read time."""

    record_set: SourceRecordSet
    fingerprint: str | None = None


@dataclass
class StagedBatch:
    """STAGE/CLEAN output: assembled entities + their error entries."""

    entities: list = field(default_factory=list)
    error_entries: list = field(default_factory=list)
    fingerprint: str | None = None


@dataclass
class UpsertPayload:
    """MATERIALIZE output: everything the coordinator commits."""

    source_id: str
    class_name: str
    entities: list = field(default_factory=list)
    error_entries: list = field(default_factory=list)
    fingerprint: str | None = None


def execute_stage(stage: str, job: IngestJob, item: WorkItem, payload: Any,
                  ctx: WorkerContext, *, cancel: Any = None,
                  in_subprocess: bool = False) -> Any:
    """Run one stage of one job; returns the stage's output payload."""
    if ctx.killable is not None:
        ctx.killable.check(job.source_id, stage, cancel=cancel,
                           in_subprocess=in_subprocess)
    if stage == EXTRACT:
        source = ctx.sources.get(job.source_id)
        extractor = ctx.registry().for_source(source)
        record_set = SourceRecordSet(job.source_id)
        for entry in item.entries:
            record_set.add(extractor.extract(source, entry))
        return ExtractBatch(record_set, fingerprint_source(source))
    if stage == STAGE:
        batch: ExtractBatch = payload
        record_sets = ({job.source_id: batch.record_set}
                       if batch.record_set.fragments else {})
        outcome = ExtractionOutcome(
            record_sets=record_sets,
            per_source_seconds={job.source_id: 0.0})
        generation = ctx.generator.generate(outcome, job.class_name)
        return StagedBatch(generation.entities,
                           list(generation.errors.entries),
                           batch.fingerprint)
    if stage == CLEAN:
        staged: StagedBatch = payload
        if job.merge_key:
            from ..instances.errors import ErrorReport
            report = ErrorReport(list(staged.error_entries))
            staged.entities = InstanceGenerator._merge(
                staged.entities, list(job.merge_key), report)
            staged.error_entries = list(report.entries)
        return staged
    if stage == MATERIALIZE:
        staged = payload
        return UpsertPayload(job.source_id, job.class_name,
                             staged.entities, staged.error_entries,
                             staged.fingerprint)
    raise S2SError(f"unknown ingest stage {stage!r}")


def run_item(shard: int, item: WorkItem, ctx: WorkerContext, emit, *,
             cancel: Any = None, in_subprocess: bool = False) -> None:
    """Run one work item's remaining stages, emitting progress events.

    ``emit`` receives plain dicts.  :class:`WorkerCrashed` propagates —
    the caller's loop dies with it, which is the point."""
    job = IngestJob.from_dict(item.job)
    emit({"kind": "beat", "shard": shard, "job_id": job.job_id})
    if item.resume_stage is not None:
        start = STAGES.index(item.resume_stage) + 1
        payload = item.resume_payload
    else:
        start = STAGES.index(job.stage) if job.stage in STAGES else 0
        payload = None
        if start > 0:
            # The journal says earlier stages completed but no intact
            # checkpoint survived: fall back to the top of the waterfall.
            start = 0
    try:
        for stage in STAGES[start:]:
            payload = execute_stage(stage, job, item, payload, ctx,
                                    cancel=cancel,
                                    in_subprocess=in_subprocess)
            if stage == MATERIALIZE:
                emit({"kind": "done", "shard": shard, "job_id": job.job_id,
                      "payload": payload})
            else:
                emit({"kind": "stage", "shard": shard, "job_id": job.job_id,
                      "stage": stage, "payload": payload})
    except (TransientSourceError, CircuitOpenError) as exc:
        emit({"kind": "failed", "shard": shard, "job_id": job.job_id,
              "stage": job.stage, "error": str(exc), "retryable": True})
    except PoisonPayloadError as exc:
        emit({"kind": "failed", "shard": shard, "job_id": job.job_id,
              "stage": job.stage, "error": str(exc), "retryable": False})
    except S2SError as exc:
        emit({"kind": "failed", "shard": shard, "job_id": job.job_id,
              "stage": job.stage, "error": str(exc), "retryable": False})


def worker_loop(shard: int, inbox, results, ctx: WorkerContext, *,
                cancel: Any = None, in_subprocess: bool = False) -> None:
    """The worker main loop: drain the inbox until the None sentinel.

    Shared verbatim by thread and subprocess workers; only the queue
    implementations and the kill mechanism differ."""
    while True:
        item = inbox.get()
        if item is None:
            return
        try:
            run_item(shard, item, ctx, results.put, cancel=cancel,
                     in_subprocess=in_subprocess)
        except WorkerCrashed:
            # Simulated sudden death: exit the loop without reporting
            # anything — no failure event, no further heartbeats.  The
            # supervisor must notice on its own.
            return


class ThreadWorkerPool(_GenericThreadPool):
    """Ingest shard workers as daemon threads (see
    :class:`repro.core.cluster.pool.ThreadWorkerPool`): no pickling,
    shared fault-injection state, genuinely shared clock."""

    def __init__(self, ctx: WorkerContext, n_workers: int = 2) -> None:
        super().__init__(ctx, n_workers, loop=worker_loop,
                         name="ingest-worker")


class SubprocessWorkerPool(_GenericSubprocessPool):
    """Ingest shard workers as spawned subprocesses (see
    :class:`repro.core.cluster.pool.SubprocessWorkerPool`): everything
    crossing the boundary is pickled, a scripted kill is a genuine
    ``os._exit``."""

    def __init__(self, ctx: WorkerContext, n_workers: int = 2) -> None:
        super().__init__(ctx, n_workers, loop=worker_loop,
                         name="ingest-worker")
