"""The durable job queue: journal-backed state machine for ingest jobs.

Every transition goes through the queue, and the queue journals the
transition *before* mutating in-memory state — the disk is the source
of truth, memory is a cache of it.  The queue owns retry arithmetic
(attempts, backoff on the injectable clock via the shared
:class:`~repro.core.resilience.RetryPolicy`) and the dead-letter
decision (budget exhausted, or the error was not retryable).

:meth:`DurableJobQueue.recover` is the crash-recovery entry point: it
replays the journal, resurrects unfinished jobs as pending (counting
them in ``ingest_replayed_total``) and remembers finished ones so a
planner can skip re-enqueueing work that already completed.
"""

from __future__ import annotations

import random
from typing import Iterable

from ...clock import Clock, SystemClock
from ...obs import MetricsRegistry
from ..resilience import RetryPolicy
from .jobs import (DEAD, DONE, PENDING, RUNNING, IngestJob, next_stage,
                   shard_of)
from .journal import DeadLetterLedger, IngestJournal


class DurableJobQueue:
    """Pending/running/finished ingest jobs, persisted through a journal."""

    def __init__(self, journal: IngestJournal, *,
                 clock: Clock | None = None,
                 retry_policy: RetryPolicy | None = None,
                 dead_letter: DeadLetterLedger | None = None,
                 metrics: MetricsRegistry | None = None,
                 rng: random.Random | None = None) -> None:
        self.journal = journal
        self.clock = clock or SystemClock()
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=3)
        self.dead_letter = dead_letter or DeadLetterLedger(
            journal.directory, fsync=journal.fsync, metrics=metrics)
        self.metrics = metrics
        self._rng = rng or self.retry_policy.make_rng()
        self._pending: dict[str, IngestJob] = {}
        self._running: dict[str, IngestJob] = {}
        self._finished: dict[str, IngestJob] = {}
        self.replayed = 0

    # -- bookkeeping -------------------------------------------------------

    def _count(self, state: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "ingest_jobs_total",
                "Ingest job state transitions by state").inc(amount,
                                                            state=state)

    @property
    def pending(self) -> list[IngestJob]:
        return sorted(self._pending.values(), key=lambda j: j.job_id)

    @property
    def running(self) -> list[IngestJob]:
        return sorted(self._running.values(), key=lambda j: j.job_id)

    @property
    def finished(self) -> dict[str, IngestJob]:
        return dict(self._finished)

    @property
    def drained(self) -> bool:
        return not self._pending and not self._running

    def get(self, job_id: str) -> IngestJob | None:
        return (self._pending.get(job_id) or self._running.get(job_id)
                or self._finished.get(job_id))

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {
            "pending": len(self._pending), "running": len(self._running)}
        for job in self._finished.values():
            tally[job.status] = tally.get(job.status, 0) + 1
        return tally

    # -- recovery ----------------------------------------------------------

    def recover(self) -> "DurableJobQueue":
        """Replay the journal: unfinished jobs come back as pending."""
        state = self.journal.replay()
        for job in state.unfinished():
            # In-flight work from the dead run restarts immediately: the
            # crash was ours, not the source's fault, so no backoff.
            job.next_eligible_at = 0.0
            self._pending[job.job_id] = job
            self.replayed += 1
        for job_id, job in state.finished().items():
            self._finished[job_id] = job
        if self.replayed and self.metrics is not None:
            self.metrics.counter(
                "ingest_replayed_total",
                "Unfinished jobs resurrected by journal replay"
            ).inc(self.replayed)
        return self

    # -- transitions (each one journaled first) ----------------------------

    def enqueue(self, job: IngestJob) -> IngestJob:
        now = self.clock.monotonic()
        job.status = PENDING
        job.enqueued_at = now
        self.journal.record_job("enqueue", job, now)
        self._pending[job.job_id] = job
        self._count("enqueued")
        return job

    def enqueue_all(self, jobs: Iterable[IngestJob]) -> int:
        count = 0
        for job in jobs:
            self.enqueue(job)
            count += 1
        return count

    def record_skip(self, job: IngestJob, reason: str) -> None:
        """Journal a planner decision not to enqueue (unchanged source)."""
        job.status = DONE
        self.journal.record_job("skip", job, self.clock.monotonic(),
                                reason=reason)
        self._finished[job.job_id] = job
        self._count("skipped")

    def eligible(self, n_shards: int) -> list[IngestJob]:
        """Dispatchable jobs: pending, past their backoff, one per source
        (shard affinity is the caller's concern via ``shard_of``)."""
        now = self.clock.monotonic()
        return [job for job in self.pending if job.eligible(now)]

    def next_wakeup(self) -> float | None:
        """Earliest future eligibility among backed-off pending jobs."""
        times = [job.next_eligible_at for job in self._pending.values()
                 if job.next_eligible_at > 0]
        return min(times) if times else None

    def claim(self, job: IngestJob, worker: int) -> IngestJob:
        """pending → running, assigned to ``worker``."""
        del self._pending[job.job_id]
        job.status = RUNNING
        job.worker = worker
        self.journal.record_job("claim", job, self.clock.monotonic(),
                                worker=worker)
        self._running[job.job_id] = job
        return job

    def advance(self, job: IngestJob, completed_stage: str) -> IngestJob:
        """Record one stage's durable completion; bump the cursor."""
        following = next_stage(completed_stage)
        if following is not None:
            job.stage = following
        if completed_stage not in job.completed_stages:
            job.completed_stages.append(completed_stage)
        self.journal.record_job("stage", job, self.clock.monotonic(),
                                stage=completed_stage)
        return job

    def complete(self, job: IngestJob) -> IngestJob:
        """running → done."""
        self._running.pop(job.job_id, None)
        job.status = DONE
        job.worker = None
        self.journal.record_job("done", job, self.clock.monotonic())
        self._finished[job.job_id] = job
        self._count("done")
        return job

    def fail(self, job: IngestJob, error: str, *,
             retryable: bool = True) -> IngestJob:
        """running → pending-with-backoff, or → dead when out of road."""
        self._running.pop(job.job_id, None)
        job.worker = None
        job.attempts += 1
        job.error = error
        if retryable and job.attempts < self.retry_policy.max_attempts:
            delay = self.retry_policy.delay_for(job.attempts, self._rng)
            job.status = PENDING
            job.next_eligible_at = self.clock.monotonic() + delay
            self.journal.record_job("retry", job, self.clock.monotonic(),
                                    delay=delay)
            self._pending[job.job_id] = job
            self._count("retried")
            return job
        return self._bury(job, error, retryable=retryable)

    def _bury(self, job: IngestJob, error: str, *, retryable: bool
              ) -> IngestJob:
        job.status = DEAD
        job.error = error
        now = self.clock.monotonic()
        self.journal.record_job("dead", job, now, retryable=retryable)
        self.dead_letter.append(job, now)
        self._finished[job.job_id] = job
        self._count("dead")
        return job

    def release(self, job: IngestJob) -> IngestJob:
        """running → pending because the *worker* died (not the job).

        Worker death does not consume a retry attempt: the failure was
        infrastructure, and at-least-once redelivery is the contract."""
        self._running.pop(job.job_id, None)
        job.status = PENDING
        job.worker = None
        job.next_eligible_at = 0.0
        self.journal.record_job("released", job, self.clock.monotonic())
        self._pending[job.job_id] = job
        self._count("released")
        return job

    def requeue_dead(self, job_ids: set[str] | None = None
                     ) -> list[IngestJob]:
        """Move dead-letter jobs back to pending with a fresh budget."""
        targets = job_ids
        if targets is None:
            targets = {job.job_id for job in self.dead_letter.jobs()}
        revived = self.dead_letter.remove(targets)
        for job in revived:
            job.status = PENDING
            job.attempts = 0
            job.error = None
            job.next_eligible_at = 0.0
            self.journal.record_job("requeue", job, self.clock.monotonic())
            self._finished.pop(job.job_id, None)
            self._pending[job.job_id] = job
            self._count("requeued")
        return revived

    def shard_for(self, job: IngestJob, n_shards: int) -> int:
        return shard_of(job.source_id, n_shards)
