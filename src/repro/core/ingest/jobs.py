"""The unit of durable ingest work: one source flowing through stages.

An :class:`IngestJob` is one (materialization key, data source) pair
travelling the EXTRACT → STAGE → CLEAN → MATERIALIZE waterfall.  Jobs
are the granularity of everything the pipeline guarantees: journal
records, retry state, dead-letter quarantine, worker assignment and
crash recovery all speak in jobs.  A job is deliberately small and
JSON-serializable — the journal persists *state transitions*, not
payloads (stage payloads are checkpointed separately, see
:mod:`repro.core.ingest.staging`).

Job identity is deterministic (``<class>:<attribute-digest>:<source>``)
so a restarted coordinator re-derives the same ids from the same
mapping and can match journaled history against a fresh plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ...sources.base import stable_digest
from ..cluster.sharding import shard_of  # noqa: F401  (re-export: the
# canonical home moved to core/cluster when the query fleet landed, but
# `from repro.core.ingest.jobs import shard_of` keeps working.)

#: The staged waterfall, in execution order.
EXTRACT = "EXTRACT"
STAGE = "STAGE"
CLEAN = "CLEAN"
MATERIALIZE = "MATERIALIZE"
STAGES = (EXTRACT, STAGE, CLEAN, MATERIALIZE)

#: Job statuses.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
DEAD = "dead"
STATUSES = (PENDING, RUNNING, DONE, DEAD)

#: A materialization's identity, as carried by jobs: class + attribute ids.
JobKey = tuple[str, frozenset[str]]


def key_digest(class_name: str, attribute_ids: frozenset[str]) -> str:
    """A short stable digest of one materialization key."""
    return stable_digest(class_name, *sorted(attribute_ids))[:8]


def job_id_for(class_name: str, attribute_ids: frozenset[str],
               source_id: str) -> str:
    """Deterministic job identity: same mapping → same id across runs."""
    return f"{class_name}:{key_digest(class_name, attribute_ids)}:{source_id}"




def next_stage(stage: str) -> str | None:
    """The stage after ``stage``, or None after the last one."""
    index = STAGES.index(stage)
    return STAGES[index + 1] if index + 1 < len(STAGES) else None


@dataclass
class IngestJob:
    """One source's trip through the ingest waterfall.

    ``stage`` is the *next* stage to execute — it only advances when a
    stage completes (and its output is checkpointed), so a job that
    failed or was abandoned mid-stage re-runs that stage.  ``attempts``
    and ``next_eligible_at`` are the per-job retry state: a failed job
    goes back to pending with a backoff computed from the shared
    :class:`~repro.core.resilience.RetryPolicy` on the injectable
    clock."""

    job_id: str
    source_id: str
    class_name: str
    attribute_ids: frozenset[str]
    merge_key: tuple[str, ...] | None = None
    stage: str = EXTRACT
    status: str = PENDING
    attempts: int = 0
    next_eligible_at: float = 0.0
    error: str | None = None
    #: content fingerprint probed at planning time; stamped on the
    #: stored slice so the next plan's cheap probe can skip the source.
    fingerprint: str | None = None
    enqueued_at: float = 0.0
    worker: int | None = None
    #: stages completed so far (observability; mirrors journal events)
    completed_stages: list[str] = field(default_factory=list)

    @property
    def key(self) -> JobKey:
        return (self.class_name, self.attribute_ids)

    @property
    def finished(self) -> bool:
        return self.status in (DONE, DEAD)

    def eligible(self, now: float) -> bool:
        """Whether the job may be dispatched at clock time ``now``."""
        return self.status == PENDING and now >= self.next_eligible_at

    def clone(self) -> "IngestJob":
        return replace(self, attribute_ids=self.attribute_ids,
                       completed_stages=list(self.completed_stages))

    # -- journal (de)serialization -------------------------------------

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "source_id": self.source_id,
            "class": self.class_name,
            "attributes": sorted(self.attribute_ids),
            "merge_key": list(self.merge_key) if self.merge_key else None,
            "stage": self.stage,
            "status": self.status,
            "attempts": self.attempts,
            "next_eligible_at": self.next_eligible_at,
            "error": self.error,
            "fingerprint": self.fingerprint,
            "enqueued_at": self.enqueued_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IngestJob":
        merge_key = data.get("merge_key")
        return cls(
            job_id=data["job_id"],
            source_id=data["source_id"],
            class_name=data["class"],
            attribute_ids=frozenset(data.get("attributes", [])),
            merge_key=tuple(merge_key) if merge_key else None,
            stage=data.get("stage", EXTRACT),
            status=data.get("status", PENDING),
            attempts=int(data.get("attempts", 0)),
            next_eligible_at=float(data.get("next_eligible_at", 0.0)),
            error=data.get("error"),
            fingerprint=data.get("fingerprint"),
            enqueued_at=float(data.get("enqueued_at", 0.0)),
        )

    def describe(self) -> str:
        state = self.status
        if self.status == PENDING and self.attempts:
            state = f"retry #{self.attempts}"
        return (f"{self.job_id} [{state}] next={self.stage} "
                f"done={'/'.join(self.completed_stages) or '-'}")
