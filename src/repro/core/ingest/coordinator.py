"""The shard coordinator: supervised, crash-recoverable ingest runs.

The :class:`ShardCoordinator` turns materialization targets into
per-source :class:`~repro.core.ingest.jobs.IngestJob`\\ s, partitions
them across a :class:`~repro.core.ingest.workers.WorkerPool` by stable
shard key, and supervises the run:

* every job transition is journaled (fsync'd) *before* taking effect,
  so a coordinator killed at any instruction boundary resumes exactly
  the unfinished jobs on restart (``recover()`` replay);
* worker death is detected by heartbeat age on the injectable clock
  (and by direct liveness checks); dead workers are restarted with
  jittered backoff and their in-flight jobs re-enqueued — at-least-once
  delivery, made effectively exactly-once by the store's idempotent
  per-source slice replacement;
* job failures feed the existing per-source circuit breakers, and
  breaker-open sources keep serving last-known-good data instead of
  burning the run's budget;
* jobs that exhaust their retry budget, or raise non-retryable errors
  (poison payloads), are quarantined to the dead-letter ledger and
  never block sibling shards.

Workers compute, the coordinator commits: all
:class:`~repro.core.store.SemanticStore` writes happen here, on the
event-drain path, which is what lets thread and subprocess pools behave
identically.

``stop_after=N`` is the crash seam for tests and the E17 benchmark: the
coordinator abandons the run (no clean shutdown record) after N
completed jobs, simulating sudden death mid-run.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Any

from ...clock import Clock, SystemClock
from ...obs import NULL_SPAN, MetricsRegistry, Tracer
from ..cluster.supervision import WorkerSupervisor, default_restart_policy
from ..extractor.manager import ExtractorManager
from ..instances.generator import InstanceGenerator
from ..resilience import RetryPolicy
from ..store.delta import DeltaRefresher
from ..store.store import SemanticStore, StoreKey
from .jobs import DEAD, DONE, MATERIALIZE, IngestJob, job_id_for, shard_of
from .journal import DeadLetterLedger, IngestJournal
from .queue import DurableJobQueue
from .staging import StagingArea
from .workers import (SubprocessWorkerPool, ThreadWorkerPool, UpsertPayload,
                      WorkerContext, WorkItem, WorkerPool)


@dataclass
class IngestTarget:
    """One materialization to ingest: class + required attributes."""

    class_name: str
    required: list  # list[AttributePath]
    merge_key: tuple[str, ...] | None = None

    @property
    def key(self) -> StoreKey:
        return (self.class_name,
                frozenset(str(path) for path in self.required))


@dataclass
class IngestReport:
    """What one coordinator run did."""

    run_id: str
    jobs_total: int = 0
    completed: int = 0
    replayed: int = 0
    skipped_unchanged: int = 0
    kept_stale: int = 0
    dead: int = 0
    released: int = 0
    worker_restarts: int = 0
    elapsed_seconds: float = 0.0
    #: True when the run ended without draining the queue (stop_after
    #: crash seam, or a shard exceeding its restart budget).
    aborted: bool = False
    trace: object | None = None
    errors: list[str] = field(default_factory=list)

    def summary(self) -> str:
        state = "aborted" if self.aborted else "completed"
        return (f"run {self.run_id} {state}: {self.completed} done, "
                f"{self.replayed} replayed, "
                f"{self.skipped_unchanged} skipped, {self.dead} dead, "
                f"{self.worker_restarts} worker restarts")


class ShardCoordinator:
    """Drives durable staged ingest over a pool of shard workers."""

    def __init__(self, store: SemanticStore, manager: ExtractorManager,
                 generator: InstanceGenerator, journal_dir: str, *,
                 n_workers: int = 2, pool: str = "thread",
                 clock: Clock | None = None,
                 retry_policy: RetryPolicy | None = None,
                 restart_policy: RetryPolicy | None = None,
                 heartbeat_timeout: float = 30.0,
                 poll_seconds: float = 0.05,
                 real_poll_seconds: float = 0.02,
                 max_worker_restarts: int = 3,
                 killable: Any = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 fsync: bool = True,
                 stop_after: int | None = None) -> None:
        if pool not in ("thread", "subprocess"):
            raise ValueError("pool must be 'thread' or 'subprocess'")
        self.store = store
        self.manager = manager
        self.generator = generator
        self.clock = clock or manager.config.clock or SystemClock()
        self.tracer = tracer
        self.metrics = metrics
        self.n_workers = n_workers
        self.pool_kind = pool
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_seconds = poll_seconds
        self.real_poll_seconds = real_poll_seconds
        self.max_worker_restarts = max_worker_restarts
        self.killable = killable
        self.stop_after = stop_after
        self.restart_policy = restart_policy or default_restart_policy(
            max_worker_restarts)
        self.journal = IngestJournal(journal_dir, fsync=fsync,
                                     metrics=metrics)
        self.dead_letter = DeadLetterLedger(journal_dir, fsync=fsync,
                                            metrics=metrics)
        self.staging = StagingArea(journal_dir, fsync=fsync, metrics=metrics)
        self.queue = DurableJobQueue(
            self.journal, clock=self.clock,
            retry_policy=retry_policy or manager.config.retry,
            dead_letter=self.dead_letter, metrics=metrics).recover()
        self._entries: dict[str, list] = {}  # job_id -> mapping entries
        self._keys: dict[str, StoreKey] = {}  # job_id -> store key
        self._job_spans: dict[str, Any] = {}

    # -- planning ----------------------------------------------------------

    def _refresher(self) -> DeltaRefresher:
        return DeltaRefresher(self.store, self.manager, self.generator)

    def plan(self, targets: list[IngestTarget], *, force: bool = False,
             root=NULL_SPAN) -> IngestReport:
        """Turn targets into enqueued jobs; returns a partial report
        carrying the skip/replay tallies (``run`` completes it).

        Planning is where crash recovery and change detection meet: a
        journaled-done job whose source fingerprint still matches is
        skipped; an unfinished journaled job is already pending from
        ``recover()`` and is only re-labelled; everything else gets a
        fresh job.  Fingerprints come from the read-only cheap probe
        (:meth:`DeltaRefresher.plan_changes`), so unchanged web sources
        never enqueue work — or cost a counted fetch."""
        report = IngestReport(run_id=uuid.uuid4().hex[:12])
        report.replayed = self.queue.replayed
        refresher = self._refresher()
        with root.child("plan", targets=len(targets)) as span:
            for target in targets:
                self._plan_target(target, refresher, force, report, span)
        report.jobs_total = len(self.queue.pending) + len(self.queue.running)
        return report

    def _plan_target(self, target: IngestTarget, refresher: DeltaRefresher,
                     force: bool, report: IngestReport, span) -> None:
        mat = self.store.ensure(target.class_name, list(target.required))
        schema = self.manager.obtain_extraction_schema(list(target.required))
        delta = refresher.plan_changes(mat, force=force)
        for source_id in delta.removed:
            self.store.tombstone(mat.key, source_id)
            span.child("source", source=source_id,
                       verdict="tombstoned").finish()
        for source_id in delta.kept_stale:
            self.store.mark_slice_stale(mat.key, source_id)
            report.kept_stale += 1
            span.child("source", source=source_id,
                       verdict="breaker-open").finish()
        for source_id in sorted(schema.by_source):
            if source_id in delta.kept_stale:
                continue
            job_id = job_id_for(target.class_name, mat.attribute_ids,
                                source_id)
            self._keys[job_id] = mat.key
            self._entries[job_id] = list(schema.by_source[source_id])
            existing = self.queue.get(job_id)
            if existing is not None and not existing.finished:
                # Resurrected by journal replay: resume, don't re-plan.
                existing.merge_key = target.merge_key
                span.child("source", source=source_id,
                           verdict="resumed").finish()
                continue
            fingerprint = delta.fingerprints.get(source_id)
            if source_id in delta.unchanged:
                finished = self.queue.finished.get(job_id)
                if (finished is None or finished.status == DONE):
                    report.skipped_unchanged += 1
                    self.queue.record_skip(
                        IngestJob(job_id, source_id, target.class_name,
                                  mat.attribute_ids,
                                  merge_key=target.merge_key,
                                  fingerprint=fingerprint),
                        "unchanged")
                    span.child("source", source=source_id,
                               verdict="unchanged").finish()
                    continue
            if existing is not None and existing.status == DEAD:
                # Quarantined: stays dead until an explicit requeue.
                span.child("source", source=source_id,
                           verdict="dead-letter").finish()
                continue
            job = IngestJob(job_id, source_id, target.class_name,
                            mat.attribute_ids, merge_key=target.merge_key,
                            fingerprint=fingerprint)
            self.queue.enqueue(job)
            span.child("source", source=source_id,
                       verdict="enqueued").finish()

    # -- the run loop ------------------------------------------------------

    def _build_pool(self) -> WorkerPool:
        ctx = WorkerContext(self.manager.sources, self.generator,
                            killable=self.killable,
                            extractors=self.manager.extractors)
        if self.pool_kind == "subprocess":
            return SubprocessWorkerPool(ctx, self.n_workers)
        return ThreadWorkerPool(ctx, self.n_workers)

    def run(self, targets: list[IngestTarget], *,
            force: bool = False) -> IngestReport:
        """Plan and drain: the whole ingest run, supervised."""
        started = time.perf_counter()
        root = (self.tracer.start("ingest", targets=len(targets),
                                  workers=self.n_workers,
                                  pool=self.pool_kind)
                if self.tracer is not None else NULL_SPAN)
        report = self.plan(targets, force=force, root=root)
        self.journal.record_run("started", report.run_id,
                                self.clock.monotonic(),
                                jobs=report.jobs_total)
        if self.metrics is not None:
            self.metrics.counter("ingest_runs_total",
                                 "coordinator ingest runs").inc()
        pool = self._build_pool()
        pool.start()
        try:
            self._drain(pool, report, root)
        finally:
            pool.shutdown()
            for span in self._job_spans.values():
                span.finish()
            self._job_spans.clear()
            root.finish()
        if not report.aborted:
            self.journal.record_run("finished", report.run_id,
                                    self.clock.monotonic(),
                                    completed=report.completed,
                                    dead=report.dead)
            self._touch_clean_targets(targets)
        report.elapsed_seconds = time.perf_counter() - started
        if self.metrics is not None:
            self.metrics.histogram(
                "ingest_run_seconds",
                "wall-clock time of one ingest run").observe(
                    report.elapsed_seconds)
        report.trace = (self.tracer.trace_of(root)
                        if self.tracer is not None else None)
        return report

    def _touch_clean_targets(self, targets: list[IngestTarget]) -> None:
        """Re-stamp materializations whose every job finished cleanly."""
        dead_keys = {self._keys.get(job.job_id)
                     for job in self.queue.finished.values()
                     if job.status == DEAD}
        for target in targets:
            if target.key not in dead_keys:
                mat = self.store.materialization(target.key)
                if mat is not None and mat.slices:
                    self.store.touch(target.key)

    def _drain(self, pool: WorkerPool, report: IngestReport, root) -> None:
        assigned: dict[int, str] = {}  # shard -> in-flight job_id
        supervisor = WorkerSupervisor(
            self.clock, heartbeat_timeout=self.heartbeat_timeout,
            restart_policy=self.restart_policy,
            max_restarts=self.max_worker_restarts, metrics=self.metrics)
        supervisor.reset(range(self.n_workers))
        while not self.queue.drained:
            if (self.stop_after is not None
                    and report.completed >= self.stop_after):
                # Simulated coordinator crash: walk away mid-run.  No
                # shutdown record, no store touch — recovery must come
                # entirely from the journal.
                report.aborted = True
                return
            events = pool.events(self.real_poll_seconds)
            if not events:
                # Idle beat: advance the (possibly fake) clock so
                # heartbeat ages and retry backoffs make progress.
                self.clock.sleep(self.poll_seconds)
            for event in events:
                supervisor.beat(event["shard"])
                self._handle_event(event, assigned, report, root)
                if (self.stop_after is not None
                        and report.completed >= self.stop_after):
                    # Die exactly at the Nth completion, even when one
                    # event batch carries several — keeps the crash
                    # seam deterministic for tests and E17.
                    report.aborted = True
                    return
            if self._supervise(pool, supervisor, assigned, report):
                report.aborted = True
                return
            self._dispatch(pool, assigned, supervisor.restart_at, report,
                           root)

    # -- event handling ----------------------------------------------------

    def _handle_event(self, event: dict, assigned: dict[int, str],
                      report: IngestReport, root) -> None:
        kind = event.get("kind")
        if kind == "beat":
            return
        job_id = event.get("job_id", "")
        job = self.queue.get(job_id)
        if job is None or job.finished:
            return  # late event from a worker declared dead; ignore
        span = self._job_spans.get(job_id, NULL_SPAN)
        if kind == "stage":
            stage = event["stage"]
            self.staging.checkpoint(job_id, stage, event.get("payload"))
            self.queue.advance(job, stage)
            span.child(stage.lower()).finish()
            return
        shard = event.get("shard")
        if kind == "done":
            payload: UpsertPayload = event["payload"]
            self._commit(job, payload)
            self.queue.advance(job, MATERIALIZE)
            self.queue.complete(job)
            self.staging.discard(job_id)
            report.completed += 1
            span.annotate(outcome="done")
            self._finish_span(job_id)
            if shard in assigned and assigned[shard] == job_id:
                del assigned[shard]
            return
        if kind == "failed":
            error = event.get("error", "unknown worker failure")
            retryable = bool(event.get("retryable", False))
            breaker = (self.manager.breakers.get(job.source_id)
                       if self.manager.breakers is not None else None)
            if breaker is not None and retryable:
                breaker.record_failure()
            failed = self.queue.fail(job, error, retryable=retryable)
            if failed.status == DEAD:
                report.dead += 1
                report.errors.append(f"{job_id}: {error}")
                span.fail(error)
                self._finish_span(job_id)
            else:
                span.annotate(retry=failed.attempts)
            if shard in assigned and assigned[shard] == job_id:
                del assigned[shard]

    def _commit(self, job: IngestJob, payload: UpsertPayload) -> None:
        """The only store write path: idempotent per-source upsert.

        Re-delivery of the same payload (at-least-once redelivery after
        a worker or coordinator death) replaces the slice with identical
        content — effectively exactly-once."""
        key = self._keys.get(job.job_id, (job.class_name, job.attribute_ids))
        self.store.upsert(key, job.source_id, payload.entities,
                          fingerprint=payload.fingerprint)
        if payload.error_entries:
            self.store.replace_errors(key, payload.error_entries,
                                      for_sources=[job.source_id])
        breaker = (self.manager.breakers.get(job.source_id)
                   if self.manager.breakers is not None else None)
        if breaker is not None:
            breaker.record_success()

    def _finish_span(self, job_id: str) -> None:
        span = self._job_spans.pop(job_id, None)
        if span is not None:
            span.finish()

    # -- supervision -------------------------------------------------------

    def _supervise(self, pool: WorkerPool, supervisor: WorkerSupervisor,
                   assigned: dict[int, str],
                   report: IngestReport) -> bool:
        """Detect dead workers, release their jobs, schedule restarts.

        The detection/backoff policy lives in the shared
        :class:`~repro.core.cluster.supervision.WorkerSupervisor` (the
        query fleet runs the same one); this method maps its verdict
        onto ingest semantics — releasing in-flight jobs back to the
        queue, and aborting the run when a shard exceeded its restart
        budget.  Returns True on abort."""
        # Only shards with work in flight or routed to them matter: a
        # dead-but-idle worker must not burn the restart budget (and
        # certainly must not abort the run) while other shards drain.
        relevant = set(assigned)
        relevant.update(shard_of(job.source_id, self.n_workers)
                        for job in self.queue.pending)
        verdict = supervisor.supervise(pool, busy=set(assigned),
                                       relevant=relevant)
        dead_shards = list(verdict.deaths)
        if verdict.aborted is not None:
            dead_shards.append(verdict.aborted)
        for shard in dead_shards:
            if shard not in assigned:
                continue
            job = self.queue.get(assigned.pop(shard))
            if job is not None and not job.finished:
                self.queue.release(job)
                report.released += 1
                self._job_spans.get(job.job_id, NULL_SPAN).annotate(
                    released=True)
        report.worker_restarts += len(verdict.deaths)
        if verdict.aborted is not None:
            report.errors.append(
                f"worker shard {verdict.aborted} exceeded its restart "
                f"budget ({self.max_worker_restarts})")
            return True
        return False

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, pool: WorkerPool, assigned: dict[int, str],
                  restart_at: dict[int, float], report: IngestReport,
                  root) -> None:
        for job in self.queue.eligible(self.n_workers):
            shard = shard_of(job.source_id, self.n_workers)
            if shard in assigned or shard in restart_at:
                continue  # worker busy or awaiting restart
            if not pool.alive(shard):
                continue  # will be picked up by supervision
            if not self._breaker_admits(job, report):
                continue
            entries = self._entries.get(job.job_id)
            if entries is None:
                # A replayed job whose mapping vanished since the crash.
                self.queue.claim(job, shard)
                self.queue.fail(job, "no mapping entries for source "
                                f"{job.source_id!r} after recovery",
                                retryable=False)
                report.dead += 1
                continue
            self.queue.claim(job, shard)
            assigned[shard] = job.job_id
            if self.tracer is not None and job.job_id not in self._job_spans:
                self._job_spans[job.job_id] = root.child(
                    "job", job_id=job.job_id, source=job.source_id,
                    shard=shard, attempt=job.attempts + 1)
            resume_stage, resume_payload = self.staging.latest(
                job.job_id, job.stage)
            pool.submit(shard, WorkItem(job.to_dict(), entries,
                                        resume_stage=resume_stage,
                                        resume_payload=resume_payload))

    def _breaker_admits(self, job: IngestJob, report: IngestReport) -> bool:
        """Dispatch-time breaker gate.

        Open breaker + a stored slice → keep serving last-known-good
        data, job completes as kept-stale.  Open breaker with nothing
        stored → the job fails retryably (backoff), eventually dying to
        the dead-letter ledger if the source never heals."""
        if self.manager.breakers is None:
            return True
        breaker = self.manager.breakers.get(job.source_id)
        if breaker.allow():
            return True
        key = self._keys.get(job.job_id, (job.class_name, job.attribute_ids))
        mat = self.store.materialization(key)
        slice_exists = mat is not None and job.source_id in mat.slices
        self.queue.claim(job, -1)
        if slice_exists:
            self.store.mark_slice_stale(key, job.source_id)
            self.queue.complete(job)
            report.kept_stale += 1
        else:
            self.queue.fail(job, f"circuit breaker open for "
                            f"{job.source_id!r}", retryable=True)
            if self.queue.get(job.job_id).status == DEAD:
                report.dead += 1
        return False

    # -- operator surface --------------------------------------------------

    def status(self) -> dict:
        """Journal-level run status (for `ingest status`)."""
        state = self.journal.replay()
        counts = state.counts()
        return {
            "journal": str(self.journal.path),
            "jobs": counts,
            "unfinished": [job.describe() for job in state.unfinished()],
            "dead_letter": len(self.dead_letter.entries()),
            "last_run": state.runs[-1] if state.runs else None,
        }

    def dead_letters(self) -> list[dict]:
        """Dead-letter entries with their captured errors."""
        return self.dead_letter.entries()

    def requeue(self, job_ids: list[str] | None = None) -> list[IngestJob]:
        """Release dead-letter jobs back to pending (fresh budget)."""
        targets = set(job_ids) if job_ids else None
        return self.queue.requeue_dead(targets)

    def close(self) -> None:
        self.journal.close()
