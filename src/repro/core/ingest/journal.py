"""Durable persistence for the ingest pipeline: journal + dead letters.

The :class:`IngestJournal` is an append-only JSONL file of job state
transitions.  Every record is one JSON object on one line, written,
flushed and ``fsync``'d before the transition is considered to have
happened — so what the journal says occurred, occurred, even if the
process dies on the next instruction.  Recovery is replay: read the
records in order, fold them into per-job state, and any job whose last
event is not terminal is *unfinished* and must be re-run.

Corruption is degraded gracefully, never fatally (a crashed writer can
leave a torn final line; a torn line must not brick the pipeline): the
first garbled record ends the usable prefix, the original file is
quarantined under a ``.corrupt`` suffix, the good prefix is rewritten in
place, a warning is logged and ``ingest_journal_corrupt_total`` is
incremented.  The same policy covers the :class:`DeadLetterLedger`, a
sibling JSONL file holding quarantined jobs and their captured errors.
"""

from __future__ import annotations

import io
import json
import logging
import os
from pathlib import Path
from typing import Any, Iterator

from ...obs import MetricsRegistry
from .jobs import DEAD, DONE, PENDING, RUNNING, IngestJob

logger = logging.getLogger("repro.core.ingest")

JOURNAL_NAME = "journal.jsonl"
DEAD_LETTER_NAME = "dead_letter.jsonl"

#: Journal event vocabulary (the ``event`` field of job records).
EVENTS = ("enqueue", "claim", "stage", "retry", "released", "done", "dead",
          "requeue", "skip")


def _quarantine(path: Path, good_records: list[dict],
                metrics: MetricsRegistry | None, kind: str) -> None:
    """Rename the damaged file aside and rewrite the good prefix."""
    corrupt = path.with_name(path.name + ".corrupt")
    # A prior quarantine may already sit there; keep the newest evidence.
    if corrupt.exists():
        corrupt.unlink()
    path.rename(corrupt)
    with open(path, "w", encoding="utf-8") as handle:
        for record in good_records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    logger.warning(
        "corrupt %s record in %s: quarantined to %s, continuing from "
        "%d good record(s)", kind, path, corrupt.name, len(good_records))
    if metrics is not None:
        metrics.counter(
            "ingest_journal_corrupt_total",
            "Corrupt persistence files quarantined during recovery"
        ).inc(kind=kind)


def read_jsonl(path: Path, *, metrics: MetricsRegistry | None = None,
               kind: str = "journal") -> list[dict]:
    """Read a JSONL file, quarantining it at the first garbled record.

    Returns the records of the longest valid prefix.  A record must be a
    JSON *object*; a decodable scalar on a line is still corruption.
    """
    if not path.exists():
        return []
    records: list[dict] = []
    damaged = False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            text = line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except json.JSONDecodeError:
                damaged = True
                break
            if not isinstance(record, dict):
                damaged = True
                break
            records.append(record)
    if damaged:
        _quarantine(path, records, metrics, kind)
    return records


class IngestJournal:
    """Append-only JSONL log of ingest runs and job transitions.

    ``fsync=False`` trades durability for speed in benchmarks that
    measure pipeline overhead rather than disk behaviour; the default is
    the durable path.
    """

    def __init__(self, directory: str | Path, *, fsync: bool = True,
                 metrics: MetricsRegistry | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_NAME
        self.fsync = fsync
        self.metrics = metrics
        self._handle: io.TextIOWrapper | None = None

    # -- writing -----------------------------------------------------------

    def _file(self) -> io.TextIOWrapper:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record (write + flush + fsync)."""
        handle = self._file()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def record_run(self, event: str, run_id: str, t: float,
                   **extra: Any) -> None:
        """Run-level bracket events (started / finished / aborted)."""
        self.append({"type": "run", "event": event, "run_id": run_id,
                     "t": t, **extra})

    def record_job(self, event: str, job: IngestJob, t: float,
                   **extra: Any) -> None:
        """One job state transition; carries the job's full state so
        replay needs no cross-record joins."""
        self.append({"type": "job", "event": event, "t": t,
                     "job": job.to_dict(), **extra})

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- replay ------------------------------------------------------------

    def records(self) -> list[dict]:
        """All readable records (quarantines damage as a side effect)."""
        self.close()  # release the append handle before any rewrite
        return read_jsonl(self.path, metrics=self.metrics, kind="journal")

    def replay(self) -> "JournalState":
        """Fold the journal into the latest known state of every job."""
        state = JournalState()
        for record in self.records():
            state.apply(record)
        return state


class JournalState:
    """The result of replaying a journal: per-job latest state."""

    def __init__(self) -> None:
        self.jobs: dict[str, IngestJob] = {}
        self.events: dict[str, list[str]] = {}
        self.runs: list[dict] = []
        self.last_run_id: str | None = None

    def apply(self, record: dict) -> None:
        rtype = record.get("type")
        if rtype == "run":
            self.runs.append(record)
            if record.get("event") == "started":
                self.last_run_id = record.get("run_id")
            return
        if rtype != "job":
            return
        payload = record.get("job")
        if not isinstance(payload, dict):
            return
        try:
            job = IngestJob.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return
        event = str(record.get("event", ""))
        previous = self.jobs.get(job.job_id)
        if previous is not None:
            job.completed_stages = list(previous.completed_stages)
        if event == "stage":
            stage = record.get("stage")
            if stage and stage not in job.completed_stages:
                job.completed_stages.append(stage)
        self.jobs[job.job_id] = job
        self.events.setdefault(job.job_id, []).append(event)

    def unfinished(self) -> list[IngestJob]:
        """Jobs whose last journaled state is not terminal.

        A job journaled as ``running`` was in flight when the process
        died — replay returns it as pending so it is re-run (at-least-
        once; the store upsert makes re-application idempotent)."""
        out = []
        for job in self.jobs.values():
            if job.status == RUNNING:
                resumed = job.clone()
                resumed.status = PENDING
                resumed.worker = None
                out.append(resumed)
            elif job.status == PENDING:
                out.append(job.clone())
        return sorted(out, key=lambda j: j.job_id)

    def finished(self) -> dict[str, IngestJob]:
        return {job_id: job for job_id, job in self.jobs.items()
                if job.status in (DONE, DEAD)}

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for job in self.jobs.values():
            tally[job.status] = tally.get(job.status, 0) + 1
        return tally


class DeadLetterLedger:
    """Quarantine file for jobs that exhausted retries or hit poison.

    Append-only in normal operation; :meth:`remove` (the requeue path)
    rewrites the file without the released entries, which is safe
    because requeue is an operator action, not a hot-path write."""

    def __init__(self, directory: str | Path, *, fsync: bool = True,
                 metrics: MetricsRegistry | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / DEAD_LETTER_NAME
        self.fsync = fsync
        self.metrics = metrics

    def append(self, job: IngestJob, t: float) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"t": t, "job": job.to_dict(), "error": job.error},
                sort_keys=True) + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def entries(self) -> list[dict]:
        return read_jsonl(self.path, metrics=self.metrics,
                          kind="dead_letter")

    def jobs(self) -> Iterator[IngestJob]:
        for entry in self.entries():
            payload = entry.get("job")
            if isinstance(payload, dict):
                try:
                    yield IngestJob.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    continue

    def remove(self, job_ids: set[str]) -> list[IngestJob]:
        """Drop entries for ``job_ids``; returns the removed jobs."""
        kept: list[dict] = []
        removed: list[IngestJob] = []
        for entry in self.entries():
            payload = entry.get("job", {})
            if payload.get("job_id") in job_ids:
                try:
                    removed.append(IngestJob.from_dict(payload))
                except (KeyError, TypeError, ValueError):
                    continue
            else:
                kept.append(entry)
        with open(self.path, "w", encoding="utf-8") as handle:
            for entry in kept:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        return removed


# DEAD is re-exported for callers folding ledger entries back to jobs.
__all__ = ["IngestJournal", "JournalState", "DeadLetterLedger",
           "read_jsonl", "JOURNAL_NAME", "DEAD_LETTER_NAME", "DEAD"]
