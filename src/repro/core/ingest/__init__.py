"""Durable staged ingest: jobs, journal, shard workers, supervision.

The ROADMAP's "sharded, multi-process execution with a durable job
queue" item: materialization and delta refresh become explicit
per-source jobs flowing through EXTRACT → STAGE → CLEAN → MATERIALIZE,
journaled durably at every transition and recoverable by replay after a
crash.  See docs/ingest.md for the lifecycle, the journal format and
the at-least-once + idempotent-upsert contract.
"""

from .coordinator import IngestReport, IngestTarget, ShardCoordinator
from .jobs import (CLEAN, DEAD, DONE, EXTRACT, MATERIALIZE, PENDING,
                   RUNNING, STAGE, STAGES, IngestJob, job_id_for,
                   next_stage, shard_of)
from .journal import (DEAD_LETTER_NAME, JOURNAL_NAME, DeadLetterLedger,
                      IngestJournal, JournalState, read_jsonl)
from .queue import DurableJobQueue
from .staging import StagingArea
from .workers import (ExtractBatch, StagedBatch, SubprocessWorkerPool,
                      ThreadWorkerPool, UpsertPayload, WorkerContext,
                      WorkerPool, WorkItem, execute_stage, run_item,
                      worker_loop)

__all__ = [
    "CLEAN", "DEAD", "DONE", "EXTRACT", "MATERIALIZE", "PENDING",
    "RUNNING", "STAGE", "STAGES",
    "DEAD_LETTER_NAME", "JOURNAL_NAME",
    "DeadLetterLedger", "DurableJobQueue", "ExtractBatch", "IngestJob",
    "IngestJournal", "IngestReport", "IngestTarget", "JournalState",
    "ShardCoordinator", "StagedBatch", "StagingArea",
    "SubprocessWorkerPool", "ThreadWorkerPool", "UpsertPayload",
    "WorkItem", "WorkerContext", "WorkerPool",
    "execute_stage", "job_id_for", "next_stage", "read_jsonl", "run_item",
    "shard_of", "worker_loop",
]
