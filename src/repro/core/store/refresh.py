"""Freshness policy and the background store refresher.

A :class:`RefreshPolicy` decides when materialized instances are too old
to serve (TTL/staleness) and how the store degrades: whether a stale
materialization may still be served while a refresh is in flight, and
whether a failing source's last-known-good instances are kept instead of
dropped (graceful degradation when a circuit breaker is open).

:class:`StoreRefresher` runs refreshes in the background, reusing the
worker pattern of :class:`~repro.core.query.scheduler.QueryScheduler`
(one condition variable, daemon threads, explicit ``close()``).  Time is
read through the injectable :class:`~repro.clock.Clock`, so tests drive
the refresher deterministically with a :class:`~repro.clock.FakeClock`
and the synchronous :meth:`StoreRefresher.tick` seam instead of real
sleeping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from ...clock import Clock, SystemClock
from ...errors import S2SError


@dataclass(frozen=True)
class RefreshPolicy:
    """When is a materialization stale, and how does serving degrade.

    ``ttl_seconds=None`` means materializations never expire by age
    (refresh happens only on demand or through the background
    refresher); ``serve_stale_while_refreshing`` lets queries keep being
    answered from the old snapshot while a refresh is running instead of
    falling back to live extraction; ``keep_last_known_good`` makes the
    delta refresher keep (and mark stale) a source's previous instances
    when the source fails or its circuit breaker is open, rather than
    dropping them from the answer."""

    ttl_seconds: float | None = None
    serve_stale_while_refreshing: bool = True
    keep_last_known_good: bool = True

    def __post_init__(self) -> None:
        if self.ttl_seconds is not None and self.ttl_seconds < 0:
            raise ValueError("ttl_seconds must be >= 0 or None")

    def is_stale(self, age_seconds: float) -> bool:
        """Whether a materialization of this age is past its TTL."""
        if self.ttl_seconds is None:
            return False
        return age_seconds >= self.ttl_seconds


class StoreRefresher:
    """Periodic background refresh driver.

    ``refresh`` is the zero-argument callable that performs one refresh
    cycle (normally ``middleware.refresh_store``); ``interval_seconds``
    is measured on the injectable ``clock``.  A daemon worker thread
    wakes on a condition variable and runs a cycle whenever the clock
    says one is due; :meth:`tick` runs one cycle synchronously on the
    caller's thread — the deterministic seam tests use with a
    :class:`~repro.clock.FakeClock`, where the worker's real-time waits
    never fire.

    Usable as a context manager so the worker is shut down on exit::

        with StoreRefresher(s2s.refresh_store, interval_seconds=300):
            ...serve queries...
    """

    def __init__(self, refresh: Callable[[], list],
                 *, interval_seconds: float = 60.0,
                 clock: Clock | None = None,
                 poll_seconds: float | None = None) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.refresh = refresh
        self.interval_seconds = interval_seconds
        self.clock = clock or SystemClock()
        self._poll = poll_seconds if poll_seconds is not None else interval_seconds
        self._cond = threading.Condition()
        self._closed = False
        self.cycles = 0
        self.last_results: list = []
        self.last_error: str | None = None
        self._last_run = self.clock.monotonic()
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="store-refresher")
        self._worker.start()

    def tick(self) -> list:
        """Run one refresh cycle now, on the calling thread.

        Failures are recorded in ``last_error`` instead of raising — a
        background refresh must never take the serving path down."""
        try:
            results = self.refresh()
            self.last_error = None
        except S2SError as exc:
            self.last_error = str(exc)
            return []
        self.cycles += 1
        self.last_results = results
        return results

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._closed:
                    return
                self._cond.wait(self._poll)
                if self._closed:
                    return
            now = self.clock.monotonic()
            if now - self._last_run >= self.interval_seconds:
                self._last_run = now
                self.tick()

    def close(self, *, wait: bool = True) -> None:
        """Stop the background worker. Idempotent."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if wait:
            self._worker.join()

    def __enter__(self) -> "StoreRefresher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
