"""Content fingerprints and disk persistence for the semantic store.

Two concerns live here because both are about *snapshotting* source and
store state:

* :func:`fingerprint_source` — a stable content hash of one data
  source's observable data (every connector implements
  ``content_fingerprint()``; see :mod:`repro.sources.base`).  The delta
  refresher compares fingerprints taken at materialization time against
  the current ones to decide *which* sources need re-extraction.

* :func:`save_store` / :func:`load_store` — warm-restart persistence.
  A saved store is two files in one directory: ``snapshot.ttl`` (or
  ``.nt``), the full RDF graph including provenance triples, and
  ``manifest.json``, the structural index (materializations → source
  slices → entity identifiers, links, fingerprints, error entries) that
  the triples alone cannot carry.  Literal values round-trip through
  the graph (``python_to_literal`` / ``Literal.to_python``), so typed
  values (ints, floats, dates) survive the restart.
"""

from __future__ import annotations

import json
import logging
import os

from ...errors import S2SError
from ...ids import AttributePath
from ...ontology.model import Individual
from ...rdf.namespace import RDF
from ...rdf.ntriples import parse_ntriples, serialize_ntriples
from ...rdf.terms import Literal
from ...rdf.turtle import parse_turtle, serialize_turtle
from ...sources.base import DataSource
from ..instances.assembly import AssembledEntity
from ..instances.errors import ErrorEntry

logger = logging.getLogger("repro.core.store")

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: snapshot format → (file name, serializer, parser)
SNAPSHOT_FORMATS = {
    "turtle": ("snapshot.ttl", serialize_turtle, parse_turtle),
    "ntriples": ("snapshot.nt", serialize_ntriples, parse_ntriples),
}


def fingerprint_source(source: DataSource) -> str | None:
    """The source's current content fingerprint, or None.

    ``None`` means the content is unobservable right now (connector does
    not implement fingerprinting, or reading it failed) — callers must
    treat that as *changed*, never as *unchanged*."""
    try:
        return source.content_fingerprint()
    except S2SError:
        return None


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------


def save_store(store, directory: str, *, format: str = "turtle") -> str:
    """Persist ``store`` under ``directory``; returns the manifest path.

    The directory is created if missing.  Freshness is deliberately not
    persisted: a reloaded store is stamped fresh at load time, and the
    first refresh re-checks every fingerprint anyway."""
    if format not in SNAPSHOT_FORMATS:
        raise S2SError(f"unknown snapshot format {format!r}; expected one "
                       f"of {sorted(SNAPSHOT_FORMATS)}")
    snapshot_name, serializer, _parser = SNAPSHOT_FORMATS[format]
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, snapshot_name), "w",
              encoding="utf-8") as handle:
        handle.write(serializer(store.graph))
    manifest = {
        "version": MANIFEST_VERSION,
        "format": format,
        "generation": store.generation,
        "namespace": store.namespace.base,
        "materializations": [
            _materialization_to_dict(mat)
            for mat in store.materializations()],
    }
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
    return manifest_path


def _materialization_to_dict(mat) -> dict:
    return {
        "class": mat.class_name,
        "attributes": sorted(mat.attribute_ids),
        "errors": [{"phase": entry.phase, "message": entry.message,
                    "source_id": entry.source_id,
                    "attribute_id": entry.attribute_id}
                   for entry in mat.errors],
        "slices": [
            {"source": slice_.source_id,
             "fingerprint": slice_.fingerprint,
             "stale": slice_.stale,
             "entities": [_entity_to_dict(entity)
                          for entity in slice_.entities]}
            for _sid, slice_ in sorted(mat.slices.items())],
    }


def _entity_to_dict(entity: AssembledEntity) -> dict:
    individuals = entity.all_individuals()
    return {
        "primary": {"id": entity.primary.identifier,
                    "class": entity.primary.class_name},
        "satellites": [{"id": satellite.identifier,
                        "class": satellite.class_name}
                       for satellite in entity.satellites],
        "links": [{"from": individual.identifier, "property": name,
                   "to": target.identifier}
                  for individual in individuals
                  for name, targets in sorted(individual.links.items())
                  for target in targets],
        "record_index": entity.record_index,
    }


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------


def load_store(store, directory: str) -> int:
    """Warm-restart ``store`` from ``directory``.

    Replaces the store's current contents; returns the number of
    materializations loaded.  Entity values are rebuilt from the
    snapshot graph's literals, entity structure (satellites, links,
    record indexes) from the manifest.

    A manifest that exists but does not parse (torn write from a crashed
    saver) is quarantined under ``manifest.json.corrupt`` and the load
    degrades to a cold start (returns 0) instead of raising — recovery
    paths must survive damaged persistence.  A *missing* manifest is
    still an error: the caller pointed at the wrong directory."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise S2SError(f"cannot load store manifest {manifest_path}: "
                       f"{exc}") from exc
    except json.JSONDecodeError as exc:
        corrupt_path = manifest_path + ".corrupt"
        if os.path.exists(corrupt_path):
            os.unlink(corrupt_path)
        os.rename(manifest_path, corrupt_path)
        logger.warning(
            "corrupt store manifest %s (%s): quarantined to %s, "
            "starting cold", manifest_path, exc,
            os.path.basename(corrupt_path))
        if store.metrics is not None:
            store.metrics.counter(
                "ingest_journal_corrupt_total",
                "Corrupt persistence files quarantined during recovery"
            ).inc(kind="manifest")
        store.reset()
        return 0
    if manifest.get("version") != MANIFEST_VERSION:
        raise S2SError(f"unsupported store manifest version "
                       f"{manifest.get('version')!r}")
    format = manifest.get("format", "turtle")
    if format not in SNAPSHOT_FORMATS:
        raise S2SError(f"unknown snapshot format {format!r} in manifest")
    snapshot_name, _serializer, parser = SNAPSHOT_FORMATS[format]
    snapshot_path = os.path.join(directory, snapshot_name)
    try:
        with open(snapshot_path, encoding="utf-8") as handle:
            snapshot = parser(handle.read())
    except OSError as exc:
        raise S2SError(f"cannot load store snapshot {snapshot_path}: "
                       f"{exc}") from exc

    from .store import Materialization, SourceSlice

    store.reset(generation=int(manifest.get("generation", 0)))
    loaded = 0
    for mat_dict in manifest.get("materializations", []):
        mat = Materialization(
            class_name=mat_dict["class"],
            attribute_ids=frozenset(mat_dict["attributes"]),
            required=[AttributePath.parse(attribute)
                      for attribute in mat_dict["attributes"]],
            materialized_at=store.clock.monotonic(),
            generation=store.generation)
        mat.errors = [ErrorEntry(entry["phase"], entry["message"],
                                 entry.get("source_id"),
                                 entry.get("attribute_id"))
                      for entry in mat_dict.get("errors", [])]
        for slice_dict in mat_dict.get("slices", []):
            source_id = slice_dict["source"]
            entities = [
                _entity_from_dict(store, snapshot, entity_dict, source_id)
                for entity_dict in slice_dict.get("entities", [])]
            mat.slices[source_id] = SourceSlice(
                source_id, entities, slice_dict.get("fingerprint"),
                bool(slice_dict.get("stale", False)))
        store.adopt(mat)
        loaded += 1
    return loaded


def _entity_from_dict(store, snapshot, entity_dict: dict,
                      source_id: str) -> AssembledEntity:
    individuals: dict[str, Individual] = {}

    def rebuild(spec: dict) -> Individual:
        individual = Individual(spec["id"], spec["class"],
                                _values_from_graph(store, snapshot,
                                                   spec["id"]))
        individuals[spec["id"]] = individual
        return individual

    primary = rebuild(entity_dict["primary"])
    satellites = [rebuild(spec)
                  for spec in entity_dict.get("satellites", [])]
    for link in entity_dict.get("links", []):
        origin = individuals.get(link["from"])
        target = individuals.get(link["to"])
        if origin is None or target is None:
            raise S2SError(
                f"store manifest link references unknown individual: "
                f"{link['from']} -[{link['property']}]-> {link['to']}")
        origin.link(link["property"], target)
    return AssembledEntity(primary, satellites, source_id,
                           int(entity_dict.get("record_index", 0)))


def _values_from_graph(store, snapshot, identifier: str) -> dict:
    """Rebuild one individual's value map from the snapshot graph."""
    subject = store.namespace[identifier]
    values: dict[str, object] = {}
    for triple in snapshot.triples(subject, None, None):
        if triple.predicate == RDF.type:
            continue
        if not triple.predicate.value.startswith(store.namespace.base):
            continue  # provenance vocabulary
        if isinstance(triple.object, Literal):
            values[triple.predicate.local_name] = triple.object.to_python()
    return values
