"""The materialized semantic store — the serving layer over the pipeline.

The paper's end product is "semantic knowledge": OWL instances compiled
by the Instance Generator.  The :class:`SemanticStore` materializes those
instances ahead of query time, so repeat queries are answered from the
store instead of re-extracting every source (the standard move in
ontology-based integration systems; see docs/store.md).

Design points:

* **Unmerged, per-source storage.**  A materialization keeps one
  :class:`SourceSlice` per data source holding that source's assembled
  entities *before* any ``merge_key`` deduplication.  Per-source
  generation is deterministic and independent, so concatenating the
  slices in sorted-source order and applying the Instance Generator's
  merge at serve time reproduces a live query's answer exactly — for
  any merge key, not just the one used when the store was filled.

* **Pristine copies.**  Entities are cloned on the way in (``fold`` /
  ``upsert``) and on the way out (``serve``), because downstream merge
  and condition filtering mutate entities in place.

* **A queryable RDF graph.**  Every stored entity's triples live in
  ``self.graph`` (plus per-entity provenance: source, record index,
  entity class under the ``store:`` vocabulary), kept coherent through
  per-triple reference counts — identifiers are shared between
  materializations, so a subject's triples are only removed when its
  last owner releases them.  ``S2SMiddleware.sparql`` runs against this
  graph.

* **Generation coherence.**  ``bump_generation()`` mirrors
  :meth:`~repro.core.extractor.cache.FragmentCache.bump_generation`:
  a mapping reload drops every materialization, so a stale post-reload
  store is never served.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ...clock import Clock, SystemClock
from ...errors import S2SError
from ...ids import AttributePath
from ...obs import NULL_SPAN, MetricsRegistry
from ...rdf.graph import Graph
from ...rdf.namespace import RDF, Namespace
from ...rdf.ntriples import serialize_ntriples
from ...rdf.terms import Literal, Triple, python_to_literal
from ...rdf.turtle import serialize_turtle
from ..instances.assembly import AssembledEntity
from ..instances.errors import ErrorEntry, ErrorReport
from .refresh import RefreshPolicy

#: Provenance vocabulary for stored entities.
STORE = Namespace("http://example.org/s2s/store#")

#: Default namespace entity triples are minted in (the demo ontology's).
DEFAULT_ENTITY_NAMESPACE = "http://example.org/s2s/ontology#"

#: A materialization's identity: (query class, required attribute ids).
StoreKey = tuple[str, frozenset[str]]


@dataclass
class SourceSlice:
    """One source's stored (unmerged) entities for one materialization.

    ``fingerprint`` is the source's content hash at extraction time
    (None = unfingerprintable, treated as changed on refresh); ``stale``
    marks last-known-good data kept after the source started failing."""

    source_id: str
    entities: list[AssembledEntity] = field(default_factory=list)
    fingerprint: str | None = None
    stale: bool = False


@dataclass
class Materialization:
    """Everything stored for one (query class, attribute set)."""

    class_name: str
    attribute_ids: frozenset[str]
    required: list[AttributePath]
    slices: dict[str, SourceSlice] = field(default_factory=dict)
    errors: list[ErrorEntry] = field(default_factory=list)
    materialized_at: float = 0.0
    generation: int = 0
    expired: bool = False

    @property
    def key(self) -> StoreKey:
        return (self.class_name, self.attribute_ids)

    def entity_count(self) -> int:
        """Total stored entities across all slices."""
        return sum(len(slice_.entities) for slice_ in self.slices.values())

    def stale_sources(self) -> list[str]:
        """Sources currently serving last-known-good data, sorted."""
        return sorted(source_id for source_id, slice_ in self.slices.items()
                      if slice_.stale)


@dataclass
class StoreServing:
    """What :meth:`SemanticStore.serve` hands the query executor."""

    entities: list[AssembledEntity]
    errors: ErrorReport
    stale: bool = False
    stale_sources: list[str] = field(default_factory=list)


class SemanticStore:
    """Materialized, incrementally-refreshed instance store.

    Thread-safe: the query scheduler's workers may serve, fold and
    refresh concurrently."""

    def __init__(self, *, policy: RefreshPolicy | None = None,
                 clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None,
                 namespace: str = DEFAULT_ENTITY_NAMESPACE) -> None:
        self.policy = policy or RefreshPolicy()
        self.clock = clock or SystemClock()
        self.metrics = metrics
        self.namespace = Namespace(namespace)
        self.graph = Graph()
        self.graph.namespace_manager.bind("s2s", self.namespace)
        self.graph.namespace_manager.bind("store", STORE)
        self.generation = 0
        self._materializations: dict[StoreKey, Materialization] = {}
        self._triple_refs: dict[Triple, int] = {}
        self._refreshing: set[StoreKey] = set()
        self._lock = threading.RLock()

    # -- identity ------------------------------------------------------

    @staticmethod
    def key_for(plan) -> StoreKey:
        """The store key of one query plan: (class, attribute-id set).

        Keying on the *attribute set* (not just the class) keeps two
        queries with different required attributes — e.g. one whose
        condition pulls in an attribute outside the class closure —
        from serving each other's materializations."""
        return (plan.class_name,
                frozenset(str(path) for path in plan.required_attributes))

    def lookup(self, plan) -> Materialization | None:
        """The materialization answering ``plan``, fresh or not."""
        with self._lock:
            return self._materializations.get(self.key_for(plan))

    def materialization(self, key: StoreKey) -> Materialization | None:
        """The materialization stored under ``key``, or None."""
        with self._lock:
            return self._materializations.get(key)

    def ensure(self, class_name: str,
               required: list[AttributePath]) -> Materialization:
        """Get-or-create the materialization for one attribute set.

        A newly created materialization starts *expired*: the ingest
        pipeline fills it slice by slice, and a half-ingested answer
        must not be served as fresh — :meth:`touch` lifts the expiry
        once a run completes."""
        key: StoreKey = (class_name,
                         frozenset(str(path) for path in required))
        with self._lock:
            mat = self._materializations.get(key)
            if mat is None:
                mat = Materialization(
                    class_name, key[1], list(required),
                    materialized_at=self.clock.monotonic(),
                    generation=self.generation, expired=True)
                self._materializations[key] = mat
            return mat

    def materializations(self) -> list[Materialization]:
        """All current materializations (stable order by key)."""
        with self._lock:
            return [self._materializations[key]
                    for key in sorted(self._materializations,
                                      key=lambda k: (k[0], sorted(k[1])))]

    def __len__(self) -> int:
        with self._lock:
            return len(self._materializations)

    # -- refresh bookkeeping -------------------------------------------

    def begin_refresh(self, key: StoreKey) -> None:
        """Mark a refresh in flight (stale serving may continue)."""
        with self._lock:
            self._refreshing.add(key)

    def end_refresh(self, key: StoreKey) -> None:
        """Clear the in-flight mark."""
        with self._lock:
            self._refreshing.discard(key)

    def refreshing(self, key: StoreKey) -> bool:
        """Whether a refresh of ``key`` is currently in flight."""
        with self._lock:
            return key in self._refreshing

    # -- serving -------------------------------------------------------

    def _stale(self, mat: Materialization) -> bool:
        age = self.clock.monotonic() - mat.materialized_at
        return mat.expired or self.policy.is_stale(age)

    def servable(self, plan) -> bool:
        """Whether :meth:`serve` would answer ``plan`` right now
        (without the cloning cost and without touching metrics)."""
        with self._lock:
            mat = self._materializations.get(self.key_for(plan))
            if mat is None:
                return False
            if not self._stale(mat):
                return True
            return (self.refreshing(mat.key)
                    and self.policy.serve_stale_while_refreshing)

    def serve(self, plan, *, span=NULL_SPAN) -> StoreServing | None:
        """Answer ``plan`` from the store, or None to fall through live.

        A fresh materialization is always served.  A stale one is served
        only while a refresh is in flight (and the policy allows it) —
        otherwise the caller runs live extraction, whose fold replaces
        the stale snapshot."""
        with self._lock:
            mat = self._materializations.get(self.key_for(plan))
            if mat is None:
                span.annotate(store="miss")
                self._count("store_misses_total",
                            "queries the store could not answer",
                            reason="unmaterialized")
                return None
            ttl_stale = self._stale(mat)
            if ttl_stale and not (self.refreshing(mat.key)
                                  and self.policy.serve_stale_while_refreshing):
                span.annotate(store="stale")
                self._count("store_misses_total",
                            "queries the store could not answer",
                            reason="stale")
                return None
            entities: list[AssembledEntity] = []
            for source_id in sorted(mat.slices):
                entities.extend(entity.clone()
                                for entity in mat.slices[source_id].entities)
            stale_sources = mat.stale_sources()
            stale = ttl_stale or bool(stale_sources)
            span.annotate(store="hit", entities=len(entities), stale=stale)
            self._count("store_hits_total",
                        "queries answered from the semantic store")
            if stale:
                self._count("stale_served_total",
                            "queries answered with stale store data")
            return StoreServing(entities, ErrorReport(list(mat.errors)),
                                stale, stale_sources)

    # -- filling -------------------------------------------------------

    def fold(self, plan, outcome, generation, sources,
             *, span=NULL_SPAN) -> int:
        """Write-through from a live query: materialize its (unmerged)
        generation result.  Returns the number of source slices stored.

        Degraded outcomes (extraction problems) are *not* folded — the
        store only materializes complete answers; per-source failure
        handling with last-known-good data is the delta refresher's
        job.  ``sources`` is the data-source repository, used to stamp
        each slice with its content fingerprint."""
        if outcome.problems:
            span.annotate(store="fold-skipped",
                          problems=len(outcome.problems))
            return 0
        by_source: dict[str, list[AssembledEntity]] = {}
        for entity in generation.entities:
            by_source.setdefault(entity.source_id, []).append(entity)
        with self._lock:
            key = self.key_for(plan)
            old = self._materializations.pop(key, None)
            if old is not None:
                self._release_materialization(old)
            mat = Materialization(
                plan.class_name, key[1], list(plan.required_attributes),
                errors=list(generation.errors.entries),
                materialized_at=self.clock.monotonic(),
                generation=self.generation)
            # Every attempted source gets a slice — an extracted-empty
            # source is knowledge too ("no records" served from the
            # store instead of re-asking).
            for source_id in sorted(outcome.per_source_seconds):
                clones = [entity.clone()
                          for entity in by_source.get(source_id, [])]
                slice_ = SourceSlice(source_id, clones,
                                     self._fingerprint(sources, source_id))
                mat.slices[source_id] = slice_
                for entity in clones:
                    self._add_entity(mat.class_name, entity)
            self._materializations[key] = mat
            span.annotate(store="fold", sources=len(mat.slices),
                          entities=mat.entity_count())
            self._count("store_folds_total",
                        "live query results folded into the store")
            return len(mat.slices)

    def _fingerprint(self, sources, source_id: str) -> str | None:
        from .snapshot import fingerprint_source
        try:
            source = sources.get(source_id)
        except S2SError:
            return None
        return fingerprint_source(source)

    # -- incremental maintenance ---------------------------------------

    def _require(self, key: StoreKey) -> Materialization:
        mat = self._materializations.get(key)
        if mat is None:
            raise S2SError(f"no materialization for {key[0]!r} with "
                           f"{len(key[1])} attributes")
        return mat

    def upsert(self, key: StoreKey, source_id: str,
               entities: list[AssembledEntity], *,
               fingerprint: str | None = None,
               merge_key: list[str] | None = None,
               stale: bool = False) -> int:
        """Replace-or-merge one source's slice; returns entities stored.

        With ``merge_key=None`` (the delta refresher's mode) the whole
        slice is replaced — records that disappeared from the source are
        tombstoned implicitly.  With a merge key, incoming entities
        whose key values match a stored entity replace it in place and
        the rest append, leaving unmatched stored records alone."""
        with self._lock:
            mat = self._require(key)
            slice_ = mat.slices.get(source_id)
            clones = [entity.clone() for entity in entities]
            if slice_ is None or merge_key is None:
                if slice_ is not None:
                    self._release_slice(mat.class_name, slice_)
                mat.slices[source_id] = SourceSlice(source_id, clones,
                                                    fingerprint, stale)
                for entity in clones:
                    self._add_entity(mat.class_name, entity)
                return len(clones)

            def key_of(entity: AssembledEntity) -> tuple:
                return tuple(entity.value(attribute)
                             for attribute in merge_key)

            positions = {key_of(entity): index
                         for index, entity in enumerate(slice_.entities)}
            for clone in clones:
                values = key_of(clone)
                position = (positions.get(values)
                            if None not in values else None)
                if position is not None:
                    self._release_entity(mat.class_name,
                                         slice_.entities[position])
                    slice_.entities[position] = clone
                else:
                    positions[values] = len(slice_.entities)
                    slice_.entities.append(clone)
                self._add_entity(mat.class_name, clone)
            slice_.fingerprint = fingerprint
            slice_.stale = stale
            return len(clones)

    def tombstone(self, key: StoreKey, source_id: str) -> int:
        """Delete one source's slice (entities, triples, error entries);
        returns the number of entities removed."""
        with self._lock:
            mat = self._require(key)
            slice_ = mat.slices.pop(source_id, None)
            if slice_ is None:
                return 0
            self._release_slice(mat.class_name, slice_)
            mat.errors = [entry for entry in mat.errors
                          if entry.source_id != source_id]
            return len(slice_.entities)

    def mark_slice_stale(self, key: StoreKey, source_id: str,
                         stale: bool = True) -> None:
        """Flag one source's slice as last-known-good (or clear it)."""
        with self._lock:
            mat = self._require(key)
            slice_ = mat.slices.get(source_id)
            if slice_ is not None:
                slice_.stale = stale

    def touch(self, key: StoreKey) -> None:
        """Re-stamp a materialization as fresh (after a refresh)."""
        with self._lock:
            mat = self._require(key)
            mat.materialized_at = self.clock.monotonic()
            mat.expired = False

    def replace_errors(self, key: StoreKey, entries: list[ErrorEntry],
                       *, for_sources: list[str]) -> None:
        """Swap the error entries belonging to the refreshed sources
        (and the source-less global entries) for the new generation's."""
        with self._lock:
            mat = self._require(key)
            targeted = set(for_sources)
            kept = [entry for entry in mat.errors
                    if entry.source_id is not None
                    and entry.source_id not in targeted]
            fresh = [entry for entry in entries
                     if entry.source_id is None
                     or entry.source_id in targeted]
            mat.errors = kept + fresh

    # -- invalidation --------------------------------------------------

    def mark_stale(self, source_id: str | None = None) -> int:
        """Force-expire materializations so the next query goes live.

        ``source_id`` limits the expiry to materializations holding that
        source (the ``invalidate_cache`` integration: the caller knows
        that source's data changed); None expires everything.  Returns
        the number of materializations expired."""
        with self._lock:
            expired = 0
            for mat in self._materializations.values():
                if source_id is None or source_id in mat.slices:
                    mat.expired = True
                    expired += 1
            return expired

    def bump_generation(self) -> int:
        """Mapping-reload coherence, mirroring FragmentCache: drop every
        materialization and start a new generation, so instances built
        against the old mapping are never served after a reload."""
        with self._lock:
            for mat in self._materializations.values():
                self._release_materialization(mat)
            self._materializations.clear()
            self._refreshing.clear()
            self.graph.clear()
            self._triple_refs.clear()
            self.generation += 1
            return self.generation

    def reset(self, *, generation: int = 0) -> None:
        """Drop everything and set an explicit generation (warm load)."""
        with self._lock:
            self.bump_generation()
            self.generation = generation

    def adopt(self, mat: Materialization) -> None:
        """Install a fully-built materialization (the warm-load path),
        indexing its entities into the graph."""
        with self._lock:
            old = self._materializations.pop(mat.key, None)
            if old is not None:
                self._release_materialization(old)
            mat.generation = self.generation
            self._materializations[mat.key] = mat
            for slice_ in mat.slices.values():
                for entity in slice_.entities:
                    self._add_entity(mat.class_name, entity)

    # -- provenance / introspection ------------------------------------

    def entities_for_source(self, source_id: str) -> list[AssembledEntity]:
        """Clones of every stored entity extracted from one source."""
        with self._lock:
            found: list[AssembledEntity] = []
            for mat in self._materializations.values():
                slice_ = mat.slices.get(source_id)
                if slice_ is not None:
                    found.extend(entity.clone()
                                 for entity in slice_.entities)
            return found

    def status(self) -> list[dict]:
        """One summary dict per materialization (for CLI / monitoring)."""
        with self._lock:
            now = self.clock.monotonic()
            rows = []
            for mat in self.materializations():
                age = now - mat.materialized_at
                rows.append({
                    "class": mat.class_name,
                    "attributes": len(mat.attribute_ids),
                    "sources": sorted(mat.slices),
                    "entities": mat.entity_count(),
                    "age_seconds": max(age, 0.0),
                    "fresh": not self._stale(mat),
                    "refreshing": mat.key in self._refreshing,
                    "stale_sources": mat.stale_sources(),
                    "generation": mat.generation,
                })
            return rows

    def export(self, format: str = "turtle") -> str:
        """Serialize the store graph (``turtle`` or ``ntriples``)."""
        with self._lock:
            if format == "turtle":
                return serialize_turtle(self.graph)
            if format == "ntriples":
                return serialize_ntriples(self.graph)
            raise S2SError(f"unknown store export format {format!r}; "
                           f"expected 'turtle' or 'ntriples'")

    def save(self, directory: str, *, format: str = "turtle") -> str:
        """Persist to ``directory``; see :func:`snapshot.save_store`."""
        from .snapshot import save_store
        with self._lock:
            return save_store(self, directory, format=format)

    def load(self, directory: str) -> int:
        """Warm-restart from ``directory``; see :func:`snapshot.load_store`."""
        from .snapshot import load_store
        with self._lock:
            return load_store(self, directory)

    # -- graph maintenance ---------------------------------------------

    def _entity_triples(self, class_name: str, entity: AssembledEntity):
        for individual in entity.all_individuals():
            subject = self.namespace[individual.identifier]
            yield Triple(subject, RDF.type,
                         self.namespace[individual.class_name])
            for name, value in individual.values.items():
                items = value if isinstance(value, list) else [value]
                for item in items:
                    yield Triple(subject, self.namespace[name],
                                 python_to_literal(item))
            for name, targets in individual.links.items():
                for target in targets:
                    yield Triple(subject, self.namespace[name],
                                 self.namespace[target.identifier])
        primary = self.namespace[entity.primary.identifier]
        yield Triple(primary, STORE.source, Literal(entity.source_id))
        yield Triple(primary, STORE.recordIndex,
                     python_to_literal(entity.record_index))
        yield Triple(primary, STORE.entityClass, Literal(class_name))

    def _add_entity(self, class_name: str, entity: AssembledEntity) -> None:
        for triple in self._entity_triples(class_name, entity):
            self._triple_refs[triple] = self._triple_refs.get(triple, 0) + 1
            self.graph.add_triple(triple)

    def _release_entity(self, class_name: str,
                        entity: AssembledEntity) -> None:
        for triple in self._entity_triples(class_name, entity):
            count = self._triple_refs.get(triple, 0) - 1
            if count <= 0:
                self._triple_refs.pop(triple, None)
                self.graph.remove(triple.subject, triple.predicate,
                                  triple.object)
            else:
                self._triple_refs[triple] = count

    def _release_slice(self, class_name: str, slice_: SourceSlice) -> None:
        for entity in slice_.entities:
            self._release_entity(class_name, entity)

    def _release_materialization(self, mat: Materialization) -> None:
        for slice_ in mat.slices.values():
            self._release_slice(mat.class_name, slice_)

    # -- metrics -------------------------------------------------------

    def _count(self, name: str, help_text: str, **labels) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, help_text).inc(**labels)

    def __repr__(self) -> str:
        with self._lock:
            return (f"SemanticStore(materializations="
                    f"{len(self._materializations)}, "
                    f"triples={len(self.graph)}, "
                    f"generation={self.generation})")
