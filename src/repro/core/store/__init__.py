"""The materialized semantic store subsystem.

Materializes the Instance Generator's OWL instances ahead of query
time, serves repeat queries from the materialization, and refreshes
incrementally by re-extracting only the sources whose content
fingerprints changed.  See docs/store.md.
"""

from .delta import DeltaPlan, DeltaRefresher, RefreshResult
from .refresh import RefreshPolicy, StoreRefresher
from .snapshot import fingerprint_source, load_store, save_store
from .store import (STORE, Materialization, SemanticStore, SourceSlice,
                    StoreServing)

__all__ = [
    "STORE",
    "DeltaPlan",
    "DeltaRefresher",
    "Materialization",
    "RefreshPolicy",
    "RefreshResult",
    "SemanticStore",
    "SourceSlice",
    "StoreRefresher",
    "StoreServing",
    "fingerprint_source",
    "load_store",
    "save_store",
]
