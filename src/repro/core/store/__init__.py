"""The materialized semantic store subsystem.

Materializes the Instance Generator's OWL instances ahead of query
time, serves repeat queries from the materialization, and refreshes
incrementally by re-extracting only the sources whose content
fingerprints changed.  See docs/store.md.
"""

import warnings

from .delta import DeltaPlan, DeltaRefresher, RefreshResult
from .refresh import StoreRefresher
from .snapshot import fingerprint_source, load_store, save_store
from .store import (STORE, Materialization, SemanticStore, SourceSlice,
                    StoreServing)


def __getattr__(name: str):
    # RefreshPolicy is now canonically exported by repro.config; the
    # historical spelling keeps working through this warning shim.
    if name == "RefreshPolicy":
        warnings.warn(
            "importing RefreshPolicy from repro.core.store is deprecated; "
            "use repro.config (or the top-level repro namespace) instead",
            DeprecationWarning, stacklevel=2)
        from .refresh import RefreshPolicy
        return RefreshPolicy
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "STORE",
    "DeltaPlan",
    "DeltaRefresher",
    "Materialization",
    "RefreshPolicy",
    "RefreshResult",
    "SemanticStore",
    "SourceSlice",
    "StoreRefresher",
    "StoreServing",
    "fingerprint_source",
    "load_store",
    "save_store",
]
