"""Change-aware incremental refresh: re-extract only what changed.

A full refresh of a materialization would re-run extraction against
every source — exactly the cost the store exists to avoid.  The
:class:`DeltaRefresher` instead:

1. takes the current extraction schema for the materialization's
   required attributes (sources may have been added or removed since
   the last refresh — removed sources are tombstoned, new ones are
   always extracted);
2. skips sources whose circuit breaker is open, keeping their
   last-known-good slice marked stale (graceful degradation) instead
   of failing the refresh;
3. compares each remaining source's current content fingerprint
   (:func:`~repro.core.store.snapshot.fingerprint_source`) against the
   one stored at materialization time — matching fingerprints mean the
   source is *unchanged* and is not touched at all;
4. extracts only the changed sources, through a filtered
   :class:`~repro.core.extractor.schema.ExtractionSchema` handed to the
   Extractor Manager (so retries, breakers, deadlines and failover all
   still apply), regenerates their instances, and folds the delta into
   the store with per-source upserts — untouched sources' slices are
   left exactly as they were.

Per-source failures during the delta extraction degrade instead of
destroy: with ``keep_last_known_good`` (the default policy) the failing
source's previous slice stays servable, marked stale; with it disabled
the slice is tombstoned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ...errors import S2SError
from ...obs import NULL_SPAN, MetricsRegistry, Tracer
from ..extractor.manager import ExtractorManager
from ..extractor.schema import ExtractionSchema
from ..instances.assembly import AssembledEntity
from ..instances.generator import InstanceGenerator
from .snapshot import fingerprint_source
from .store import Materialization, SemanticStore


@dataclass
class RefreshResult:
    """What one materialization's refresh did, source by source."""

    class_name: str
    attribute_ids: frozenset[str]
    #: sources whose data was re-extracted and upserted
    refreshed: list[str] = field(default_factory=list)
    #: sources whose fingerprint matched — not touched at all
    unchanged: list[str] = field(default_factory=list)
    #: failing/breaker-open sources kept serving last-known-good data
    kept_stale: list[str] = field(default_factory=list)
    #: sources no longer in the mapping — slices tombstoned
    removed: list[str] = field(default_factory=list)
    #: sources the delta extraction actually visited (the E15 assertion
    #: target: a 1-changed-source refresh must list exactly that source)
    extracted_sources: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    trace: object | None = None

    @property
    def noop(self) -> bool:
        """True when nothing was extracted, kept stale or removed."""
        return not (self.refreshed or self.kept_stale or self.removed)

    def summary(self) -> str:
        return (f"{self.class_name}: {len(self.refreshed)} refreshed, "
                f"{len(self.unchanged)} unchanged, "
                f"{len(self.kept_stale)} kept stale, "
                f"{len(self.removed)} removed")


@dataclass
class DeltaPlan:
    """A read-only change diff for one materialization.

    What :meth:`DeltaRefresher.plan_changes` hands the ingest planner:
    which sources need an EXTRACT job and which can be skipped, decided
    entirely from cheap probes (:func:`fingerprint_source` rides
    ``content_fingerprint()`` → ``SimulatedWeb.peek``, so unchanged web
    sources are ruled out without a single counted fetch)."""

    changed: list[str] = field(default_factory=list)
    unchanged: list[str] = field(default_factory=list)
    kept_stale: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    fingerprints: dict[str, str | None] = field(default_factory=dict)


class DeltaRefresher:
    """Refreshes a :class:`SemanticStore` through the live pipeline."""

    def __init__(self, store: SemanticStore, manager: ExtractorManager,
                 generator: InstanceGenerator, *,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.store = store
        self.manager = manager
        self.generator = generator
        self.tracer = tracer
        self.metrics = metrics

    # -- public entry points -------------------------------------------

    def refresh(self, *, force: bool = False) -> list[RefreshResult]:
        """Refresh every materialization; returns one result each.

        ``force=True`` ignores fingerprints and re-extracts every
        reachable source (breaker-open sources are still skipped)."""
        return [self.refresh_one(mat, force=force)
                for mat in self.store.materializations()]

    def materialize(self, plan) -> RefreshResult:
        """Materialize one query plan (or force-refresh it if present).

        The first materialization must be complete: a degraded
        extraction outcome is not folded, and raises instead."""
        mat = self.store.lookup(plan)
        if mat is not None:
            return self.refresh_one(mat, force=True)
        started = time.perf_counter()
        root = (self.tracer.start("materialize", query_class=plan.class_name)
                if self.tracer is not None else NULL_SPAN)
        try:
            with root.child("extract") as span:
                outcome = self.manager.extract(
                    list(plan.required_attributes), span=span)
            with root.child("generate"):
                generation = self.generator.generate(outcome,
                                                     plan.class_name)
            with root.child("store") as span:
                stored = self.store.fold(plan, outcome, generation,
                                         self.manager.sources, span=span)
            if stored == 0:
                problems = "; ".join(str(p) for p in outcome.problems[:3])
                raise S2SError(
                    f"cannot materialize {plan.class_name!r}: extraction "
                    f"was degraded ({problems})")
        finally:
            root.finish()
        result = RefreshResult(
            plan.class_name, self.store.key_for(plan)[1],
            refreshed=sorted(outcome.per_source_seconds),
            extracted_sources=sorted(outcome.per_source_seconds),
            elapsed_seconds=time.perf_counter() - started,
            trace=(self.tracer.trace_of(root)
                   if self.tracer is not None else None))
        self._observe(result)
        return result

    def plan_changes(self, mat: Materialization, *,
                     force: bool = False) -> DeltaPlan:
        """Cheap-probe diff of one materialization, with no side effects.

        The same verdict logic :meth:`refresh_one` applies inline, but
        read-only: nothing is tombstoned, marked stale or extracted.
        The ingest pipeline plans its EXTRACT jobs from this, so an
        unchanged web source never even enqueues work."""
        plan = DeltaPlan()
        schema = self.manager.obtain_extraction_schema(mat.required)
        current_sources = set(schema.by_source)
        plan.removed = sorted(set(mat.slices) - current_sources)
        open_sources = (set(self.manager.breakers.open_sources())
                        if self.manager.breakers is not None else set())
        for source_id in sorted(current_sources):
            slice_ = mat.slices.get(source_id)
            if source_id in open_sources and slice_ is not None:
                plan.kept_stale.append(source_id)
                continue
            fingerprint = self._fingerprint(source_id)
            plan.fingerprints[source_id] = fingerprint
            if (not force and slice_ is not None and not slice_.stale
                    and fingerprint is not None
                    and fingerprint == slice_.fingerprint):
                plan.unchanged.append(source_id)
                continue
            plan.changed.append(source_id)
        return plan

    # -- the delta algorithm -------------------------------------------

    def refresh_one(self, mat: Materialization, *,
                    force: bool = False) -> RefreshResult:
        """Refresh one materialization, re-extracting only its changed
        sources (all reachable ones when ``force``)."""
        started = time.perf_counter()
        result = RefreshResult(mat.class_name, mat.attribute_ids)
        root = (self.tracer.start("refresh", query_class=mat.class_name,
                                  force=force)
                if self.tracer is not None else NULL_SPAN)
        key = mat.key
        self.store.begin_refresh(key)
        try:
            self._refresh_under(mat, key, force, result, root)
        finally:
            self.store.end_refresh(key)
            root.finish()
        result.elapsed_seconds = time.perf_counter() - started
        result.trace = (self.tracer.trace_of(root)
                        if self.tracer is not None else None)
        self._observe(result)
        return result

    def _refresh_under(self, mat: Materialization, key, force: bool,
                       result: RefreshResult, root) -> None:
        schema = self.manager.obtain_extraction_schema(mat.required)
        current_sources = set(schema.by_source)

        # Sources that left the mapping: their data is gone for good.
        for source_id in sorted(set(mat.slices) - current_sources):
            self.store.tombstone(key, source_id)
            result.removed.append(source_id)

        open_sources = (set(self.manager.breakers.open_sources())
                        if self.manager.breakers is not None else set())
        fingerprints: dict[str, str | None] = {}
        changed: list[str] = []
        with root.child("diff", sources=len(current_sources)) as diff_span:
            for source_id in sorted(current_sources):
                slice_ = mat.slices.get(source_id)
                if source_id in open_sources and slice_ is not None:
                    # Breaker open: don't even knock — keep serving the
                    # last-known-good slice, marked stale.
                    self.store.mark_slice_stale(key, source_id)
                    result.kept_stale.append(source_id)
                    diff_span.child("source", source=source_id,
                                    verdict="breaker-open").finish()
                    continue
                fingerprint = self._fingerprint(source_id)
                fingerprints[source_id] = fingerprint
                if (not force and slice_ is not None and not slice_.stale
                        and fingerprint is not None
                        and fingerprint == slice_.fingerprint):
                    result.unchanged.append(source_id)
                    diff_span.child("source", source=source_id,
                                    verdict="unchanged").finish()
                    continue
                changed.append(source_id)
                diff_span.child("source", source=source_id,
                                verdict="changed").finish()
            diff_span.annotate(changed=len(changed),
                               unchanged=len(result.unchanged),
                               kept_stale=len(result.kept_stale))

        if changed:
            self._extract_delta(mat, key, schema, changed, fingerprints,
                                result, root)
        self.store.touch(key)

    def _extract_delta(self, mat: Materialization, key,
                       schema: ExtractionSchema, changed: list[str],
                       fingerprints: dict[str, str | None],
                       result: RefreshResult, root) -> None:
        """Extract only ``changed`` sources and upsert their slices."""
        changed_set = set(changed)
        delta_schema = ExtractionSchema(
            requested=list(schema.requested),
            by_source={source_id: entries
                       for source_id, entries in schema.by_source.items()
                       if source_id in changed_set},
            missing=list(schema.missing),
            replicas={replica_key: entries
                      for replica_key, entries in schema.replicas.items()
                      if replica_key[1] in changed_set})
        with root.child("extract", sources=len(changed)) as span:
            outcome = self.manager.extract(list(mat.required), span=span,
                                           schema=delta_schema)
        result.extracted_sources = sorted(outcome.per_source_seconds)
        with root.child("generate"):
            generation = self.generator.generate(outcome, mat.class_name)

        by_source: dict[str, list[AssembledEntity]] = {}
        for entity in generation.entities:
            by_source.setdefault(entity.source_id, []).append(entity)
        failed = {problem.source_id for problem in outcome.problems}

        with root.child("store") as span:
            for source_id in changed:
                if source_id in failed and source_id not in by_source:
                    # Total failure of this source's delta extraction.
                    if (self.store.policy.keep_last_known_good
                            and source_id in mat.slices):
                        self.store.mark_slice_stale(key, source_id)
                        result.kept_stale.append(source_id)
                    else:
                        self.store.tombstone(key, source_id)
                        result.removed.append(source_id)
                    continue
                if source_id in failed:
                    # Partial answer: store it but flag the slice.
                    self.store.upsert(key, source_id,
                                      by_source.get(source_id, []),
                                      fingerprint=None, stale=True)
                    result.kept_stale.append(source_id)
                    continue
                self.store.upsert(key, source_id,
                                  by_source.get(source_id, []),
                                  fingerprint=fingerprints.get(source_id))
                result.refreshed.append(source_id)
            span.annotate(store="upsert", refreshed=len(result.refreshed))
        upserted = [source_id for source_id in changed
                    if source_id not in failed or source_id in by_source]
        self.store.replace_errors(key, list(generation.errors.entries),
                                  for_sources=upserted)

    # -- helpers -------------------------------------------------------

    def _fingerprint(self, source_id: str) -> str | None:
        try:
            source = self.manager.sources.get(source_id)
        except S2SError:
            return None
        return fingerprint_source(source)

    def _observe(self, result: RefreshResult) -> None:
        if self.metrics is None:
            return
        self.metrics.histogram(
            "store_refresh_seconds",
            "wall-clock time of one materialization refresh").observe(
                result.elapsed_seconds)
        self.metrics.counter(
            "store_refreshes_total",
            "materialization refresh runs").inc()
        if result.kept_stale:
            self.metrics.counter(
                "store_kept_stale_total",
                "sources kept serving last-known-good data").inc(
                    len(result.kept_stale))
