"""The resilience layer: retries, breakers, deadlines, failover, health.

B2B integration mediates data living on *other organizations'*
infrastructure, where transient failures, slow responses and outages are
the norm.  This package gives the Extractor Manager the machinery to
degrade gracefully instead of amplifying downstream flakiness:

* :class:`RetryPolicy` / :class:`RetryBudget` — exponential backoff with
  full jitter and a per-extraction retry budget;
* :class:`CircuitBreaker` / :class:`BreakerPolicy` — per-source
  closed → open → half-open gates that fail fast on down sources;
* :class:`Deadline` — a wall-clock budget threaded through serial and
  parallel extraction;
* :class:`SourceHealth` / :class:`SourceHealthRegistry` — the per-source
  ledger surfaced on ``ExtractionOutcome`` and ``QueryResult``;
* :class:`ResilienceConfig` — the single knob object replacing the old
  ``retries``/``retry_delay``/``parallel``/``max_workers`` kwargs;
* :class:`ConcurrencyConfig` — the fan-out engine selector
  (``serial`` | ``thread`` | ``asyncio``) plus the thread-pool bound,
  carried on :class:`ResilienceConfig`.

See ``docs/resilience.md`` for the lifecycle diagrams and failover
semantics, and ``docs/async.md`` for the asyncio engine.
"""

import warnings

from ...clock import Clock, FakeClock, SystemClock
from .breaker import (CLOSED, HALF_OPEN, OPEN, BreakerPolicy, CircuitBreaker,
                      CircuitBreakerRegistry, TransitionListener)
from .config import (DEFAULT_WORKER_CAP, UNSET, coerce_concurrency,
                     legacy_kwargs_to_config)
from .deadline import Deadline
from .health import SourceHealth, SourceHealthRegistry
from .retry import RetryBudget, RetryPolicy

#: Config classes now canonically exported by :mod:`repro.config`; the
#: historical spelling keeps working through the warning shim below.
_MOVED_TO_CONFIG = ("ConcurrencyConfig", "ResilienceConfig")


def __getattr__(name: str):
    if name in _MOVED_TO_CONFIG:
        warnings.warn(
            f"importing {name} from repro.core.resilience is deprecated; "
            f"use repro.config (or the top-level repro namespace) instead",
            DeprecationWarning, stacklevel=2)
        from . import config
        return getattr(config, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BreakerPolicy", "CircuitBreaker", "CircuitBreakerRegistry",
    "CLOSED", "OPEN", "HALF_OPEN",
    "Clock", "FakeClock", "SystemClock",
    "ConcurrencyConfig", "DEFAULT_WORKER_CAP",
    "Deadline", "ResilienceConfig", "RetryBudget", "RetryPolicy",
    "SourceHealth", "SourceHealthRegistry",
    "TransitionListener",
    "UNSET", "coerce_concurrency", "legacy_kwargs_to_config",
]
