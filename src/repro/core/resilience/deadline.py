"""Wall-clock deadlines for extraction runs.

A federated query over other organizations' infrastructure must bound
its total latency: one slow source may not hold the answer hostage.  A
:class:`Deadline` is created once per ``extract()`` call and threaded
through both the serial and the parallel path; expired deadlines turn
remaining work into reported problems instead of hangs.
"""

from __future__ import annotations

import math

from ...clock import Clock, SystemClock
from ...errors import DeadlineExceededError


class Deadline:
    """A fixed point on a clock by which an extraction must finish."""

    def __init__(self, seconds: float | None,
                 clock: Clock | None = None) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError("deadline seconds must be >= 0 or None")
        self.clock = clock or SystemClock()
        self.seconds = seconds
        self._expires_at = (None if seconds is None
                            else self.clock.monotonic() + seconds)

    @classmethod
    def unlimited(cls, clock: Clock | None = None) -> "Deadline":
        """A deadline that never expires (the default)."""
        return cls(None, clock)

    @property
    def unbounded(self) -> bool:
        return self._expires_at is None

    def remaining(self) -> float:
        """Seconds left; ``inf`` when unbounded, never negative."""
        if self._expires_at is None:
            return math.inf
        return max(0.0, self._expires_at - self.clock.monotonic())

    @property
    def expired(self) -> bool:
        return self.remaining() == 0.0

    def check(self, context: str = "extraction") -> None:
        """Raise :class:`DeadlineExceededError` when already expired."""
        if self.expired:
            raise DeadlineExceededError(
                f"{context} exceeded its {self.seconds:.3f}s deadline")

    def clamp(self, seconds: float) -> float:
        """Cap an intended sleep so it never overshoots the deadline."""
        return min(seconds, self.remaining())
