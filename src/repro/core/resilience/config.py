"""One knob object for the whole resilience layer.

The seed's ``ExtractorManager``/``S2SMiddleware`` grew a kwarg per
behaviour (``retries``, ``retry_delay``, ``parallel``, ``max_workers``);
:class:`ResilienceConfig` replaces them with a single dataclass the
caller can build once and share.  The old kwargs survive as a deprecated
shim (see :func:`legacy_kwargs_to_config`) with their exact seed-era
semantics.

Fan-out shape is its own sub-config since the asyncio engine landed:
:class:`ConcurrencyConfig` names the engine (``serial`` | ``thread`` |
``asyncio``) and the thread pool bound in one frozen value, replacing
the scattered ``parallel=``/``max_workers=`` pair (which remain as
DeprecationWarning shims on :class:`ResilienceConfig` itself).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any

from ...clock import Clock, SystemClock
from .breaker import BreakerPolicy
from .retry import RetryPolicy

#: Sentinel distinguishing "not passed" from any real value.
UNSET: Any = object()

#: Fan-out engines ConcurrencyConfig.mode accepts.
CONCURRENCY_MODES = ("serial", "thread", "asyncio", "sharded")

#: Worker pool kinds the sharded engine accepts.
SHARDED_POOL_KINDS = ("thread", "spawn")

#: Default thread-pool cap when ``max_workers`` is left adaptive: the
#: pool is bounded by ``min(n_sources, DEFAULT_WORKER_CAP)``.
DEFAULT_WORKER_CAP = 16


@dataclass(frozen=True)
class FleetConfig:
    """Every knob of one sharded query fleet, in one frozen value.

    PR 9 scattered the fleet's shape across ``ConcurrencyConfig``
    fields (``workers``, ``pool``) and ``QueryShardCoordinator``
    kwargs (``heartbeat_timeout``, ``poll_seconds``,
    ``max_worker_restarts``); this dataclass gathers them, plus the
    interleaving scheduler's admission quotas:

    * ``n_workers`` / ``pool`` — fleet width and worker flavour
      (``"thread"`` shares process state and the injectable clock,
      ``"spawn"`` pickles the world across a real process boundary);
    * ``heartbeat_timeout`` — seconds of silence *while holding work*
      before a worker is declared dead;
    * ``max_worker_restarts`` — per-query restart budget per worker;
      a worker that exceeds it is abandoned and its in-flight item
      degrades into reported problems;
    * ``poll_seconds`` / ``real_poll_seconds`` — the dispatcher's idle
      beat on the injectable clock (drives FakeClock determinism) and
      the real-time block on the pool's event queue;
    * ``max_inflight_requests`` — fleet-wide admission cap on
      concurrently interleaved queries; ``None`` is unbounded.  An
      admission past the cap raises
      :class:`~repro.errors.FleetQuotaExceeded`, which the server
      answers with RETRY_AFTER pushback;
    * ``tenant_quota`` — per-tenant cap on in-flight *shard items*
      (running + queued).  A tenant at its quota is skipped by the
      fair-share dispatcher (its backlog waits; other tenants keep
      streaming) and further admissions for it are refused, so a
      greedy tenant can never starve the rest of a shared fleet.
      ``None`` disables the quota.

    Accepted by ``ConcurrencyConfig.sharded(fleet=...)`` and
    ``QueryShardCoordinator(fleet=...)``; importable from
    ``repro.config``.
    """

    n_workers: int = 2
    pool: str = "thread"
    heartbeat_timeout: float = 30.0
    max_worker_restarts: int = 3
    poll_seconds: float = 0.05
    real_poll_seconds: float = 0.02
    max_inflight_requests: int | None = None
    tenant_quota: int | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.pool not in SHARDED_POOL_KINDS:
            raise ValueError(
                f"pool must be one of {SHARDED_POOL_KINDS}, "
                f"not {self.pool!r}")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if self.poll_seconds <= 0 or self.real_poll_seconds <= 0:
            raise ValueError("poll intervals must be positive")
        if (self.max_inflight_requests is not None
                and self.max_inflight_requests < 1):
            raise ValueError(
                "max_inflight_requests must be >= 1 or None (unbounded)")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1 or None (disabled)")


@dataclass(frozen=True)
class ConcurrencyConfig:
    """How the Extractor Manager fans extraction out across sources.

    ``mode`` selects the engine:

    * ``"serial"`` — one source after another (the seed's default);
    * ``"thread"`` — a thread pool, one worker per source up to the
      worker bound;
    * ``"asyncio"`` — the async engine: every source is a task on one
      event loop, with no worker cap at all (sync connectors are run in
      worker threads via the auto-adapter);
    * ``"sharded"`` — the fleet engine: sources are partitioned by
      stable shard key across ``workers`` supervised workers (``pool``
      selects daemon threads or spawned subprocesses) and the partial
      outcomes are merged back into one (see docs/cluster.md).

    ``max_workers`` bounds the thread pool in ``"thread"`` mode:
    ``None`` means the adaptive default ``min(n_sources, 16)`` (which
    logs and counts a metric when it truncates the fan-out), ``0`` means
    explicitly unbounded (one worker per source, however many), and any
    positive value is an exact cap.  The asyncio engine ignores it.

    ``workers`` and ``pool`` belong to the sharded engine only: the
    fleet width and the worker flavour (``"thread"`` shares process
    state and the injectable clock; ``"spawn"`` pickles everything
    across a real process boundary).  The other engines ignore them.

    ``fleet`` carries the full :class:`FleetConfig` for the sharded
    engine — supervision timings and admission quotas included.  When
    set, ``workers`` and ``pool`` become read-only mirrors of it (the
    same discipline as :class:`ResilienceConfig`'s legacy mirrors, so
    ``dataclasses.replace`` round-trips stay consistent).
    """

    mode: str = "serial"
    max_workers: int | None = None
    workers: int = 2
    pool: str = "thread"
    fleet: FleetConfig | None = None

    def __post_init__(self) -> None:
        if self.mode not in CONCURRENCY_MODES:
            raise ValueError(
                f"concurrency mode must be one of {CONCURRENCY_MODES}, "
                f"not {self.mode!r}")
        if self.max_workers is not None and self.max_workers < 0:
            raise ValueError(
                "max_workers must be None (adaptive), 0 (unbounded) or "
                "positive")
        if self.fleet is not None:
            # The fleet config is the source of truth; the flat fields
            # become mirrors of it (replace() re-passes stale mirrors,
            # and they must never override the fleet).
            object.__setattr__(self, "workers", self.fleet.n_workers)
            object.__setattr__(self, "pool", self.fleet.pool)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.pool not in SHARDED_POOL_KINDS:
            raise ValueError(
                f"pool must be one of {SHARDED_POOL_KINDS}, "
                f"not {self.pool!r}")

    @classmethod
    def threads(cls, max_workers: int | None = None) -> "ConcurrencyConfig":
        """Thread-pool fan-out (the pre-asyncio ``parallel=True``)."""
        return cls(mode="thread", max_workers=max_workers)

    @classmethod
    def asyncio(cls) -> "ConcurrencyConfig":
        """Event-loop fan-out: unbounded, non-blocking per-source tasks."""
        return cls(mode="asyncio")

    @classmethod
    def sharded(cls, workers: int | None = None, *,
                pool: str | None = None,
                fleet: FleetConfig | None = None) -> "ConcurrencyConfig":
        """Fleet fan-out: sources sharded across supervised workers.

        ``sharded(4, pool="spawn")`` is sugar for the common case;
        pass ``fleet=FleetConfig(...)`` for the full knob set
        (supervision timings, admission quotas)."""
        if fleet is None:
            fleet = FleetConfig(n_workers=2 if workers is None else workers,
                                pool=pool or "thread")
        elif workers is not None or pool is not None:
            raise ValueError(
                "pass either fleet=FleetConfig(...) or the workers/pool "
                "shorthand, not both")
        return cls(mode="sharded", fleet=fleet)

    def fleet_config(self) -> FleetConfig:
        """The sharded engine's fleet knobs, derived when unset.

        A config built without ``fleet=`` (legacy flat ``workers`` /
        ``pool`` fields) still yields a complete :class:`FleetConfig`
        with default supervision timings and no quotas."""
        if self.fleet is not None:
            return self.fleet
        return FleetConfig(n_workers=self.workers, pool=self.pool)

    @property
    def parallel(self) -> bool:
        """Whether sources are extracted concurrently (legacy reading)."""
        return self.mode != "serial"

    def workers_for(self, n_sources: int) -> int:
        """The thread-pool size for a fan-out over ``n_sources``."""
        if self.max_workers == 0:
            return max(n_sources, 1)
        if self.max_workers:
            return self.max_workers
        return max(min(n_sources, DEFAULT_WORKER_CAP), 1)

    def caps_fanout(self, n_sources: int) -> bool:
        """True when the *adaptive default* cap truncates ``n_sources``.

        An explicit positive ``max_workers`` below the source count is a
        deliberate bound, not a surprise — only the implicit
        ``min(n, 16)`` default is reported when it bites."""
        return self.max_workers is None and n_sources > DEFAULT_WORKER_CAP


def coerce_concurrency(value: "ConcurrencyConfig | str | None",
                       ) -> ConcurrencyConfig | None:
    """A :class:`ConcurrencyConfig` from a config or mode string.

    Accepts ``"serial"``/``"thread"``/``"asyncio"`` as shorthand (the
    middleware's ``concurrency=`` kwarg), passes configs through, and
    maps ``None`` to ``None`` (meaning "no override")."""
    if value is None or isinstance(value, ConcurrencyConfig):
        return value
    return ConcurrencyConfig(mode=value)


@dataclass
class ResilienceConfig:
    """Everything the Extractor Manager needs to degrade gracefully.

    ``breaker=None`` disables circuit breaking, ``deadline_seconds=None``
    means unbounded, ``failover=False`` ignores replica mappings,
    ``concurrency`` picks the fan-out engine.  The ``clock`` is the
    single time source for backoff sleeps, breaker cooldowns, deadlines
    and (when shared with the fault-injection sources) latency/outage
    simulation.

    ``parallel=``/``max_workers=`` are deprecated spellings folded into
    ``concurrency`` with a warning; after construction they remain
    readable as plain attributes mirroring the concurrency config, so
    pre-asyncio callers keep working.  An explicit ``concurrency``
    always wins over the legacy pair — which is also what makes
    ``dataclasses.replace(config, concurrency=...)`` the supported way
    to change engines on an existing config (``replace`` re-passes the
    stale mirror attributes, and they must not override the new value).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy | None = field(default_factory=BreakerPolicy)
    deadline_seconds: float | None = None
    concurrency: ConcurrencyConfig | None = None
    failover: bool = True
    clock: Clock = field(default_factory=SystemClock)
    parallel: Any = UNSET
    max_workers: Any = UNSET

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be >= 0 or None")
        legacy = {name: value for name, value in
                  (("parallel", self.parallel),
                   ("max_workers", self.max_workers))
                  if value is not UNSET}
        base = self.concurrency
        if base is None:
            base = ConcurrencyConfig()
            if legacy:
                if ("max_workers" in legacy
                        and legacy["max_workers"] is not None
                        and legacy["max_workers"] < 1):
                    # The legacy kwarg never accepted 0/negative; keep its
                    # exact old contract (unbounded is
                    # ConcurrencyConfig-only).
                    raise ValueError("max_workers must be >= 1 or None")
                warnings.warn(
                    "ResilienceConfig(parallel=, max_workers=) is "
                    "deprecated; pass concurrency=ConcurrencyConfig(...) "
                    "instead", DeprecationWarning, stacklevel=3)
                mode = base.mode
                if "parallel" in legacy:
                    mode = "thread" if legacy["parallel"] else "serial"
                base = ConcurrencyConfig(
                    mode=mode,
                    max_workers=legacy.get("max_workers", base.max_workers))
        # else: an explicit concurrency config wins over the legacy pair
        # unconditionally — dataclasses.replace() re-passes the mirror
        # attributes below, and they must never override it.
        self.concurrency = base
        # Normalized mirrors so pre-asyncio readers (`config.parallel`)
        # keep working and replace() round-trips stay consistent.
        self.parallel = base.parallel
        self.max_workers = base.max_workers

    @classmethod
    def conservative(cls) -> "ResilienceConfig":
        """The seed's behaviour: serial, no retries, no breakers."""
        return cls(retry=RetryPolicy.from_legacy(0, 0.0), breaker=None,
                   failover=False)


def legacy_kwargs_to_config(base: ResilienceConfig | None, *,
                            parallel: Any = UNSET, max_workers: Any = UNSET,
                            retries: Any = UNSET, retry_delay: Any = UNSET,
                            owner: str, stacklevel: int = 3
                            ) -> ResilienceConfig:
    """Fold the deprecated kwargs into a :class:`ResilienceConfig`.

    Emits one :class:`DeprecationWarning` naming the owner class when any
    legacy kwarg was actually passed.  When no config and no legacy
    kwargs are given, the seed-compatible conservative default is used —
    existing callers observe identical behaviour.
    """
    used = {name: value for name, value in
            (("parallel", parallel), ("max_workers", max_workers),
             ("retries", retries), ("retry_delay", retry_delay))
            if value is not UNSET}
    if base is None:
        config = ResilienceConfig.conservative()
    else:
        config = replace(base)
    if not used:
        return config
    warnings.warn(
        f"{owner}({', '.join(sorted(used))}) is deprecated; pass "
        f"resilience=ResilienceConfig(...) instead",
        DeprecationWarning, stacklevel=stacklevel)
    if "parallel" in used or "max_workers" in used:
        if ("max_workers" in used and used["max_workers"] is not None
                and used["max_workers"] < 1):
            raise ValueError("max_workers must be >= 1 or None")
        mode = config.concurrency.mode
        if "parallel" in used:
            mode = "thread" if used["parallel"] else "serial"
        concurrency = ConcurrencyConfig(
            mode=mode,
            max_workers=used.get("max_workers",
                                 config.concurrency.max_workers))
        config.concurrency = concurrency
        config.parallel = concurrency.parallel
        config.max_workers = concurrency.max_workers
    if "retries" in used or "retry_delay" in used:
        config.retry = RetryPolicy.from_legacy(
            used.get("retries", config.retry.retries),
            used.get("retry_delay", config.retry.base_delay))
    return config
