"""One knob object for the whole resilience layer.

The seed's ``ExtractorManager``/``S2SMiddleware`` grew a kwarg per
behaviour (``retries``, ``retry_delay``, ``parallel``, ``max_workers``);
:class:`ResilienceConfig` replaces them with a single dataclass the
caller can build once and share.  The old kwargs survive as a deprecated
shim (see :func:`legacy_kwargs_to_config`) with their exact seed-era
semantics.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any

from ...clock import Clock, SystemClock
from .breaker import BreakerPolicy
from .retry import RetryPolicy

#: Sentinel distinguishing "not passed" from any real value.
UNSET: Any = object()


@dataclass
class ResilienceConfig:
    """Everything the Extractor Manager needs to degrade gracefully.

    ``breaker=None`` disables circuit breaking, ``deadline_seconds=None``
    means unbounded, ``failover=False`` ignores replica mappings.  The
    ``clock`` is the single time source for backoff sleeps, breaker
    cooldowns, deadlines and (when shared with the fault-injection
    sources) latency/outage simulation.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy | None = field(default_factory=BreakerPolicy)
    deadline_seconds: float | None = None
    parallel: bool = False
    max_workers: int | None = None
    failover: bool = True
    clock: Clock = field(default_factory=SystemClock)

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be >= 0 or None")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1 or None")

    @classmethod
    def conservative(cls) -> "ResilienceConfig":
        """The seed's behaviour: serial, no retries, no breakers."""
        return cls(retry=RetryPolicy.from_legacy(0, 0.0), breaker=None,
                   failover=False)


def legacy_kwargs_to_config(base: ResilienceConfig | None, *,
                            parallel: Any = UNSET, max_workers: Any = UNSET,
                            retries: Any = UNSET, retry_delay: Any = UNSET,
                            owner: str, stacklevel: int = 3
                            ) -> ResilienceConfig:
    """Fold the deprecated kwargs into a :class:`ResilienceConfig`.

    Emits one :class:`DeprecationWarning` naming the owner class when any
    legacy kwarg was actually passed.  When no config and no legacy
    kwargs are given, the seed-compatible conservative default is used —
    existing callers observe identical behaviour.
    """
    used = {name: value for name, value in
            (("parallel", parallel), ("max_workers", max_workers),
             ("retries", retries), ("retry_delay", retry_delay))
            if value is not UNSET}
    if base is None:
        config = ResilienceConfig.conservative()
    else:
        config = replace(base)
    if not used:
        return config
    warnings.warn(
        f"{owner}({', '.join(sorted(used))}) is deprecated; pass "
        f"resilience=ResilienceConfig(...) instead",
        DeprecationWarning, stacklevel=stacklevel)
    if "parallel" in used:
        config.parallel = bool(used["parallel"])
    if "max_workers" in used:
        config.max_workers = used["max_workers"]
    if "retries" in used or "retry_delay" in used:
        config.retry = RetryPolicy.from_legacy(
            used.get("retries", config.retry.retries),
            used.get("retry_delay", config.retry.base_delay))
    return config
