"""Per-source circuit breakers (closed → open → half-open).

A source that keeps failing should stop being called: every doomed
attempt burns retry budget and deadline that healthier sources of the
same federated query could use.  The breaker watches *call outcomes*
(one call = one rule execution after its retry chain) and trips after
``failure_threshold`` consecutive transient failures.  While open, calls
fail fast with :class:`~repro.errors.CircuitOpenError`; after
``cooldown_seconds`` the breaker lets ``half_open_max_calls`` probes
through, closing again on success and re-opening on failure.

Only *transient* failures count toward the threshold — a permanently
broken rule (bad SQL, drifted schema) fails identically every time and
says nothing about source availability.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from ...clock import Clock, SystemClock

#: Breaker states, in lifecycle order.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

#: Observer signature: ``listener(source_id, old_state, new_state)``.
TransitionListener = Callable[[str, str, str], None]


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning for one circuit breaker."""

    failure_threshold: int = 5
    cooldown_seconds: float = 30.0
    half_open_max_calls: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        if self.half_open_max_calls < 1:
            raise ValueError("half_open_max_calls must be >= 1")


class CircuitBreaker:
    """One source's availability gate.  Thread-safe.

    ``listener`` observes every state transition (trip, cooldown expiry,
    close) — the metrics registry hooks in here.  Listeners run outside
    the breaker lock and must not raise."""

    def __init__(self, source_id: str, policy: BreakerPolicy | None = None,
                 clock: Clock | None = None,
                 listener: TransitionListener | None = None) -> None:
        self.source_id = source_id
        self.policy = policy or BreakerPolicy()
        self.clock = clock or SystemClock()
        self.listener = listener
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_probes = 0
        self.open_count = 0  # times the breaker tripped, for observability
        self._pending: list[tuple[str, str]] = []  # transitions to report

    def _flush(self) -> None:
        """Report transitions recorded under the lock (lock released)."""
        if self.listener is None:
            return
        with self._lock:
            pending, self._pending = self._pending, []
        for old, new in pending:
            self.listener(self.source_id, old, new)

    @property
    def state(self) -> str:
        """Current state, applying any due open → half-open transition."""
        with self._lock:
            self._tick()
            state = self._state
        self._flush()
        return state

    def allow(self) -> bool:
        """May a call proceed right now?  Open breakers say no."""
        with self._lock:
            self._tick()
            if self._state == CLOSED:
                allowed = True
            elif (self._state == HALF_OPEN and self._half_open_probes
                    < self.policy.half_open_max_calls):
                self._half_open_probes += 1
                allowed = True
            else:
                allowed = False
        self._flush()
        return allowed

    def retry_after(self) -> float:
        """Seconds until the cooldown admits a probe (0 when it already
        does)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            elapsed = self.clock.monotonic() - self._opened_at
            return max(0.0, self.policy.cooldown_seconds - elapsed)

    def record_success(self) -> None:
        """A call completed: close from half-open, reset the streak."""
        with self._lock:
            self._tick()
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._half_open_probes = 0
                self._transition(CLOSED)
        self._flush()

    def record_failure(self) -> None:
        """A call failed transiently: extend the streak, maybe trip."""
        with self._lock:
            self._tick()
            if self._state == HALF_OPEN:
                self._trip()
            else:
                self._consecutive_failures += 1
                if (self._state == CLOSED and self._consecutive_failures
                        >= self.policy.failure_threshold):
                    self._trip()
        self._flush()

    # ------------------------------------------------------------------

    def _transition(self, new_state: str) -> None:
        """Record a state change for the listener (lock held)."""
        if self.listener is not None:
            self._pending.append((self._state, new_state))
        self._state = new_state

    def _trip(self) -> None:
        self._transition(OPEN)
        self._opened_at = self.clock.monotonic()
        self._half_open_probes = 0
        self._consecutive_failures = 0
        self.open_count += 1

    def _tick(self) -> None:
        """Open → half-open once the cooldown has elapsed (lock held)."""
        if (self._state == OPEN and self.clock.monotonic() - self._opened_at
                >= self.policy.cooldown_seconds):
            self._transition(HALF_OPEN)
            self._half_open_probes = 0


class CircuitBreakerRegistry:
    """One breaker per source id, created lazily.  Thread-safe."""

    def __init__(self, policy: BreakerPolicy | None = None,
                 clock: Clock | None = None,
                 listener: TransitionListener | None = None) -> None:
        self.policy = policy or BreakerPolicy()
        self.clock = clock or SystemClock()
        self.listener = listener
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, source_id: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(source_id)
            if breaker is None:
                breaker = CircuitBreaker(source_id, self.policy, self.clock,
                                         self.listener)
                self._breakers[source_id] = breaker
            return breaker

    def state_of(self, source_id: str) -> str:
        """State for a source; unknown sources are closed (never called)."""
        with self._lock:
            breaker = self._breakers.get(source_id)
        return breaker.state if breaker is not None else CLOSED

    def open_sources(self) -> list[str]:
        """Sources currently refusing calls, sorted."""
        with self._lock:
            breakers = list(self._breakers.values())
        return sorted(b.source_id for b in breakers if b.state == OPEN)

    def reset(self) -> None:
        """Forget all breaker state (e.g. after re-loading a mapping)."""
        with self._lock:
            self._breakers.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._breakers)
