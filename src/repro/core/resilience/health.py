"""Per-source health accounting, surfaced on every extraction outcome.

The paper's mediator answers "best effort" when sources misbehave; the
caller of :meth:`S2SMiddleware.query` must be able to *tell* a complete
answer from a degraded one.  :class:`SourceHealth` is the per-source
ledger (attempts, failures, retries, failovers, breaker state) and
:class:`SourceHealthRegistry` aggregates it — one registry per
extraction run for the outcome snapshot, one cumulative registry on the
manager for operational introspection.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace


@dataclass
class SourceHealth:
    """One source's ledger for one extraction run (or cumulatively)."""

    source_id: str
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0
    failovers: int = 0        # calls a replica answered for this primary
    served_for: int = 0       # calls this source answered as a replica
    deadline_hits: int = 0
    breaker_state: str = "closed"
    breaker_trips: int = 0
    last_error: str | None = None

    @property
    def degraded(self) -> bool:
        """Did this source fall short of a first-party answer?

        Failures that a retry recovered still produced a complete answer,
        so they do not count; replica substitution, deadline expiry and a
        non-closed breaker do."""
        return bool(self.failovers or self.deadline_hits
                    or self.breaker_state != "closed")

    def merge(self, other: "SourceHealth") -> None:
        """Fold another run's ledger for the same source into this one."""
        self.attempts += other.attempts
        self.successes += other.successes
        self.failures += other.failures
        self.retries += other.retries
        self.failovers += other.failovers
        self.served_for += other.served_for
        self.deadline_hits += other.deadline_hits
        self.breaker_trips = other.breaker_trips
        self.breaker_state = other.breaker_state
        if other.last_error is not None:
            self.last_error = other.last_error


@dataclass
class SourceHealthRegistry:
    """Thread-safe source_id → :class:`SourceHealth` map."""

    _health: dict[str, SourceHealth] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def for_source(self, source_id: str) -> SourceHealth:
        """The (lazily created) ledger for one source."""
        with self._lock:
            health = self._health.get(source_id)
            if health is None:
                health = SourceHealth(source_id)
                self._health[source_id] = health
            return health

    def snapshot(self) -> dict[str, SourceHealth]:
        """An independent copy, safe to attach to an outcome."""
        with self._lock:
            return {source_id: replace(health)
                    for source_id, health in self._health.items()}

    def merge_from(self, other: "SourceHealthRegistry") -> None:
        """Accumulate another registry (one run) into this one."""
        for source_id, health in other.snapshot().items():
            self.for_source(source_id).merge(health)

    def degraded_sources(self) -> list[str]:
        """Sources whose ledger shows degradation, sorted."""
        with self._lock:
            return sorted(source_id
                          for source_id, health in self._health.items()
                          if health.degraded)

    def __len__(self) -> int:
        with self._lock:
            return len(self._health)
