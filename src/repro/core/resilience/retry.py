"""Retry policy: exponential backoff, full jitter, per-extraction budget.

Replaces the seed's fixed-count/constant-sleep retry pair.  The schedule
follows the "full jitter" recipe (delay drawn uniformly from
``[0, min(max_delay, base * multiplier^n)]``) so that many clients
retrying against the same recovering B2B source do not synchronize into
retry storms.  A shared :class:`RetryBudget` caps the *total* number of
re-attempts one extraction run may spend across all of its sources, so a
single flapping source cannot starve the rest of a federated query.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

_JITTER_MODES = ("full", "none")


@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are re-attempted.

    ``max_attempts`` counts *total* tries per (source, entry) call:
    ``1`` means no retrying at all.  ``budget`` bounds retries across a
    whole extraction run (``None`` = unbounded).  ``seed`` fixes the
    jitter stream for reproducible schedules in tests and benchmarks.
    """

    max_attempts: int = 1
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: str = "full"
    budget: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if self.jitter not in _JITTER_MODES:
            raise ValueError(f"jitter must be one of {_JITTER_MODES}")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be >= 0 or None")

    @classmethod
    def from_legacy(cls, retries: int, retry_delay: float) -> "RetryPolicy":
        """The seed's ``retries``/``retry_delay`` pair, verbatim.

        Constant delay, no jitter, no budget — byte-for-byte the old
        behaviour, so the deprecated kwargs keep their exact semantics.
        """
        if retries < 0:
            raise ValueError("retries must be >= 0")
        return cls(max_attempts=retries + 1, base_delay=retry_delay,
                   multiplier=1.0, max_delay=max(retry_delay, 0.0),
                   jitter="none")

    @property
    def retries(self) -> int:
        """Retry count in the seed's vocabulary (attempts minus one)."""
        return self.max_attempts - 1

    def backoff_ceiling(self, attempt: int) -> float:
        """The un-jittered delay before re-attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.max_delay, self.base_delay
                   * self.multiplier ** (attempt - 1))

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """The jittered delay before re-attempt ``attempt`` (1-based)."""
        ceiling = self.backoff_ceiling(attempt)
        if self.jitter == "none" or ceiling <= 0:
            return ceiling
        return rng.uniform(0.0, ceiling)

    def make_rng(self) -> random.Random:
        """A jitter stream (seeded when the policy carries a seed)."""
        return random.Random(self.seed)


class RetryBudget:
    """Thread-safe countdown of re-attempts for one extraction run."""

    def __init__(self, limit: int | None) -> None:
        if limit is not None and limit < 0:
            raise ValueError("budget limit must be >= 0 or None")
        self._remaining = limit
        self._lock = threading.Lock()

    @property
    def remaining(self) -> int | None:
        """Retries left, or ``None`` for an unbounded budget."""
        with self._lock:
            return self._remaining

    @property
    def exhausted(self) -> bool:
        with self._lock:
            return self._remaining == 0

    def try_consume(self) -> bool:
        """Take one retry from the budget; False when none remain."""
        with self._lock:
            if self._remaining is None:
                return True
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True
