"""The S2S middleware facade — the single point of entry.

Wires the architecture of Figure 1 together: the ontology schema, the
mapping module (attribute + data source repositories, registrar), the
extractor manager and the query handler.  A complete integration setup
is::

    from repro.core import S2SMiddleware
    from repro.core.mapping.rules import ExtractionRule
    from repro.ontology.builders import watch_domain_ontology

    s2s = S2SMiddleware(watch_domain_ontology())
    s2s.register_source(RelationalDataSource("DB_ID_45", database))
    s2s.register_attribute(("watch", "case"),
                           ExtractionRule.sql("SELECT case_material "
                                              "FROM watches"),
                           "DB_ID_45")
    result = s2s.query('SELECT product WHERE brand = "Seiko"')
    print(result.serialize("owl"))

Observability is built in: pass ``tracer=Tracer()`` to get a per-query
span tree on ``result.trace``, call ``explain(query)`` for the rendered
Figure-5 flow of one query, and read the cumulative counters through
``metrics()`` (fed into the process-wide default registry unless a
dedicated :class:`~repro.obs.MetricsRegistry` is injected).
"""

from __future__ import annotations

import warnings
import weakref
from dataclasses import replace
from typing import Any

from ..errors import S2SError
from ..ids import AttributePath
from ..obs import DEFAULT_REGISTRY, MetricsRegistry, Tracer
from ..ontology.model import Ontology
from ..ontology.schema import OntologySchema
from ..sources.base import DataSource
from .cluster.manager import ShardedExtractorManager
from .extractor.async_manager import AsyncExtractorManager
from .extractor.cache import FragmentCache
from .extractor.extractors import Extractor, ExtractorRegistry
from .extractor.manager import ExtractionOutcome, ExtractorManager
from .ingest import IngestJob, IngestReport, IngestTarget, ShardCoordinator
from .resilience.config import (UNSET, ConcurrencyConfig, ResilienceConfig,
                                coerce_concurrency, legacy_kwargs_to_config)
from .resilience.health import SourceHealth
from .instances.outputs import OUTPUT_FORMATS
from .mapping.attributes import MappingEntry
from .mapping.datasources import DataSourceRepository
from .mapping.persistence import dump_mapping, load_mapping
from .mapping.registration import AttributeRegistrar
from .mapping.repository import AttributeRepository
from .mapping.rules import ExtractionRule, TransformRegistry
from .query.executor import QueryHandler, QueryResult
from .query.parser import parse_s2sql
from .query.scheduler import QueryScheduler
from .store import (DeltaRefresher, RefreshResult, SemanticStore,
                    StoreRefresher)
from .store.refresh import RefreshPolicy


def _deprecated_rule(language: str, code: str, *, name: str = "",
                     transform: str | None = None) -> ExtractionRule:
    warnings.warn(
        f"{language}_rule() is deprecated; use "
        f"ExtractionRule.{language}(...) instead",
        DeprecationWarning, stacklevel=3)
    return ExtractionRule(language, code, name=name, transform=transform)


def sql_rule(code: str, *, name: str = "", transform: str | None = None
             ) -> ExtractionRule:
    """Deprecated alias of :meth:`ExtractionRule.sql`."""
    return _deprecated_rule("sql", code, name=name, transform=transform)


def xpath_rule(code: str, *, name: str = "", transform: str | None = None
               ) -> ExtractionRule:
    """Deprecated alias of :meth:`ExtractionRule.xpath`."""
    return _deprecated_rule("xpath", code, name=name, transform=transform)


def webl_rule(code: str, *, name: str = "", transform: str | None = None
              ) -> ExtractionRule:
    """Deprecated alias of :meth:`ExtractionRule.webl`."""
    return _deprecated_rule("webl", code, name=name, transform=transform)


def regex_rule(code: str, *, name: str = "", transform: str | None = None
               ) -> ExtractionRule:
    """Deprecated alias of :meth:`ExtractionRule.regex`."""
    return _deprecated_rule("regex", code, name=name, transform=transform)


class S2SMiddleware:
    """The Syntactic-to-Semantic middleware."""

    def __init__(self, ontology: Ontology, *, strict_extraction: bool = False,
                 validate_instances: bool = True,
                 cache_extractions: bool = False,
                 resilience: ResilienceConfig | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 store: "SemanticStore | RefreshPolicy | bool | None" = None,
                 concurrency: "ConcurrencyConfig | str | None" = None,
                 parallel: Any = UNSET, max_workers: Any = UNSET,
                 retries: Any = UNSET, retry_delay: Any = UNSET) -> None:
        self.ontology = ontology
        self.schema = OntologySchema(ontology)
        self.attribute_repository = AttributeRepository()
        self.source_repository = DataSourceRepository()
        self.transforms = TransformRegistry()
        self.extractors = ExtractorRegistry(self.transforms)
        self.strict_extraction = strict_extraction
        self.validate_instances = validate_instances
        self.tracer = tracer
        self._metrics = metrics if metrics is not None else DEFAULT_REGISTRY
        self.cache = (FragmentCache(metrics=self._metrics)
                      if cache_extractions else None)
        self.resilience = legacy_kwargs_to_config(
            resilience, parallel=parallel, max_workers=max_workers,
            retries=retries, retry_delay=retry_delay, owner="S2SMiddleware")
        concurrency_config = coerce_concurrency(concurrency)
        if concurrency_config is not None:
            # `concurrency=` is the one engine knob; it wins over whatever
            # the resilience config (or a legacy kwarg) said.
            self.resilience = replace(self.resilience,
                                      concurrency=concurrency_config)
        self.store = self._build_store(store)
        #: Background workers handed out by ``store_refresher()`` /
        #: ``ingest_coordinator()``; ``close()`` sweeps whichever are
        #: still alive (weak refs — collected ones need no sweeping).
        self._owned_closables: "weakref.WeakSet" = weakref.WeakSet()
        self._closed = False
        self._rebuild()

    def _build_store(self, store) -> SemanticStore | None:
        """Resolve the ``store=`` kwarg: ``True`` enables a store with
        the default policy, a :class:`RefreshPolicy` enables one with
        that policy, a ready :class:`SemanticStore` is used as-is."""
        if store is None or store is False:
            return None
        if isinstance(store, SemanticStore):
            return store
        policy = store if isinstance(store, RefreshPolicy) else None
        return SemanticStore(policy=policy, clock=self.resilience.clock,
                             metrics=self._metrics,
                             namespace=self.ontology.base_iri)

    def _rebuild(self) -> None:
        """(Re)wire registrar, manager and query handler over the current
        repositories, preserving configuration and cumulative telemetry.

        Used at construction and after ``load_mapping``: strictness, the
        validation flag, the resilience config, the tracer/metrics wiring
        and the cumulative per-source health ledger (and retry counter)
        all survive a mapping reload; circuit breakers deliberately start
        closed again, since a reload may bring back repaired sources."""
        previous = getattr(self, "manager", None)
        self.registrar = AttributeRegistrar(
            self.schema, self.attribute_repository, self.source_repository)
        if self.cache is not None:
            # Generation bump, not a plain invalidate: extractions still
            # running against the old mapping carry the old generation,
            # so their late write-backs are discarded instead of
            # resurrecting stale fragments after the reload.
            self.cache.bump_generation()
        if self.store is not None:
            # Same coherence rule for materialized instances: a stale
            # post-reload store must never be served (every slice was
            # generated against the old mapping).
            self.store.bump_generation()
        mode = self.resilience.concurrency.mode
        manager_cls = (AsyncExtractorManager if mode == "asyncio"
                       else ShardedExtractorManager if mode == "sharded"
                       else ExtractorManager)
        self.manager = manager_cls(
            self.attribute_repository, self.source_repository,
            self.extractors, strict=self.strict_extraction, cache=self.cache,
            resilience=self.resilience, metrics=self._metrics)
        binding = getattr(self, "_fleet_binding", None)
        if binding is not None and mode == "sharded":
            # Re-attach to the shared fleet: re-registering the tenant
            # hands the fleet a context factory over the *new*
            # repositories, and the fleet rebuilds its workers at the
            # next idle moment.
            self.manager.attach_fleet(binding[0], tenant=binding[1])
        if previous is not None:
            self.manager.health.merge_from(previous.health)
            self.manager.retry_count = previous.retry_count
            previous.close()  # stop a replaced asyncio engine's loop
        self.query_handler = QueryHandler(
            self.schema, self.manager,
            validate_instances=self.validate_instances,
            tracer=self.tracer, metrics=self._metrics, store=self.store)

    # -- registration -------------------------------------------------------

    def register_source(self, source: DataSource, *,
                        replace: bool = False) -> str:
        """Register a data source (paper section 2.3.2)."""
        return self.source_repository.register(source, replace=replace)

    def register_attribute(self,
                           attribute: AttributePath | str | tuple[str, str],
                           rule: ExtractionRule, source_id: str,
                           *, replace: bool = False,
                           replica_of: str | None = None) -> MappingEntry:
        """Register an attribute mapping (3-step workflow of Figure 3).

        Pass ``replica_of=<primary source id>`` to register the entry as
        a failover replica: it is extracted only when the primary's
        retries are exhausted or its circuit breaker is open."""
        entry = self.registrar.register(attribute, rule, source_id,
                                        replace=replace,
                                        replica_of=replica_of)
        if replace and self.cache is not None:
            self.cache.invalidate(source_id)
        if self.store is not None:
            # Any mapping change can alter what a materialization would
            # contain (a new source for an already-materialized
            # attribute, a replaced rule): expire everything so the next
            # query re-extracts and re-folds under the new mapping.
            self.store.mark_stale()
        return entry

    def invalidate_cache(self, source_id: str | None = None) -> int:
        """Drop cached fragments after a source's data changed.

        Returns the number of cache entries removed; a no-op (0) when the
        middleware was built without ``cache_extractions``.  When a
        semantic store is configured, materializations holding the
        source are force-expired too, so the next query goes live."""
        if self.store is not None:
            self.store.mark_stale(source_id)
        if self.cache is None:
            return 0
        return self.cache.invalidate(source_id)

    def register_extractor(self, extractor: Extractor, *,
                           replace: bool = False) -> None:
        """Add support for a new source type (extensibility claim C4)."""
        self.extractors.register(extractor, replace=replace)

    def register_transform(self, name: str, function) -> None:
        """Add a named semantic-normalization transform."""
        self.transforms.register(name, function)

    # -- querying -----------------------------------------------------------

    def query(self, query: str, *,
              merge_key: list[str] | None = None) -> QueryResult:
        """Execute an S2SQL query; the single point of entry.

        Blocking under every engine: with ``concurrency="asyncio"`` the
        extraction fan-out runs as tasks on the engine's private event
        loop while this call waits — traces, metrics, store behaviour
        and results are identical to the thread engine's."""
        return self.query_handler.execute(query, merge_key=merge_key)

    async def aquery(self, query: str, *,
                     merge_key: list[str] | None = None) -> QueryResult:
        """Awaitable :meth:`query` for callers on an event loop.

        Same pipeline, same observability, same answers — extraction is
        awaited natively under ``concurrency="asyncio"`` and runs in a
        worker thread under the serial/thread engines, so the caller's
        loop never blocks either way (see docs/async.md)."""
        return await self.query_handler.aexecute(query, merge_key=merge_key)

    def query_many(self, queries: list[str], *,
                   merge_key: list[str] | None = None) -> list[QueryResult]:
        """Execute many S2SQL queries through one shared scan per source.

        Returns one :class:`QueryResult` per query, in submission order,
        instance-identical to ``[self.query(q) for q in queries]`` but
        visiting each data source once per batch instead of once per
        query (experiment E14; see docs/batching.md)."""
        return self.query_handler.execute_many(queries, merge_key=merge_key)

    async def aquery_many(self, queries: list[str], *,
                          merge_key: list[str] | None = None
                          ) -> list[QueryResult]:
        """Awaitable :meth:`query_many`: one shared scan per batch,
        extraction awaited instead of blocking the caller's loop."""
        return await self.query_handler.aexecute_many(queries,
                                                      merge_key=merge_key)

    def scheduler(self, *, max_batch_size: int = 16,
                  max_workers: int = 2) -> QueryScheduler:
        """A micro-batching scheduler over this middleware.

        Concurrently submitted queries are coalesced into shared scans
        without the callers coordinating; use as a context manager so
        the worker threads are shut down on exit."""
        return QueryScheduler(self.query_handler,
                              max_batch_size=max_batch_size,
                              max_workers=max_workers)

    def extract_all(self) -> ExtractionOutcome:
        """Eagerly materialize every mapped attribute (E1 ablation)."""
        return self.manager.extract_all_registered()

    # -- semantic store -----------------------------------------------------

    def _require_store(self) -> SemanticStore:
        if self.store is None:
            raise S2SError(
                "no semantic store configured; construct the middleware "
                "with store=True (or a RefreshPolicy / SemanticStore)")
        return self.store

    def _refresher(self) -> DeltaRefresher:
        """A delta refresher over the *current* manager and generator.

        Built per call (it is stateless) so a mapping reload's rebuilt
        manager is always the one refreshed through."""
        return DeltaRefresher(self._require_store(), self.manager,
                              self.query_handler.generator,
                              tracer=self.tracer, metrics=self._metrics)

    def sparql(self, query_text: str):
        """Run a SPARQL query against the materialized store graph.

        The store's graph holds every materialized entity's triples plus
        per-entity provenance (``store:source`` / ``store:recordIndex``).
        Returns a :class:`~repro.rdf.sparql.SparqlResult` for SELECT, a
        bool for ASK.  Raises when no store is configured."""
        from ..rdf.sparql import execute_sparql
        return execute_sparql(self._require_store().graph, query_text)

    def materialize(self, query: str) -> RefreshResult:
        """Materialize one query's answer into the store ahead of time
        (or force-refresh it if already materialized).  Subsequent
        ``query()`` calls with the same class and attribute set are
        answered from the store."""
        plan = self.query_handler.planner.plan(parse_s2sql(query))
        return self._refresher().materialize(plan)

    def refresh_store(self, *, force: bool = False) -> list[RefreshResult]:
        """Incrementally refresh every materialization: re-extract only
        sources whose content fingerprint changed (all reachable sources
        with ``force=True``); breaker-open sources keep serving
        last-known-good data."""
        return self._refresher().refresh(force=force)

    def store_status(self) -> list[dict]:
        """One freshness/content summary dict per materialization."""
        return self._require_store().status()

    def store_refresher(self, *, interval_seconds: float = 60.0,
                        poll_seconds: float | None = None) -> StoreRefresher:
        """A background refresher driving :meth:`refresh_store` every
        ``interval_seconds`` on the resilience clock.  Use as a context
        manager so the worker thread is shut down on exit."""
        self._require_store()
        refresher = StoreRefresher(self.refresh_store,
                                   interval_seconds=interval_seconds,
                                   clock=self.resilience.clock,
                                   poll_seconds=poll_seconds)
        self._owned_closables.add(refresher)
        return refresher

    # -- durable ingest -----------------------------------------------------

    def ingest_coordinator(self, journal_dir: str,
                           **options: Any) -> ShardCoordinator:
        """A :class:`ShardCoordinator` over this middleware's store,
        manager and generator, journaling under ``journal_dir``.

        Accepts every coordinator keyword (``n_workers``, ``pool``,
        ``retry_policy``, ``heartbeat_timeout``, ``stop_after``, …); the
        tracer and metrics default to the middleware's own."""
        options.setdefault("tracer", self.tracer)
        options.setdefault("metrics", self._metrics)
        coordinator = ShardCoordinator(self._require_store(), self.manager,
                                       self.query_handler.generator,
                                       journal_dir, **options)
        self._owned_closables.add(coordinator)
        return coordinator

    def _ingest_targets(self, queries: str | list[str]) -> list[IngestTarget]:
        targets = []
        for query in ([queries] if isinstance(queries, str) else queries):
            plan = self.query_handler.planner.plan(parse_s2sql(query))
            targets.append(IngestTarget(plan.class_name,
                                        list(plan.required_attributes)))
        return targets

    def ingest(self, queries: str | list[str], *, journal_dir: str,
               force: bool = False, **options: Any) -> IngestReport:
        """Materialize queries through the durable staged ingest pipeline.

        Unlike :meth:`materialize`, the work is journaled per source and
        survives a crash: rerunning with the same ``journal_dir`` resumes
        exactly the unfinished jobs.  See docs/ingest.md."""
        coordinator = self.ingest_coordinator(journal_dir, **options)
        try:
            return coordinator.run(self._ingest_targets(queries),
                                   force=force)
        finally:
            coordinator.close()

    def ingest_status(self, journal_dir: str) -> dict:
        """Journal-level summary of the ingest state under
        ``journal_dir`` (job counts, unfinished jobs, dead letters)."""
        coordinator = self.ingest_coordinator(journal_dir, fsync=False)
        try:
            return coordinator.status()
        finally:
            coordinator.close()

    def ingest_dead_letter(self, journal_dir: str) -> list[dict]:
        """The dead-letter ledger entries (quarantined jobs + errors)."""
        coordinator = self.ingest_coordinator(journal_dir, fsync=False)
        try:
            return coordinator.dead_letters()
        finally:
            coordinator.close()

    def ingest_requeue(self, journal_dir: str,
                       job_ids: list[str] | None = None) -> list[IngestJob]:
        """Release dead-letter jobs back to pending with a fresh retry
        budget; the next :meth:`ingest` run picks them up."""
        coordinator = self.ingest_coordinator(journal_dir)
        try:
            return coordinator.requeue(job_ids)
        finally:
            coordinator.close()

    # -- observability ------------------------------------------------------

    def metrics(self) -> MetricsRegistry:
        """The metrics registry this middleware reports into.

        Carries the cumulative counters fed by the pipeline hooks —
        cache hits/misses, retries, breaker transitions, query and
        extraction latencies.  Render with ``metrics().render_text()``
        or export via :func:`repro.obs.metrics_to_json`."""
        return self._metrics

    def explain(self, query: str, *,
                merge_key: list[str] | None = None) -> str:
        """Execute ``query`` traced and return the rendered span tree.

        The executable analogue of the paper's Figure 5: one indented
        line per pipeline stage — parse, plan, the per-source / per-entry
        extraction fan-out (with retry, breaker, cache and failover
        decisions), instance generation and condition filtering — each
        with its wall-clock share.  Uses a one-shot tracer on the
        resilience clock, so the permanently installed tracer (if any)
        and its kept traces are untouched."""
        tracer = Tracer(self.resilience.clock, keep_last=1)
        result = self.query_handler.execute(query, merge_key=merge_key,
                                            tracer=tracer)
        assert result.trace is not None
        return result.trace.render()

    def mapping_coverage(self) -> float:
        """Fraction of ontology attributes that have at least one mapping."""
        return self.registrar.coverage()

    def source_health(self) -> dict[str, SourceHealth]:
        """Cumulative per-source health across every extraction so far."""
        return self.manager.health.snapshot()

    def open_breakers(self) -> list[str]:
        """Sources whose circuit breaker is currently refusing calls."""
        if self.manager.breakers is None:
            return []
        return self.manager.breakers.open_sources()

    def unmapped_attributes(self) -> list[str]:
        """Attribute paths with no mapping yet, as strings."""
        return [str(path) for path in self.registrar.unregistered_paths()]

    def mapping_lines(self) -> list[str]:
        """The attribute repository in the paper's textual form."""
        return self.attribute_repository.paper_lines()

    def output_formats(self) -> tuple[str, ...]:
        """Formats QueryResult.serialize accepts."""
        return OUTPUT_FORMATS

    # -- persistence -----------------------------------------------------------

    def dump_mapping(self) -> str:
        """Serialize the mapping + source registries to JSON."""
        return dump_mapping(self.attribute_repository, self.source_repository)

    def load_mapping(self, text: str, source_factory) -> None:
        """Replace the registries from a JSON document; live connectors are
        re-created through ``source_factory(source_id, connection_info)``.

        The middleware's configuration (strictness, validation,
        resilience, observability) and its cumulative source-health
        history survive the reload — only the mapping state is swapped."""
        attributes, sources = load_mapping(text, source_factory)
        self.attribute_repository = attributes
        self.source_repository = sources
        self._rebuild()

    # -- lifecycle --------------------------------------------------------------

    def attach_fleet(self, fleet, *, tenant: str = "default") -> None:
        """Serve this middleware's sharded queries from a shared fleet.

        Only meaningful with ``concurrency="sharded"``: the manager
        registers itself as ``tenant`` on the given
        :class:`~repro.core.cluster.QueryShardCoordinator` instead of
        owning a private one.  The binding survives mapping reloads
        (each ``_rebuild`` re-registers the tenant over the new
        repositories).  The fleet's lifecycle belongs to its owner —
        ``close()`` here never shuts a shared fleet down."""
        self._fleet_binding = (fleet, tenant)
        if self.resilience.concurrency.mode == "sharded":
            self.manager.attach_fleet(fleet, tenant=tenant)

    def close(self) -> None:
        """Release every background resource this middleware owns.

        One idempotent call stops the asyncio engine's daemon event
        loop (when running with ``concurrency="asyncio"``), any
        :meth:`store_refresher` worker threads still alive, and any
        :meth:`ingest_coordinator` journals still open.  The middleware
        stays usable for mapping inspection afterwards, but querying
        through a closed asyncio engine will fail — ``close()`` is for
        teardown, not a pause.  Also usable as a context manager::

            with B2BScenario().build_middleware() as s2s:
                s2s.query("SELECT Product")
        """
        if self._closed:
            return
        self._closed = True
        for closable in list(self._owned_closables):
            try:
                closable.close()
            except Exception as exc:  # teardown must not mask teardown
                warnings.warn(f"error closing {type(closable).__name__} "
                              f"during middleware shutdown: {exc}",
                              RuntimeWarning, stacklevel=2)
        manager = getattr(self, "manager", None)
        if manager is not None:
            manager.close()

    def __enter__(self) -> "S2SMiddleware":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"S2SMiddleware(ontology={self.ontology.name!r}, "
                f"sources={len(self.source_repository)}, "
                f"mappings={len(self.attribute_repository)})")
