"""The S2S middleware — the paper's primary contribution.

Subpackages mirror the architecture of the paper's Figure 1:

* :mod:`repro.core.mapping` — the Mapping Module: attribute repository,
  data-source repository, 3-step attribute registration;
* :mod:`repro.core.extractor` — the Extractor Manager: extraction schemas,
  mediator + per-source-type wrappers, the 4-step extraction process;
* :mod:`repro.core.query` — the Query Handler and the S2SQL language;
* :mod:`repro.core.instances` — the Instance Generator: ontology
  population, output serialization and the error channel;
* :mod:`repro.core.middleware` — the :class:`S2SMiddleware` facade, the
  "single point of entry".
"""

import warnings

from .ingest import IngestReport, IngestTarget, ShardCoordinator
from .mapping.rules import ExtractionRule
from .middleware import S2SMiddleware
from .store import SemanticStore

#: Config classes now canonically exported by :mod:`repro.config`; the
#: historical spellings keep working through the warning shim below.
_MOVED_TO_CONFIG = ("ConcurrencyConfig", "RefreshPolicy",
                    "ResilienceConfig")


def __getattr__(name: str):
    if name in _MOVED_TO_CONFIG:
        warnings.warn(
            f"importing {name} from repro.core is deprecated; use "
            f"repro.config (or the top-level repro namespace) instead",
            DeprecationWarning, stacklevel=2)
        from .. import config
        return getattr(config, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = ["S2SMiddleware", "ExtractionRule", "ConcurrencyConfig",
           "IngestReport", "IngestTarget", "ResilienceConfig",
           "RefreshPolicy", "SemanticStore", "ShardCoordinator"]
