"""The S2S middleware — the paper's primary contribution.

Subpackages mirror the architecture of the paper's Figure 1:

* :mod:`repro.core.mapping` — the Mapping Module: attribute repository,
  data-source repository, 3-step attribute registration;
* :mod:`repro.core.extractor` — the Extractor Manager: extraction schemas,
  mediator + per-source-type wrappers, the 4-step extraction process;
* :mod:`repro.core.query` — the Query Handler and the S2SQL language;
* :mod:`repro.core.instances` — the Instance Generator: ontology
  population, output serialization and the error channel;
* :mod:`repro.core.middleware` — the :class:`S2SMiddleware` facade, the
  "single point of entry".
"""

from .ingest import IngestReport, IngestTarget, ShardCoordinator
from .mapping.rules import ExtractionRule
from .middleware import S2SMiddleware
from .resilience import ConcurrencyConfig, ResilienceConfig
from .store import RefreshPolicy, SemanticStore

__all__ = ["S2SMiddleware", "ExtractionRule", "ConcurrencyConfig",
           "IngestReport", "IngestTarget", "ResilienceConfig",
           "RefreshPolicy", "SemanticStore", "ShardCoordinator"]
