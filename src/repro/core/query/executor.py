"""The Query Handler: parse → plan → extract → generate → filter.

Ties the pipeline together and applies the query's WHERE conditions to the
assembled entities.  Condition semantics follow SQL: a condition over an
attribute the record does not carry is *not satisfied* (NULL never
matches), so partial sources silently contribute only the records they can
prove.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any

from ...errors import QueryError
from ...obs import NULL_SPAN, MetricsRegistry, Trace, Tracer
from ...ontology.schema import OntologySchema
from ..extractor.manager import ExtractionOutcome, ExtractorManager
from ..resilience import SourceHealth
from ..instances.assembly import AssembledEntity
from ..instances.errors import ErrorReport
from ..instances.generator import InstanceGenerator
from ..instances.outputs import render_entities
from .ast import S2sqlQuery
from .batch import QueryBatch, project_outcome
from .parser import parse_s2sql
from .planner import QueryPlan, QueryPlanner, ResolvedCondition


@dataclass
class QueryResult:
    """The answer to one S2SQL query.

    Self-contained: the ontology schema it serializes against is a
    constructor argument, so external code (tests, alternative handlers,
    result post-processors) can build one directly —
    ``QueryResult(query, plan, schema, entities=[...])``.  ``trace`` is
    the per-query span tree when the middleware ran with a tracer
    installed, else ``None``.
    """

    query: S2sqlQuery
    plan: QueryPlan
    schema: OntologySchema = field(repr=False)
    entities: list[AssembledEntity] = field(default_factory=list)
    errors: ErrorReport = field(default_factory=ErrorReport)
    elapsed_seconds: float = 0.0
    extraction_seconds: float = 0.0
    extraction: ExtractionOutcome | None = field(default=None, repr=False)
    trace: Trace | None = field(default=None, repr=False)
    #: True when the answer came from the semantic store instead of live
    #: extraction (``extraction`` is then None).
    store_hit: bool = False
    #: True when a store-served answer contained stale data (past TTL
    #: while a refresh was in flight, or last-known-good slices).
    store_stale: bool = False

    def __len__(self) -> int:
        return len(self.entities)

    @property
    def _schema(self) -> OntologySchema:
        """Deprecated spelling of :attr:`schema` (pre-1.1 private field)."""
        warnings.warn("QueryResult._schema is deprecated; the schema is "
                      "now the public QueryResult.schema attribute",
                      DeprecationWarning, stacklevel=2)
        return self.schema

    @property
    def health(self) -> dict[str, SourceHealth]:
        """Per-source resilience ledger for this query's extraction."""
        return self.extraction.health if self.extraction is not None else {}

    @property
    def degraded(self) -> bool:
        """True when the answer is best-effort rather than complete —
        some source failed, timed out, was served by a replica, or sits
        behind an open circuit breaker."""
        return (self.extraction.degraded if self.extraction is not None
                else not self.errors.ok)

    @property
    def degraded_sources(self) -> list[str]:
        """The sources responsible for a degraded answer, sorted."""
        return (self.extraction.degraded_sources
                if self.extraction is not None else [])

    @property
    def output_classes(self) -> list[str]:
        """The classes present in the output (paper: Product, watch,
        Provider for the example query)."""
        classes: list[str] = []
        for entity in self.entities:
            for individual in entity.all_individuals():
                if individual.class_name not in classes:
                    classes.append(individual.class_name)
        return classes

    def serialize(self, format: str = "owl") -> str:
        """Render via the instance generator's output adapters."""
        return render_entities(self.schema, self.entities, format)

    def consistency(self, key: list[str], *, tolerance: float = 1e-6):
        """Cross-source agreement report for entities sharing ``key``.

        See :mod:`repro.core.instances.consistency`."""
        from ..instances.consistency import check_consistency
        return check_consistency(self.entities, key, tolerance=tolerance)


@dataclass
class _PreparedQuery:
    """Everything :meth:`QueryHandler.execute` does before extraction.

    When the store already answered, ``result`` is the finished
    :class:`QueryResult` and no extraction runs.  Shared by the sync and
    async execution paths so they differ *only* in how the extraction
    outcome is obtained."""

    query: S2sqlQuery | None = None
    plan: QueryPlan | None = None
    root: Any = NULL_SPAN
    tracer: Tracer | None = None
    started: float = 0.0
    result: QueryResult | None = None


@dataclass
class _PreparedBatch:
    """Everything :meth:`QueryHandler.execute_many` does before the
    shared scan; ``results`` short-circuits (empty batch or full store
    serving)."""

    parsed: list[S2sqlQuery] = field(default_factory=list)
    batch: Any = None
    schema: Any = None
    root: Any = NULL_SPAN
    tracer: Tracer | None = None
    started: float = 0.0
    results: list[QueryResult] | None = None


class QueryHandler:
    """Executes S2SQL queries through the extraction pipeline.

    ``tracer`` (optional) produces a per-query span tree attached to
    ``QueryResult.trace``; ``metrics`` (optional) receives the
    ``queries_total`` / ``query_seconds`` / ``entities_returned_total`` /
    ``degraded_queries_total`` families.  Both default to off, keeping
    the untraced hot path allocation-free."""

    def __init__(self, schema: OntologySchema, manager: ExtractorManager,
                 *, validate_instances: bool = True,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 store=None) -> None:
        self.schema = schema
        self.manager = manager
        self.planner = QueryPlanner(schema)
        self.generator = InstanceGenerator(schema,
                                           validate=validate_instances)
        self.tracer = tracer
        self.metrics = metrics
        #: Optional :class:`~repro.core.store.SemanticStore`.  When set,
        #: fresh materializations answer queries without extraction and
        #: complete live answers are folded back in (write-through).
        self.store = store

    def execute(self, query: str | S2sqlQuery,
                *, merge_key: list[str] | None = None,
                tracer: Tracer | None = None) -> QueryResult:
        """Parse, plan, extract, generate and filter one query.

        ``tracer`` overrides the handler's installed tracer for this one
        call (``S2SMiddleware.explain`` uses this)."""
        prep = self._prepare(query, merge_key, tracer)
        if prep.result is not None:
            return prep.result
        with prep.root.child("extract") as span:
            outcome = self.manager.extract(prep.plan.required_attributes,
                                           span=span)
        return self._finish_live(prep, outcome, merge_key)

    async def aexecute(self, query: str | S2sqlQuery,
                       *, merge_key: list[str] | None = None,
                       tracer: Tracer | None = None) -> QueryResult:
        """Awaitable :meth:`execute` for callers on an event loop.

        Parsing, planning, store serving/folding, generation, filtering,
        tracing and metrics are byte-for-byte the sync path's (shared
        helpers); only the extraction outcome is awaited — natively
        under the asyncio engine, in a worker thread otherwise."""
        prep = self._prepare(query, merge_key, tracer)
        if prep.result is not None:
            return prep.result
        with prep.root.child("extract") as span:
            outcome = await self.manager.extract_async(
                prep.plan.required_attributes, span=span)
        return self._finish_live(prep, outcome, merge_key)

    def _prepare(self, query: str | S2sqlQuery,
                 merge_key: list[str] | None,
                 tracer: Tracer | None) -> _PreparedQuery:
        """Parse, plan and (when a store is installed) try to serve —
        everything :meth:`execute` does before touching the extractor."""
        started = time.perf_counter()
        tracer = tracer or self.tracer
        text = query if isinstance(query, str) else str(query)
        root = (tracer.start("query", text=text)
                if tracer is not None else NULL_SPAN)

        with root.child("parse"):
            if isinstance(query, str):
                query = parse_s2sql(query)
        with root.child("plan") as span:
            plan = self.planner.plan(query)
            span.annotate(query_class=plan.class_name,
                          attributes=len(plan.required_attributes),
                          conditions=len(plan.conditions))
        prep = _PreparedQuery(query=query, plan=plan, root=root,
                              tracer=tracer, started=started)

        if self.store is not None:
            with root.child("store") as span:
                serving = self.store.serve(plan, span=span)
            if serving is not None:
                prep.result = self._finish_store_hit(
                    query, plan, serving, merge_key, root, tracer, started)
        return prep

    def _finish_live(self, prep: _PreparedQuery,
                     outcome: ExtractionOutcome,
                     merge_key: list[str] | None) -> QueryResult:
        """Generate, fold, filter and record — everything after the
        extraction outcome exists, shared by sync and async paths."""
        query, plan, root = prep.query, prep.plan, prep.root
        with root.child("generate") as span:
            # With a store, generate unmerged so the fold keeps pristine
            # per-source entities; the query's merge applies afterwards.
            generation = self.generator.generate(
                outcome, plan.class_name,
                merge_key=None if self.store is not None else merge_key)
            span.annotate(entities=len(generation.entities),
                          errors=len(generation.errors.entries))
        if self.store is not None:
            with root.child("store") as span:
                self.store.fold(plan, outcome, generation,
                                self.manager.sources, span=span)
            if merge_key:
                generation.entities = self.generator._merge(
                    generation.entities, merge_key, generation.errors)
        with root.child("filter") as span:
            entities = [entity for entity in generation.entities
                        if self._matches(entity, plan.conditions)]
            span.annotate(candidates=len(generation.entities),
                          matched=len(entities))
        root.finish()

        result = QueryResult(query, plan, self.schema, entities,
                             generation.errors,
                             extraction_seconds=outcome.elapsed_seconds,
                             extraction=outcome)
        if prep.tracer is not None:
            result.trace = prep.tracer.trace_of(root)
        result.elapsed_seconds = time.perf_counter() - prep.started
        if self.metrics is not None:
            self._record_query_metrics(result)
        return result

    def _finish_store_hit(self, query: S2sqlQuery, plan: QueryPlan,
                          serving, merge_key: list[str] | None, root,
                          tracer: Tracer | None,
                          started: float) -> QueryResult:
        """Build a :class:`QueryResult` from a store serving: apply the
        query's merge key and conditions to the served clones, exactly
        as the live path applies them to generated entities."""
        entities = serving.entities
        errors = serving.errors
        if merge_key:
            entities = self.generator._merge(entities, merge_key, errors)
        with root.child("filter") as span:
            matched = [entity for entity in entities
                       if self._matches(entity, plan.conditions)]
            span.annotate(candidates=len(entities), matched=len(matched))
        root.finish()
        result = QueryResult(query, plan, self.schema, matched, errors,
                             store_hit=True, store_stale=serving.stale)
        if tracer is not None:
            result.trace = tracer.trace_of(root)
        result.elapsed_seconds = time.perf_counter() - started
        if self.metrics is not None:
            self._record_query_metrics(result)
        return result

    def execute_many(self, queries: list[str | S2sqlQuery],
                     *, merge_key: list[str] | None = None,
                     tracer: Tracer | None = None) -> list[QueryResult]:
        """Execute a batch of queries through **one shared scan** per
        source, returning one :class:`QueryResult` per query, in order.

        All queries are parsed and planned first (a malformed query fails
        the batch before any extraction runs), their required attributes
        are unioned into a single extraction run — so retries, breakers,
        deadlines, failover and tracing apply once per scan instead of
        once per query — and the shared outcome is projected back onto
        each query for its own instance generation and condition
        filtering.  Results are instance-identical to running every query
        alone; ``elapsed_seconds`` on each result is the *batch*
        wall-clock (the queries ran together), and all results share the
        batch's trace when a tracer is installed."""
        prep = self._prepare_batch(queries, merge_key, tracer)
        if prep.results is not None:
            return prep.results
        with prep.root.child("scan") as span:
            span.annotate(attributes=len(prep.batch.shared_attributes),
                          sources=len(prep.schema.source_ids()))
            shared = self.manager.extract(prep.batch.shared_attributes,
                                          span=span, schema=prep.schema)
        return self._finish_batch(prep, shared, merge_key)

    async def aexecute_many(self, queries: list[str | S2sqlQuery],
                            *, merge_key: list[str] | None = None,
                            tracer: Tracer | None = None
                            ) -> list[QueryResult]:
        """Awaitable :meth:`execute_many`: same single shared scan, same
        planning/store/projection helpers, extraction awaited."""
        prep = self._prepare_batch(queries, merge_key, tracer)
        if prep.results is not None:
            return prep.results
        with prep.root.child("scan") as span:
            span.annotate(attributes=len(prep.batch.shared_attributes),
                          sources=len(prep.schema.source_ids()))
            shared = await self.manager.extract_async(
                prep.batch.shared_attributes, span=span, schema=prep.schema)
        return self._finish_batch(prep, shared, merge_key)

    def _prepare_batch(self, queries: list[str | S2sqlQuery],
                       merge_key: list[str] | None,
                       tracer: Tracer | None) -> _PreparedBatch:
        """Parse + plan the batch and try the store — everything
        :meth:`execute_many` does before the shared scan."""
        prep = _PreparedBatch()
        if not queries:
            prep.results = []
            return prep
        prep.started = started = time.perf_counter()
        prep.tracer = tracer = tracer or self.tracer
        prep.root = root = (tracer.start("batch", queries=len(queries))
                            if tracer is not None else NULL_SPAN)

        with root.child("parse"):
            prep.parsed = parsed = [query if isinstance(query, S2sqlQuery)
                                    else parse_s2sql(query)
                                    for query in queries]
        distinct = len({str(query) for query in parsed})
        with root.child("plan") as span:
            prep.batch = batch = QueryBatch(self.planner).plan(parsed)
            span.annotate(queries=len(batch), distinct=distinct,
                          shared_attributes=len(batch.shared_attributes),
                          amortization=round(batch.amortization, 3))

        if self.store is not None:
            results = self._serve_batch_from_store(batch, parsed, merge_key,
                                                   root, tracer, started)
            if results is not None:
                prep.results = results
                return prep

        prep.schema = self.manager.obtain_extraction_schema(
            batch.shared_attributes)
        return prep

    def _finish_batch(self, prep: _PreparedBatch,
                      shared: ExtractionOutcome,
                      merge_key: list[str] | None) -> list[QueryResult]:
        """Project the shared outcome onto every query — everything
        after the scan, shared by sync and async paths."""
        parsed, batch, schema = prep.parsed, prep.batch, prep.schema
        root, tracer = prep.root, prep.tracer
        # Duplicate queries inside one batch (common under concurrent
        # traffic) are generated and filtered once; their results share
        # the first occurrence's entities.
        answered: dict[str, tuple] = {}
        results: list[QueryResult] = []
        for index, plan in enumerate(batch.plans):
            text = str(parsed[index])
            if text in answered:
                entities, errors, outcome = answered[text]
            else:
                with root.child("query", index=index,
                                text=text) as query_span:
                    outcome = project_outcome(shared, schema, plan)
                    with query_span.child("generate") as span:
                        generation = self.generator.generate(
                            outcome, plan.class_name,
                            merge_key=(None if self.store is not None
                                       else merge_key))
                        span.annotate(entities=len(generation.entities),
                                      errors=len(generation.errors.entries))
                    if self.store is not None:
                        with query_span.child("store") as span:
                            self.store.fold(plan, outcome, generation,
                                            self.manager.sources, span=span)
                        if merge_key:
                            generation.entities = self.generator._merge(
                                generation.entities, merge_key,
                                generation.errors)
                    with query_span.child("filter") as span:
                        entities = [entity
                                    for entity in generation.entities
                                    if self._matches(entity,
                                                     plan.conditions)]
                        span.annotate(candidates=len(generation.entities),
                                      matched=len(entities))
                errors = generation.errors
                answered[text] = (entities, errors, outcome)
            results.append(QueryResult(
                parsed[index], plan, self.schema, list(entities), errors,
                extraction_seconds=shared.elapsed_seconds,
                extraction=outcome))
        root.finish()

        trace = tracer.trace_of(root) if tracer is not None else None
        elapsed = time.perf_counter() - prep.started
        for result in results:
            result.trace = trace
            result.elapsed_seconds = elapsed
        if self.metrics is not None:
            self._record_batch_metrics(results, elapsed)
        return results

    def _serve_batch_from_store(self, batch, parsed: list[S2sqlQuery],
                                merge_key: list[str] | None, root,
                                tracer: Tracer | None,
                                started: float) -> list[QueryResult] | None:
        """Answer a whole batch from the store, or None to go live.

        All-or-nothing: a batch with even one unservable query runs the
        shared scan anyway (the scan visits the union of sources, so a
        partial store answer would not save the extraction)."""
        if not all(self.store.servable(plan) for plan in batch.plans):
            return None
        servings: dict[str, object] = {}
        with root.child("store", queries=len(batch.plans)) as store_span:
            for index, plan in enumerate(batch.plans):
                text = str(parsed[index])
                if text in servings:
                    continue
                with store_span.child("query", index=index,
                                      text=text) as span:
                    serving = self.store.serve(plan, span=span)
                if serving is None:
                    # Raced a TTL expiry between servable() and serve():
                    # fall back to the live shared scan.
                    store_span.annotate(fallback="stale-race")
                    return None
                servings[text] = serving

        answered: dict[str, tuple] = {}
        results: list[QueryResult] = []
        for index, plan in enumerate(batch.plans):
            text = str(parsed[index])
            if text not in answered:
                serving = servings[text]
                entities = serving.entities
                errors = serving.errors
                if merge_key:
                    entities = self.generator._merge(entities, merge_key,
                                                     errors)
                entities = [entity for entity in entities
                            if self._matches(entity, plan.conditions)]
                answered[text] = (entities, errors, serving.stale)
            entities, errors, stale = answered[text]
            results.append(QueryResult(
                parsed[index], plan, self.schema, list(entities), errors,
                store_hit=True, store_stale=stale))
        root.finish()

        trace = tracer.trace_of(root) if tracer is not None else None
        elapsed = time.perf_counter() - started
        for result in results:
            result.trace = trace
            result.elapsed_seconds = elapsed
        if self.metrics is not None:
            self._record_batch_metrics(results, elapsed)
        return results

    def _record_batch_metrics(self, results: list[QueryResult],
                              elapsed: float) -> None:
        metrics = self.metrics
        metrics.counter("batches_total", "query batches executed").inc()
        metrics.counter("queries_total", "S2SQL queries executed").inc(
            len(results))
        metrics.histogram("queries_per_scan",
                          "queries amortized over one shared scan",
                          buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
                          ).observe(len(results))
        metrics.histogram("batch_seconds",
                          "end-to-end batch latency").observe(elapsed)
        duplicates = len(results) - len(
            {str(result.query) for result in results})
        if duplicates:
            metrics.counter(
                "batch_query_dedup_total",
                "duplicate in-batch queries answered from a sibling"
                ).inc(duplicates)
        metrics.counter("entities_returned_total",
                        "assembled entities returned to callers").inc(
                            sum(len(result.entities) for result in results))
        degraded = sum(1 for result in results if result.degraded)
        if degraded:
            metrics.counter("degraded_queries_total",
                            "queries answered best-effort").inc(degraded)

    def _record_query_metrics(self, result: QueryResult) -> None:
        metrics = self.metrics
        metrics.counter("queries_total", "S2SQL queries executed").inc()
        metrics.histogram("query_seconds",
                          "end-to-end query latency").observe(
                              result.elapsed_seconds)
        metrics.counter("entities_returned_total",
                        "assembled entities returned to callers").inc(
                            len(result.entities))
        if result.degraded:
            metrics.counter("degraded_queries_total",
                            "queries answered best-effort").inc()

    # ------------------------------------------------------------------

    def _matches(self, entity: AssembledEntity,
                 conditions: list[ResolvedCondition]) -> bool:
        for condition in conditions:
            value = entity.value(condition.path.attribute)
            if value is None:
                return False
            if not self._check(value, condition):
                return False
        return True

    @staticmethod
    def _check(value, condition: ResolvedCondition) -> bool:
        operator = condition.operator
        expected = condition.value
        if operator == "CONTAINS":
            return str(expected).lower() in str(value).lower()
        if operator == "LIKE":
            import re as _re
            pattern = "".join(
                ".*" if ch == "%" else "." if ch == "_" else _re.escape(ch)
                for ch in str(expected))
            return _re.match(pattern + r"\Z", str(value),
                             _re.IGNORECASE) is not None
        try:
            if operator == "=":
                return value == expected
            if operator == "!=":
                return value != expected
            if operator == "<":
                return value < expected
            if operator == ">":
                return value > expected
            if operator == "<=":
                return value <= expected
            return value >= expected
        except TypeError as exc:
            raise QueryError(
                f"cannot compare extracted value {value!r} with constraint "
                f"{expected!r}") from exc
