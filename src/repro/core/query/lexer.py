"""S2SQL tokenizer."""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...errors import S2sqlSyntaxError

KEYWORDS = frozenset({"SELECT", "WHERE", "AND", "LIKE", "CONTAINS", "TRUE",
                      "FALSE", "FROM"})

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<ne><>|!=) | (?P<le><=) | (?P<ge>>=)
  | (?P<eq>=) | (?P<lt><) | (?P<gt>>)
  | (?P<path>[A-Za-z_][A-Za-z0-9_\-]*(?:\.[A-Za-z_][A-Za-z0-9_\-]*)+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token (kind, text, offset)."""
    kind: str
    value: str
    position: int


def tokenize(query: str) -> list[Token]:
    """Tokenize an S2SQL query string."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(query):
        match = _TOKEN_RE.match(query, pos)
        if match is None:
            raise S2sqlSyntaxError(
                f"unexpected character {query[pos]!r}", position=pos)
        kind = match.lastgroup or ""
        if kind != "ws":
            value = match.group()
            if kind == "string":
                tokens.append(Token("string", value[1:-1], pos))
            elif kind == "name" and value.upper() in KEYWORDS:
                tokens.append(Token("keyword", value.upper(), pos))
            else:
                tokens.append(Token(kind, value, pos))
        pos = match.end()
    return tokens
