"""S2SQL AST."""

from __future__ import annotations

from dataclasses import dataclass

#: Comparison operators accepted in WHERE conditions.  ``CONTAINS`` and
#: ``LIKE`` are string predicates; the rest compare typed values.
OPERATORS = ("=", "!=", "<", ">", "<=", ">=", "LIKE", "CONTAINS")


@dataclass(frozen=True, slots=True)
class Condition:
    """One ``<attribute> <operator> <constraint>`` clause.

    ``attribute`` may be a bare name (``brand``) or a dotted path
    (``thing.product.brand``); the planner resolves bare names against the
    query class."""

    attribute: str
    operator: str
    value: object  # str | int | float | bool

    def __str__(self) -> str:
        rendered = (f'"{self.value}"' if isinstance(self.value, str)
                    else str(self.value))
        return f"{self.attribute} {self.operator} {rendered}"


@dataclass(frozen=True, slots=True)
class S2sqlQuery:
    """``SELECT <class> [WHERE cond AND cond ...]``"""

    class_name: str
    conditions: tuple[Condition, ...] = ()

    def __str__(self) -> str:
        text = f"SELECT {self.class_name}"
        if self.conditions:
            text += " WHERE " + " AND ".join(str(c) for c in self.conditions)
        return text
