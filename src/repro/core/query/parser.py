"""S2SQL parser.

Grammar, as given in paper section 2.5::

    query     := SELECT class [WHERE condition (AND condition)*]
    condition := attribute operator constraint
    operator  := = | != | <> | < | > | <= | >= | LIKE | CONTAINS
    constraint:= string | number | TRUE | FALSE

FROM is *rejected with a dedicated message*: "the FROM and related
operators have no use in S2SQL and are thus not supported".
"""

from __future__ import annotations

from ...errors import S2sqlSyntaxError
from .ast import Condition, S2sqlQuery
from .lexer import Token, tokenize


class _Parser:
    def __init__(self, query: str) -> None:
        self.query = query
        self.tokens = tokenize(query)
        self.index = 0

    def peek(self) -> Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise S2sqlSyntaxError(
                f"unexpected end of query in {self.query!r}")
        self.index += 1
        return token

    def expect_keyword(self, word: str) -> None:
        token = self.next()
        if token.kind != "keyword" or token.value != word:
            raise S2sqlSyntaxError(
                f"expected {word}, got {token.value!r}",
                position=token.position)

    def parse(self) -> S2sqlQuery:
        self.expect_keyword("SELECT")
        class_token = self.next()
        if class_token.kind not in ("name", "path"):
            raise S2sqlSyntaxError(
                f"expected ontology class name, got {class_token.value!r}",
                position=class_token.position)
        class_name = class_token.value
        conditions: list[Condition] = []
        token = self.peek()
        if token is not None and token.kind == "keyword" and token.value == "FROM":
            raise S2sqlSyntaxError(
                "FROM is not supported: S2SQL queries are location-"
                "transparent (data location is resolved by the mapping "
                "module)", position=token.position)
        if token is not None:
            self.expect_keyword("WHERE")
            conditions.append(self.condition())
            while True:
                token = self.peek()
                if token is None:
                    break
                self.expect_keyword("AND")
                conditions.append(self.condition())
        return S2sqlQuery(class_name, tuple(conditions))

    def condition(self) -> Condition:
        attr_token = self.next()
        if attr_token.kind not in ("name", "path"):
            raise S2sqlSyntaxError(
                f"expected attribute, got {attr_token.value!r}",
                position=attr_token.position)
        op_token = self.next()
        operators = {"eq": "=", "ne": "!=", "lt": "<", "gt": ">",
                     "le": "<=", "ge": ">="}
        if op_token.kind in operators:
            operator = operators[op_token.kind]
        elif op_token.kind == "keyword" and op_token.value in ("LIKE",
                                                               "CONTAINS"):
            operator = op_token.value
        else:
            raise S2sqlSyntaxError(
                f"expected comparison operator, got {op_token.value!r}",
                position=op_token.position)
        value_token = self.next()
        value: object
        if value_token.kind == "string":
            value = value_token.value
        elif value_token.kind == "number":
            text = value_token.value
            value = float(text) if "." in text else int(text)
        elif value_token.kind == "keyword" and value_token.value in ("TRUE",
                                                                     "FALSE"):
            value = value_token.value == "TRUE"
        elif value_token.kind == "name":
            # Unquoted bare word — accept as string for author convenience.
            value = value_token.value
        else:
            raise S2sqlSyntaxError(
                f"expected constraint value, got {value_token.value!r}",
                position=value_token.position)
        return Condition(attr_token.value, operator, value)


def parse_s2sql(query: str) -> S2sqlQuery:
    """Parse an S2SQL query string."""
    if not query or not query.strip():
        raise S2sqlSyntaxError("empty S2SQL query")
    return _Parser(query).parse()
