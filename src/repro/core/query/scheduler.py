"""Bounded-concurrency micro-batching scheduler for S2SQL queries.

Production traffic does not arrive as neat pre-assembled batches — it
arrives as individual queries from many callers.  The scheduler bridges
that gap: callers ``submit()`` single queries and get a
:class:`~concurrent.futures.Future` back; a small pool of worker threads
drains the queue in micro-batches of up to ``max_batch_size`` and runs
each batch through :meth:`QueryHandler.execute_many`, so co-arriving
queries share one scan per source without the callers coordinating.

Isolation guarantee: when a batch as a whole fails (one malformed query
fails ``execute_many`` at parse/plan time), the scheduler falls back to
executing that batch's queries individually, so the bad query fails only
its own future and its co-batched neighbours still get answers.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

from .ast import S2sqlQuery
from .executor import QueryHandler, QueryResult


class _Item:
    """One submitted query waiting in the scheduler's queue."""

    __slots__ = ("query", "merge_key", "future")

    def __init__(self, query: str | S2sqlQuery,
                 merge_key: list[str] | None) -> None:
        self.query = query
        self.merge_key = merge_key
        self.future: Future[QueryResult] = Future()


class QueryScheduler:
    """Batches concurrently submitted queries into shared scans.

    ``max_batch_size`` bounds how many queries one worker drains into a
    single ``execute_many`` call; ``max_workers`` bounds how many batches
    run at once.  Only queries with equal ``merge_key`` are co-batched
    (``execute_many`` applies one merge key to the whole batch), so a
    worker takes the longest queue prefix sharing the front item's key.

    Usable as a context manager::

        with middleware.scheduler() as scheduler:
            futures = [scheduler.submit(q) for q in queries]
            results = [future.result() for future in futures]
    """

    def __init__(self, handler: QueryHandler, *,
                 max_batch_size: int = 16, max_workers: int = 2) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.handler = handler
        self.max_batch_size = max_batch_size
        self._queue: list[_Item] = []
        self._cond = threading.Condition()
        self._closed = False
        self._workers = [
            threading.Thread(target=self._run, daemon=True,
                             name=f"query-scheduler-{index}")
            for index in range(max_workers)]
        for worker in self._workers:
            worker.start()

    # -- caller side --------------------------------------------------------

    def submit(self, query: str | S2sqlQuery, *,
               merge_key: list[str] | None = None) -> Future[QueryResult]:
        """Enqueue one query; the future resolves to its QueryResult."""
        item = _Item(query, merge_key)
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed scheduler")
            self._queue.append(item)
            self._cond.notify()
        return item.future

    def map(self, queries: list[str | S2sqlQuery], *,
            merge_key: list[str] | None = None) -> list[QueryResult]:
        """Submit every query and block for the results, in order."""
        futures = [self.submit(query, merge_key=merge_key)
                   for query in queries]
        return [future.result() for future in futures]

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting queries; drain the queue, then stop workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def pending(self) -> int:
        """Queries accepted but not yet taken by a worker."""
        with self._cond:
            return len(self._queue)

    # -- worker side --------------------------------------------------------

    def _take_batch(self) -> list[_Item] | None:
        """Block for work; return one mergeable batch, or None to exit."""
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return None  # closed and drained
            merge_key = self._queue[0].merge_key
            count = 1
            while (count < len(self._queue)
                   and count < self.max_batch_size
                   and self._queue[count].merge_key == merge_key):
                count += 1
            batch = self._queue[:count]
            del self._queue[:count]
            return batch

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: list[_Item]) -> None:
        try:
            results = self.handler.execute_many(
                [item.query for item in batch],
                merge_key=batch[0].merge_key)
        except Exception:
            # One malformed query fails the whole execute_many at plan
            # time; re-run the batch members individually so the error
            # lands only on the offending query's future.
            for item in batch:
                if not item.future.set_running_or_notify_cancel():
                    continue
                try:
                    item.future.set_result(self.handler.execute(
                        item.query, merge_key=item.merge_key))
                except BaseException as exc:
                    item.future.set_exception(exc)
            return
        for item, result in zip(batch, results):
            if item.future.set_running_or_notify_cancel():
                item.future.set_result(result)
