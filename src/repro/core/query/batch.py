"""Shared-scan planning for batched S2SQL execution.

One S2SQL query costs one extraction run; N concurrent queries over the
same mapping naively cost N runs that mostly re-extract the same
fragments.  The batch planner amortizes that: it plans every query
individually, unions their required-attribute lists into **one shared
scan**, and after the Extractor Manager has executed that scan once, it
*projects* the shared outcome back down to each query — so instance
generation and condition filtering see exactly what a standalone
``query()`` would have seen.

Grouping rules (documented in docs/batching.md):

* every query keeps its own :class:`~repro.core.query.planner.QueryPlan`
  (class resolution, closure, typed conditions — errors surface per
  batch at plan time, before any extraction runs);
* the union of all plans' required attributes, in first-seen order,
  forms the shared scan; each data source is therefore visited **once
  per batch** instead of once per query;
* resilience (retries, breakers, deadlines, failover) and tracing apply
  to the shared scan — once per scan, not once per query;
* the per-query projection restricts record sets, problems, missing
  attributes, health and per-source timings to the sources and
  attributes that query's own plan would have touched, preserving the
  standalone ``degraded`` / error-channel semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ...ids import AttributePath
from ..extractor.manager import ExtractionOutcome
from ..extractor.records import SourceRecordSet
from ..extractor.schema import ExtractionSchema
from .ast import S2sqlQuery
from .planner import QueryPlan, QueryPlanner


@dataclass
class BatchPlan:
    """The shared-scan plan for one batch of parsed queries."""

    queries: list[S2sqlQuery]
    plans: list[QueryPlan]
    #: Ordered dedup union of every plan's required attributes — the
    #: attribute list of the one shared extraction run.
    shared_attributes: list[AttributePath] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def amortization(self) -> float:
        """Attributes saved by sharing: requested / scanned (>= 1.0)."""
        requested = sum(len(plan.required_attributes)
                        for plan in self.plans)
        scanned = len(self.shared_attributes)
        return requested / scanned if scanned else 1.0


class QueryBatch:
    """Plans one shared scan over many parsed queries."""

    def __init__(self, planner: QueryPlanner) -> None:
        self.planner = planner

    def plan(self, queries: list[S2sqlQuery]) -> BatchPlan:
        """Plan every query and union the required attributes.

        Planning errors (unknown class, untyped constraint) raise here,
        before any source is touched — a malformed query fails the batch
        at plan time exactly as it would fail ``query()`` alone."""
        plans = [self.planner.plan(query) for query in queries]
        shared: list[AttributePath] = []
        seen: set[str] = set()
        for plan in plans:
            for path in plan.required_attributes:
                if str(path) not in seen:
                    seen.add(str(path))
                    shared.append(path)
        return BatchPlan(list(queries), plans, shared)


def project_outcome(shared: ExtractionOutcome, schema: ExtractionSchema,
                    plan: QueryPlan) -> ExtractionOutcome:
    """The slice of a shared scan one query would have extracted alone.

    ``schema`` is the extraction schema of the *shared* scan (it knows
    which sources and replicas serve which attributes); ``plan`` is the
    single query's own plan.  Fragments are re-ordered to the plan's
    required-attribute order so instance assembly sees the same record
    layout a standalone execution produces."""
    wanted = {str(path): index
              for index, path in enumerate(plan.required_attributes)}
    relevant = {
        source_id for source_id, entries in schema.by_source.items()
        if any(entry.attribute_id in wanted for entry in entries)}
    replica_ids = {
        entry.source_id
        for (attribute_id, primary), entries in schema.replicas.items()
        if attribute_id in wanted and primary in relevant
        for entry in entries}
    visible = relevant | replica_ids

    missing_ids = {str(path) for path in shared.missing_attributes}
    outcome = ExtractionOutcome(
        missing_attributes=[path for path in plan.required_attributes
                            if str(path) in missing_ids],
        elapsed_seconds=shared.elapsed_seconds,
        deadline_seconds=shared.deadline_seconds)
    for source_id in sorted(shared.record_sets):
        if source_id not in relevant:
            continue
        record_set = shared.record_sets[source_id]
        fragments = sorted(
            (fragment for fragment in record_set.fragments
             if str(fragment.attribute) in wanted),
            key=lambda fragment: wanted[str(fragment.attribute)])
        if not fragments:
            continue
        projected = SourceRecordSet(source_id)
        for fragment in fragments:
            projected.add(fragment)
        outcome.record_sets[source_id] = projected
    outcome.problems = [
        problem for problem in shared.problems
        if problem.source_id in visible
        and (problem.attribute_id is None
             or problem.attribute_id in wanted)]
    outcome.per_source_seconds = {
        source_id: seconds
        for source_id, seconds in shared.per_source_seconds.items()
        if source_id in visible}
    outcome.health = {source_id: replace(health)
                      for source_id, health in shared.health.items()
                      if source_id in visible}
    return outcome
