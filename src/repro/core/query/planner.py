"""Query planning: from parsed S2SQL to a required-attribute list.

This is extraction step 1 ("know what data to extract"): the planner
resolves the query class against the ontology, computes the output class
closure (paper: querying ``product`` returns Product, watch and Provider),
expands the closure into the attribute paths the extractor must fill, and
resolves each WHERE condition to a canonical attribute path with a typed
constraint value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import QueryError
from ...ids import AttributePath
from ...ontology.model import DatatypeProperty
from ...ontology.schema import OntologySchema
from .ast import Condition, S2sqlQuery


@dataclass(frozen=True)
class ResolvedCondition:
    """A WHERE condition bound to its canonical attribute path."""

    path: AttributePath
    property: DatatypeProperty
    operator: str
    value: object


@dataclass
class QueryPlan:
    """What the extractor and assembler need to answer one query."""

    query: S2sqlQuery
    class_name: str
    output_classes: list[str]
    required_attributes: list[AttributePath] = field(default_factory=list)
    conditions: list[ResolvedCondition] = field(default_factory=list)

    def condition_for(self, path: AttributePath) -> list[ResolvedCondition]:
        """Resolved conditions anchored at ``path``."""
        return [c for c in self.conditions if c.path == path]


class QueryPlanner:
    """Builds :class:`QueryPlan` objects against one ontology schema."""

    def __init__(self, schema: OntologySchema) -> None:
        self.schema = schema

    def plan(self, query: S2sqlQuery) -> QueryPlan:
        """Build the extraction plan for a parsed query."""
        try:
            class_name = self.schema.resolve_query_class(query.class_name)
        except Exception as exc:
            raise QueryError(str(exc)) from exc
        output_classes = self.schema.class_closure(class_name)

        required: list[AttributePath] = []
        seen: set[str] = set()
        for output_class in output_classes:
            for path in self.schema.paths_for_class(output_class):
                if str(path) not in seen:
                    seen.add(str(path))
                    required.append(path)

        conditions = [self._resolve_condition(class_name, condition)
                      for condition in query.conditions]
        for condition in conditions:
            if str(condition.path) not in seen:
                seen.add(str(condition.path))
                required.append(condition.path)
        return QueryPlan(query, class_name, output_classes, required,
                         conditions)

    def _resolve_condition(self, class_name: str,
                           condition: Condition) -> ResolvedCondition:
        attribute = condition.attribute
        if "." in attribute:
            path = AttributePath.parse(attribute)
            if not self.schema.has_path(path):
                raise QueryError(
                    f"condition attribute {attribute!r} is not in the "
                    "ontology schema")
            _owner, prop = self.schema.resolve(path)
        else:
            prop = None
            path = None
            # Search the query class first, then the rest of the closure —
            # the paper's example constrains `case`, an attribute of the
            # `watch` subclass, in a query over `product`.
            for candidate in self.schema.class_closure(class_name):
                found = self.schema.ontology.find_attribute(candidate,
                                                            attribute)
                if found is not None:
                    prop = found
                    path = self.schema.path_for(candidate, attribute)
                    break
            if prop is None or path is None:
                raise QueryError(
                    f"condition attribute {attribute!r} does not exist on "
                    f"class {class_name!r} or its related classes")
        value = self._typed_value(prop, condition)
        return ResolvedCondition(path, prop, condition.operator, value)

    @staticmethod
    def _typed_value(prop: DatatypeProperty, condition: Condition) -> object:
        """Coerce the constraint to the attribute's range eagerly so typing
        errors surface at plan time, not per record."""
        if condition.operator in ("LIKE", "CONTAINS"):
            return str(condition.value)
        value = condition.value
        try:
            if prop.range in ("integer",):
                return int(value)  # type: ignore[arg-type]
            if prop.range in ("double", "float", "decimal"):
                return float(value)  # type: ignore[arg-type]
            if prop.range == "boolean":
                if isinstance(value, bool):
                    return value
                return str(value).strip().lower() in ("true", "1")
            if prop.range == "date":
                import datetime as _dt
                return _dt.date.fromisoformat(str(value).strip())
            if prop.range == "dateTime":
                import datetime as _dt
                return _dt.datetime.fromisoformat(str(value).strip())
        except (TypeError, ValueError) as exc:
            raise QueryError(
                f"constraint {value!r} is not a valid {prop.range} for "
                f"attribute {prop.name!r}") from exc
        return str(value)
