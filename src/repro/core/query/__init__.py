"""The Query Handler and the S2SQL language (paper section 2.5).

"A query is the event that sets the S2S extraction middleware in action."
S2SQL is a simplified SQL: *data location is transparent*, so there is no
FROM clause — only the ontology class wanted and attribute constraints::

    SELECT product WHERE brand = "Seiko" AND case = "stainless-steel"

Modules: :mod:`lexer`/:mod:`parser`/:mod:`ast` implement the language,
:mod:`planner` turns a parsed query into the required-attribute list
(extraction step 1) and :mod:`executor` drives extraction, filtering and
instance assembly.
"""

from .ast import Condition, S2sqlQuery
from .batch import BatchPlan, QueryBatch, project_outcome
from .executor import QueryHandler, QueryResult
from .parser import parse_s2sql
from .planner import QueryPlan, QueryPlanner
from .scheduler import QueryScheduler

__all__ = [
    "S2sqlQuery",
    "Condition",
    "parse_s2sql",
    "QueryPlanner",
    "QueryPlan",
    "QueryHandler",
    "QueryResult",
    "QueryBatch",
    "BatchPlan",
    "project_outcome",
    "QueryScheduler",
]
