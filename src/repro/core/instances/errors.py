"""The error channel of the Instance Generator.

The paper assigns error handling to this component: "the Instance
Generator … is responsible for providing information about any error that
has occurred during the extraction process or in the query".  An
:class:`ErrorReport` aggregates everything that went wrong while
answering one query, classified by phase, without aborting the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Phases an error can originate from.
PHASES = ("query", "mapping", "extraction", "generation")


@dataclass(frozen=True)
class ErrorEntry:
    phase: str
    message: str
    source_id: str | None = None
    attribute_id: str | None = None

    def __str__(self) -> str:
        scope = []
        if self.source_id:
            scope.append(f"source={self.source_id}")
        if self.attribute_id:
            scope.append(f"attribute={self.attribute_id}")
        suffix = f" ({', '.join(scope)})" if scope else ""
        return f"{self.phase}: {self.message}{suffix}"


@dataclass
class ErrorReport:
    """All problems observed while answering one query."""

    entries: list[ErrorEntry] = field(default_factory=list)

    def add(self, phase: str, message: str, *, source_id: str | None = None,
            attribute_id: str | None = None) -> None:
        """Record one error in the given phase."""
        if phase not in PHASES:
            raise ValueError(f"unknown error phase {phase!r}")
        self.entries.append(ErrorEntry(phase, message, source_id,
                                       attribute_id))

    @property
    def ok(self) -> bool:
        """True when no errors were recorded."""
        return not self.entries

    def by_phase(self, phase: str) -> list[ErrorEntry]:
        """Entries recorded in one phase."""
        return [entry for entry in self.entries if entry.phase == phase]

    def summary(self) -> str:
        """One-line count summary grouped by phase."""
        if self.ok:
            return "no errors"
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.phase] = counts.get(entry.phase, 0) + 1
        parts = [f"{count} {phase}" for phase, count in sorted(counts.items())]
        return f"{len(self.entries)} errors ({', '.join(parts)})"

    def __len__(self) -> int:
        return len(self.entries)
