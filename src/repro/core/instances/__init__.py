"""The Instance Generator (paper section 2.6).

"This module serializes the output data format and handles the errors from
the queries and from the extraction phases."  Three concerns:

* :mod:`repro.core.instances.assembly` — correlating raw per-source
  records into ontology individuals with object-property links;
* :mod:`repro.core.instances.generator` — the population pipeline
  (coercion, validation, optional merge of equivalent individuals);
* :mod:`repro.core.instances.outputs` — output adapters (OWL/RDF-XML,
  Turtle, XML, JSON, plain text);
* :mod:`repro.core.instances.errors` — the error-report channel.
"""

from .assembly import AssembledEntity, RecordAssembler
from .errors import ErrorReport
from .generator import InstanceGenerator

__all__ = ["RecordAssembler", "AssembledEntity", "InstanceGenerator",
           "ErrorReport"]
