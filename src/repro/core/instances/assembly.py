"""Record-to-individual assembly.

One aligned source record (attribute ID → raw value) may describe several
related entities at once — the paper's watch page carries the watch's
``brand``/``case`` *and* its provider's ``name``.  The assembler:

1. resolves each attribute path to its owning ontology class;
2. clusters classes that lie on one subclass chain into the most specific
   class (``product`` + ``watch`` attributes → one ``watch`` individual);
3. creates one individual per cluster, coercing raw strings to the
   attribute's declared XSD range;
4. links clusters through the ontology's object properties (the
   ``hasProvider`` edge of Figure 2).

The cluster containing the query class (or a subclass of it) is the
*primary* entity — the thing the query's WHERE conditions apply to.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ...errors import InstanceGenerationError, ValidationError
from ...ids import AttributePath
from ...ontology.model import Individual
from ...ontology.reasoner import Reasoner
from ...ontology.schema import OntologySchema


@dataclass
class AssembledEntity:
    """A primary individual plus the linked satellites built from one record."""

    primary: Individual
    satellites: list[Individual] = field(default_factory=list)
    source_id: str = ""
    record_index: int = 0
    coercion_errors: list[str] = field(default_factory=list)

    def all_individuals(self) -> list[Individual]:
        """Primary + satellites in one list."""
        return [self.primary, *self.satellites]

    def value(self, attribute: str, default=None):
        """Attribute lookup across primary and satellites."""
        if attribute in self.primary.values:
            return self.primary.values[attribute]
        for satellite in self.satellites:
            if attribute in satellite.values:
                return satellite.values[attribute]
        return default

    def clone(self) -> "AssembledEntity":
        """An independent deep copy.

        The merge step and condition filtering mutate entities in place
        (value back-fill, satellite adoption), so anything stored for
        reuse — the semantic store — must hand out copies.  Links are
        remapped so a clone's individuals reference each other, never
        the originals."""
        copies: dict[int, Individual] = {}
        for individual in self.all_individuals():
            copies[id(individual)] = Individual(
                individual.identifier, individual.class_name,
                {name: (list(value) if isinstance(value, list) else value)
                 for name, value in individual.values.items()})
        for individual in self.all_individuals():
            copy = copies[id(individual)]
            for name, targets in individual.links.items():
                copy.links[name] = [
                    copies.get(id(target), target) for target in targets]
        return AssembledEntity(
            copies[id(self.primary)],
            [copies[id(satellite)] for satellite in self.satellites],
            self.source_id, self.record_index,
            list(self.coercion_errors))


def _identifier(class_name: str, source_id: str, index: int) -> str:
    safe_source = re.sub(r"[^A-Za-z0-9_]", "_", source_id)
    return f"{class_name}_{safe_source}_{index}"


class RecordAssembler:
    """Builds :class:`AssembledEntity` objects for one query class."""

    def __init__(self, schema: OntologySchema, query_class: str) -> None:
        self.schema = schema
        self.query_class = query_class
        self.reasoner = Reasoner(schema.ontology)

    def assemble(self, record: dict[str, str | None], *, source_id: str,
                 record_index: int) -> AssembledEntity | None:
        """Assemble one aligned record; returns None when the record holds
        no attribute belonging to the query class's subtree."""
        by_class: dict[str, dict[str, str]] = {}
        for attribute_id, raw in record.items():
            if raw is None:
                continue
            path = AttributePath.parse(attribute_id)
            owner, _prop = self.schema.resolve(path)
            by_class.setdefault(owner, {})[path.attribute] = raw

        clusters = self._cluster_classes(list(by_class))
        primary_cluster = self._primary_cluster(clusters)
        if primary_cluster is None:
            return None

        entity: AssembledEntity | None = None
        individuals: dict[str, Individual] = {}
        errors: list[str] = []
        for cluster in clusters:
            specific = cluster[-1]  # most specific class in the chain
            values: dict[str, object] = {}
            for class_name in cluster:
                for attribute, raw in by_class.get(class_name, {}).items():
                    try:
                        values[attribute] = self.reasoner.coerce(
                            specific, attribute, raw)
                    except ValidationError as exc:
                        errors.append(str(exc))
            individual = Individual(
                _identifier(specific, source_id, record_index), specific,
                values)
            individuals[specific] = individual

        primary = individuals[primary_cluster[-1]]
        satellites = [ind for cls, ind in individuals.items()
                      if ind is not primary]
        self._link(primary, satellites)
        entity = AssembledEntity(primary, satellites, source_id,
                                 record_index, errors)
        return entity

    # ------------------------------------------------------------------

    def _cluster_classes(self, classes: list[str]) -> list[list[str]]:
        """Group classes lying on one subclass chain; each cluster is
        ordered general → specific."""
        remaining = set(classes)
        clusters: list[list[str]] = []
        # Sort by lineage depth so specific classes absorb their ancestors.
        for class_name in sorted(remaining,
                                 key=lambda c: -len(self.schema.ontology.lineage(c))):
            if class_name not in remaining:
                continue
            chain = [class_name]
            remaining.discard(class_name)
            for ancestor in self.schema.ontology.ancestors(class_name):
                if ancestor in remaining:
                    chain.insert(0, ancestor)
                    remaining.discard(ancestor)
            clusters.append(chain)
        return clusters

    def _primary_cluster(self, clusters: list[list[str]]) -> list[str] | None:
        for cluster in clusters:
            for class_name in cluster:
                if self.reasoner.is_subclass(class_name, self.query_class):
                    return cluster
        return None

    def _link(self, primary: Individual, satellites: list[Individual]) -> None:
        """Attach satellites through declared object properties."""
        for satellite in satellites:
            properties = self.schema.object_properties_between(
                primary.class_name, satellite.class_name)
            if not properties:
                # Also allow satellite → primary direction.
                reverse = self.schema.object_properties_between(
                    satellite.class_name, primary.class_name)
                if reverse:
                    satellite.link(reverse[0].name, primary)
                    continue
                raise InstanceGenerationError(
                    f"no object property connects {primary.class_name!r} "
                    f"and {satellite.class_name!r}; cannot assemble record")
            primary.link(properties[0].name, satellite)
