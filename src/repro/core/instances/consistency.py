"""Cross-source consistency analysis.

When several organizations publish the same real-world entity, their
values should agree *after* semantic normalization — and where they do
not, the disagreement is itself valuable B2B intelligence (a stale feed,
a price discrepancy, a vocabulary the mapping missed).  This module
analyses a query result whose entities share a natural key and reports,
per attribute, how often sources agree.

The paper stops at producing integrated instances; this is the obvious
downstream check an adopter builds first, so it ships in the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .assembly import AssembledEntity


@dataclass(frozen=True)
class ValueConflict:
    """Two sources disagreeing on one attribute of one entity."""

    key: tuple
    attribute: str
    values: tuple  # (value, source_id) pairs, as observed

    def __str__(self) -> str:
        observed = ", ".join(f"{value!r} ({source})"
                             for value, source in self.values)
        return f"{'/'.join(map(str, self.key))}.{self.attribute}: {observed}"


@dataclass
class AttributeAgreement:
    """Agreement statistics for one attribute across keyed groups."""

    attribute: str
    groups_compared: int = 0
    groups_agreeing: int = 0

    @property
    def agreement_rate(self) -> float:
        """Fraction of compared groups that agree."""
        if self.groups_compared == 0:
            return 1.0
        return self.groups_agreeing / self.groups_compared


@dataclass
class ConsistencyReport:
    """Cross-source agreement per attribute + concrete conflicts."""

    key_attributes: list[str]
    total_entities: int = 0
    multi_source_groups: int = 0
    agreements: dict[str, AttributeAgreement] = field(default_factory=dict)
    conflicts: list[ValueConflict] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """True when no conflicts were found."""
        return not self.conflicts

    def agreement_rate(self, attribute: str) -> float:
        """Fraction of compared groups that agree."""
        agreement = self.agreements.get(attribute)
        return agreement.agreement_rate if agreement else 1.0

    def summary(self) -> str:
        """One-line report: entities, groups, conflict count."""
        if self.multi_source_groups == 0:
            return (f"{self.total_entities} entities, no multi-source "
                    "overlap to compare")
        status = ("consistent" if self.consistent
                  else f"{len(self.conflicts)} conflicts")
        return (f"{self.total_entities} entities, "
                f"{self.multi_source_groups} multi-source groups, {status}")


def check_consistency(entities: list[AssembledEntity],
                      key: list[str],
                      *, tolerance: float = 1e-6) -> ConsistencyReport:
    """Group entities by ``key`` attribute values and compare the rest.

    Numeric values within ``tolerance`` count as agreeing (different
    sources legitimately round prices differently).  Entities missing a
    key attribute are skipped; attributes missing in some group members
    are compared only across the members that carry them."""
    report = ConsistencyReport(key_attributes=list(key),
                               total_entities=len(entities))
    groups: dict[tuple, list[AssembledEntity]] = {}
    for entity in entities:
        key_values = tuple(entity.value(attribute) for attribute in key)
        if any(part is None for part in key_values):
            continue
        groups.setdefault(key_values, []).append(entity)

    for key_values, members in groups.items():
        if len(members) < 2:
            continue
        report.multi_source_groups += 1
        attributes: set[str] = set()
        for member in members:
            attributes.update(member.primary.values)
            for satellite in member.satellites:
                attributes.update(satellite.values)
        attributes.difference_update(key)
        for attribute in sorted(attributes):
            observed = [(member.value(attribute), member.source_id)
                        for member in members
                        if member.value(attribute) is not None]
            if len(observed) < 2:
                continue
            agreement = report.agreements.setdefault(
                attribute, AttributeAgreement(attribute))
            agreement.groups_compared += 1
            if _all_agree([value for value, _source in observed],
                          tolerance):
                agreement.groups_agreeing += 1
            else:
                report.conflicts.append(ValueConflict(
                    key_values, attribute, tuple(observed)))
    return report


def _all_agree(values: list, tolerance: float) -> bool:
    first = values[0]
    for value in values[1:]:
        if isinstance(first, (int, float)) and isinstance(value,
                                                          (int, float)) \
                and not isinstance(first, bool) \
                and not isinstance(value, bool):
            if abs(first - value) > tolerance:
                return False
        elif value != first:
            return False
    return True
