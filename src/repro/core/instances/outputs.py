"""Output adapters (paper section 2.6).

"The S2S middleware supports the output format OWL, but other outputs can
easily be adapted to export plain text to XML, and so on."  Each adapter
renders a list of assembled entities:

* ``owl`` — OWL/RDF-XML, the default (ontology instances);
* ``turtle`` — the same graph in Turtle;
* ``ntriples`` — the same graph as N-Triples lines;
* ``xml`` — plain hierarchical XML mirroring the ontology structure (the
  "direct mapping … transforming the XML structure into the ontology
  structure" the paper describes);
* ``json`` — the XML structure as JSON objects;
* ``text`` — a human-readable listing.
"""

from __future__ import annotations

import json as _json

from ...errors import InstanceGenerationError
from ...ontology.model import Individual
from ...ontology.owlxml import add_individual_triples
from ...rdf.graph import Graph
from ...rdf.namespace import Namespace, NamespaceManager
from ...rdf.rdfxml import serialize_rdfxml
from ...rdf.turtle import serialize_turtle
from ...xmlkit import Document, Element, serialize_xml
from ...ontology.schema import OntologySchema
from .assembly import AssembledEntity

OUTPUT_FORMATS = ("owl", "turtle", "ntriples", "xml", "json", "text")


def entities_to_graph(schema: OntologySchema,
                      entities: list[AssembledEntity],
                      *, include_schema: bool = False) -> Graph:
    """Collect all individuals of the entities into one RDF graph."""
    ontology = schema.ontology
    manager = NamespaceManager()
    namespace = Namespace(ontology.base_iri)
    manager.bind("onto", namespace)
    if include_schema:
        from ...ontology.owlxml import ontology_to_graph
        graph = ontology_to_graph(ontology, include_individuals=False)
    else:
        graph = Graph(namespace_manager=manager)
    seen: set[str] = set()
    for entity in entities:
        for individual in entity.all_individuals():
            if individual.identifier in seen:
                continue
            seen.add(individual.identifier)
            add_individual_triples(graph, namespace, individual)
    return graph


def _individual_element(individual: Individual,
                        rendered: set[str]) -> Element:
    element = Element(individual.class_name, {"id": individual.identifier})
    rendered.add(individual.identifier)
    for name in sorted(individual.values):
        value = individual.values[name]
        items = value if isinstance(value, list) else [value]
        for item in items:
            element.subelement(name, text=_scalar_text(item))
    for name in sorted(individual.links):
        for target in individual.links[name]:
            link = element.subelement(name)
            if target.identifier in rendered:
                link.attributes["ref"] = target.identifier
            else:
                link.append(_individual_element(target, rendered))
    return element


def _scalar_text(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def render_entities(schema: OntologySchema, entities: list[AssembledEntity],
                    format: str = "owl") -> str:
    """Serialize entities in one of :data:`OUTPUT_FORMATS`."""
    if format == "owl":
        return serialize_rdfxml(entities_to_graph(schema, entities))
    if format == "turtle":
        return serialize_turtle(entities_to_graph(schema, entities))
    if format == "ntriples":
        from ...rdf.ntriples import serialize_ntriples
        return serialize_ntriples(entities_to_graph(schema, entities))
    if format == "xml":
        root = Element("results", {"count": str(len(entities))})
        rendered: set[str] = set()
        for entity in entities:
            root.append(_individual_element(entity.primary, rendered))
        return serialize_xml(Document(root))
    if format == "json":
        return _json.dumps([_entity_dict(entity) for entity in entities],
                           indent=2, sort_keys=True)
    if format == "text":
        lines: list[str] = []
        for entity in entities:
            lines.append(f"{entity.primary.class_name} "
                         f"[{entity.primary.identifier}] "
                         f"(source: {entity.source_id})")
            for name in sorted(entity.primary.values):
                lines.append(f"  {name} = "
                             f"{_scalar_text(entity.primary.values[name])}")
            for satellite in entity.satellites:
                lines.append(f"  -> {satellite.class_name} "
                             f"[{satellite.identifier}]")
                for name in sorted(satellite.values):
                    lines.append(
                        f"     {name} = "
                        f"{_scalar_text(satellite.values[name])}")
        return "\n".join(lines) + ("\n" if lines else "")
    raise InstanceGenerationError(
        f"unsupported output format {format!r}; expected one of "
        f"{OUTPUT_FORMATS}")


def _entity_dict(entity: AssembledEntity) -> dict:
    def individual_dict(individual: Individual) -> dict:
        body: dict = {"id": individual.identifier,
                      "class": individual.class_name}
        body.update({name: individual.values[name]
                     for name in sorted(individual.values)})
        for name in sorted(individual.links):
            body[name] = [individual_dict(target)
                          for target in individual.links[name]]
        return body

    record = individual_dict(entity.primary)
    record["_source"] = entity.source_id
    return record
