"""The instance population pipeline.

"The ontology population process (OWL instance generation) is executed in
an automatic way … because the extracted information respects the
ontology schema" (paper section 2.6).  The generator turns an
:class:`~repro.core.extractor.manager.ExtractionOutcome` into assembled
entities, recording every anomaly in the error report instead of failing:

* ragged record sets (attribute columns of unequal length);
* values that do not coerce to their declared XSD range;
* records carrying nothing relevant to the query class;
* optional validation of every produced individual against the schema.

``merge_key`` is a documented extension (DESIGN.md section 7): when a list
of attribute names is given, entities whose key values agree are merged
into one individual (multi-source dedup after semantic normalization) —
the capability the semantic-heterogeneity experiment E6 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import InstanceGenerationError
from ...ontology.schema import OntologySchema
from ...ontology.validation import validate_individual
from ..extractor.manager import ExtractionOutcome
from .assembly import AssembledEntity, RecordAssembler
from .errors import ErrorReport


@dataclass
class GenerationResult:
    """Assembled entities + the error channel."""

    entities: list[AssembledEntity] = field(default_factory=list)
    errors: ErrorReport = field(default_factory=ErrorReport)

    def __len__(self) -> int:
        return len(self.entities)


class InstanceGenerator:
    """Builds ontology instances from raw extraction output."""

    def __init__(self, schema: OntologySchema, *,
                 validate: bool = True) -> None:
        self.schema = schema
        self.validate = validate

    def generate(self, outcome: ExtractionOutcome, query_class: str,
                 *, merge_key: list[str] | None = None) -> GenerationResult:
        """Turn an extraction outcome into assembled entities."""
        result = GenerationResult()
        assembler = RecordAssembler(self.schema, query_class)

        for problem in outcome.problems:
            result.errors.add("extraction", problem.message,
                              source_id=problem.source_id,
                              attribute_id=problem.attribute_id)
        for path in outcome.missing_attributes:
            result.errors.add("mapping",
                              f"attribute {path} has no mapping entry",
                              attribute_id=str(path))

        for source_id in sorted(outcome.record_sets):
            record_set = outcome.record_sets[source_id]
            records = record_set.align()
            if record_set.ragged:
                result.errors.add(
                    "extraction",
                    f"ragged record set: attribute columns have unequal "
                    f"lengths ({[len(f) for f in record_set.fragments]})",
                    source_id=source_id)
            for index, record in enumerate(records):
                try:
                    entity = assembler.assemble(record, source_id=source_id,
                                                record_index=index)
                except InstanceGenerationError as exc:
                    result.errors.add("generation", str(exc),
                                      source_id=source_id)
                    continue
                if entity is None:
                    result.errors.add(
                        "generation",
                        f"record {index} holds no attribute of class "
                        f"{query_class!r}", source_id=source_id)
                    continue
                for message in entity.coercion_errors:
                    result.errors.add("generation", message,
                                      source_id=source_id)
                if self.validate:
                    for individual in entity.all_individuals():
                        report = validate_individual(self.schema.ontology,
                                                     individual)
                        for problem_text in report.problems:
                            result.errors.add("generation", problem_text,
                                              source_id=source_id)
                result.entities.append(entity)

        if merge_key:
            result.entities = self._merge(result.entities, merge_key,
                                          result.errors)
        return result

    @staticmethod
    def _merge(entities: list[AssembledEntity], merge_key: list[str],
               errors: ErrorReport) -> list[AssembledEntity]:
        """Merge entities agreeing on every merge-key attribute.

        The first-seen entity wins conflicts; differing non-key values are
        reported (they usually reveal an unresolved semantic conflict)."""
        merged: dict[tuple, AssembledEntity] = {}
        order: list[tuple] = []
        for entity in entities:
            key = tuple(entity.value(attribute) for attribute in merge_key)
            if any(part is None for part in key):
                # Entities missing key attributes cannot be deduplicated.
                key = (id(entity),)
            existing = merged.get(key)
            if existing is None:
                merged[key] = entity
                order.append(key)
                continue
            for attribute, value in entity.primary.values.items():
                current = existing.primary.values.get(attribute)
                if current is None:
                    existing.primary.values[attribute] = value
                elif current != value:
                    errors.add(
                        "generation",
                        f"merge conflict on {attribute!r}: kept {current!r}, "
                        f"dropped {value!r} (from {entity.source_id})",
                        source_id=entity.source_id)
            for satellite in entity.satellites:
                known = {s.class_name for s in existing.satellites}
                if satellite.class_name not in known:
                    existing.satellites.append(satellite)
        return [merged[key] for key in order]
