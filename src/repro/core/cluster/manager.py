"""The sharded extraction engine: ``ConcurrencyConfig(mode="sharded")``.

:class:`ShardedExtractorManager` is the fleet-backed sibling of the
serial/thread/asyncio engines: it keeps the whole
:class:`~repro.core.extractor.manager.ExtractorManager` contract —
same schema handling, same outcome shape, same health/problem
semantics — but runs step 4 by handing per-shard sub-plans to a
:class:`~repro.core.cluster.coordinator.QueryShardCoordinator` and
merging the partial outcomes back into one.  The middleware selects it
from the concurrency mode exactly like the asyncio engine, so
``query``/``query_many`` and their async twins route through the fleet
with no caller changes, and the server gets one fleet per tenant for
free (each tenant middleware owns its manager owns its coordinator).

Merging reproduces the in-process fold exactly: record sets, timings
and problems are folded in globally sorted source order, per-source
health ledgers are summed across shards (a replica serving two shards'
primaries merges), and unmapped attributes are stamped once from the
full schema.  Shards lost to worker death come back as per-source
problems — a degraded answer, never a lost query.
"""

from __future__ import annotations

import time
from dataclasses import replace

from ...errors import S2SError
from ...obs import NULL_SPAN
from ..extractor.manager import (AnySpan, ExtractionOutcome,
                                 ExtractionProblem, ExtractorManager)
from ..extractor.schema import ExtractionSchema
from ..resilience import Deadline, SourceHealth
from ..resilience.config import ConcurrencyConfig
from .coordinator import (QueryShardCoordinator, QueryWorkerContext,
                          ShardRunResult)


def merge_partials(outcome: ExtractionOutcome, run: ShardRunResult,
                   deadline: Deadline) -> ExtractionOutcome:
    """Fold per-shard partial outcomes into one, in-process-identical.

    The in-process engine folds per-source results sorted by source id;
    shards are disjoint source sets, so re-sorting the union restores
    exactly that order.  Shards that timed out mark every source with a
    deadline problem (same wording as the in-process parallel path);
    shards whose worker died beyond the restart budget degrade their
    sources into reported problems."""
    problems_by_source: dict[str, list[ExtractionProblem]] = {}
    health: dict[str, SourceHealth] = {}
    sources: set[str] = set()
    for shard in sorted(run.partials):
        partial: ExtractionOutcome = run.partials[shard]
        for problem in partial.problems:
            problems_by_source.setdefault(problem.source_id,
                                          []).append(problem)
        for source_id, record_set in partial.record_sets.items():
            outcome.record_sets[source_id] = record_set
            sources.add(source_id)
        for source_id, seconds in partial.per_source_seconds.items():
            outcome.per_source_seconds[source_id] = seconds
            sources.add(source_id)
        for source_id, ledger in partial.health.items():
            merged = health.get(source_id)
            if merged is None:
                health[source_id] = replace(ledger)
            else:
                merged.merge(ledger)
    for shard in sorted(run.timed_out):
        for source_id in run.items[shard].source_ids:
            entry = health.setdefault(source_id, SourceHealth(source_id))
            entry.deadline_hits += 1
            problems_by_source.setdefault(source_id, []).append(
                ExtractionProblem(
                    source_id, None,
                    f"source did not complete within the "
                    f"{deadline.seconds:.3f}s extraction deadline"))
            outcome.per_source_seconds.setdefault(source_id,
                                                  deadline.seconds or 0.0)
            sources.add(source_id)
    for shard in sorted(run.failures):
        error = run.failures[shard]
        for source_id in run.items[shard].source_ids:
            entry = health.setdefault(source_id, SourceHealth(source_id))
            entry.last_error = error
            problems_by_source.setdefault(source_id, []).append(
                ExtractionProblem(source_id, None,
                                  f"shard worker lost: {error}"))
            sources.add(source_id)
    outcome.record_sets = {sid: outcome.record_sets[sid]
                           for sid in sorted(outcome.record_sets)}
    outcome.per_source_seconds = {sid: outcome.per_source_seconds[sid]
                                  for sid in sorted(
                                      outcome.per_source_seconds)}
    outcome.problems = [problem
                        for sid in sorted(problems_by_source)
                        for problem in problems_by_source[sid]]
    outcome.health = {sid: health[sid] for sid in sorted(health)}
    return outcome


class ShardedExtractorManager(ExtractorManager):
    """Extractor manager whose step 4 runs on a supervised worker fleet.

    Construction is cheap: the fleet starts lazily on the first
    extraction and persists across queries until :meth:`close` (the
    middleware calls it on teardown and mapping reloads).  The
    coordinator *interleaves* extractions — concurrent callers' shard
    items share the workers under a fair-share scheduler — so
    ``query_many`` and concurrent server requests overlap on one fleet;
    admission quotas (:class:`~repro.core.resilience.config.FleetConfig.
    max_inflight_requests` / ``tenant_quota``) bound the backlog.

    By default each manager owns its coordinator.  :meth:`attach_fleet`
    instead binds the manager to a *shared* fleet (the server's
    ``--fleet N:pool:shared`` mode) as one registered tenant; a shared
    fleet's lifecycle belongs to whoever built it, so :meth:`close`
    leaves it running."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        concurrency = self.config.concurrency
        self._tenant = "default"
        self._fleet_shared = False
        self.fleet = QueryShardCoordinator(
            fleet=concurrency.fleet_config(),
            clock=self.config.clock,
            context_factory=self._worker_context,
            metrics=self.metrics,
            source_version=lambda: self.sources.version)

    def attach_fleet(self, fleet: QueryShardCoordinator, *,
                     tenant: str) -> None:
        """Route this manager's extractions through a shared fleet.

        Replaces the manager-owned coordinator: this manager's world is
        registered (or re-registered, after a mapping reload) under
        ``tenant``, and :meth:`close` no longer shuts the fleet down."""
        fleet.register_tenant(tenant, self._worker_context,
                              source_version=lambda: self.sources.version)
        self.fleet = fleet
        self._tenant = tenant
        self._fleet_shared = True

    def _worker_context(self) -> QueryWorkerContext:
        """The per-fleet worker context (shared live for thread pools,
        pickled per child for spawn pools).

        Workers extract their shard slice with the plain in-process
        engine — the fan-out *across* shards is the parallelism."""
        worker_resilience = replace(self.config,
                                    concurrency=ConcurrencyConfig())
        return QueryWorkerContext(
            attributes=self.attributes,
            sources=self.sources,
            resilience=worker_resilience,
            strict=self.strict,
            extractors=self.extractors,
            cache=self.cache,
            breakers=self.breakers)

    def extract(self, required, *, deadline=None, span: AnySpan = NULL_SPAN,
                schema: ExtractionSchema | None = None) -> ExtractionOutcome:
        started = time.perf_counter()
        if schema is None:
            schema = self.obtain_extraction_schema(required)
        if deadline is None:
            deadline = Deadline(self.config.deadline_seconds,
                                self.config.clock)
        elif not isinstance(deadline, Deadline):
            deadline = Deadline(float(deadline), self.config.clock)
        outcome = ExtractionOutcome(
            missing_attributes=list(schema.missing),
            deadline_seconds=deadline.seconds)
        source_ids = schema.source_ids()
        span.annotate(sources=len(source_ids),
                      entries=schema.entry_count(), parallel=True,
                      engine="sharded", workers=self.fleet.n_workers,
                      pool=self.fleet.pool_kind)
        if source_ids:
            run = self.fleet.execute(schema, deadline=deadline, span=span,
                                     tenant=self._tenant)
            if self.strict and run.failures:
                raise S2SError(next(iter(run.failures.values())))
            merge_started = time.perf_counter()
            with span.child("shard.merge", shards=len(run.partials),
                            failed=len(run.failures),
                            timed_out=len(run.timed_out)):
                merge_partials(outcome, run, deadline)
            if self.metrics is not None:
                self.metrics.histogram(
                    "shard_merge_seconds",
                    "time merging per-shard partial outcomes").observe(
                        time.perf_counter() - merge_started)
        for ledger in outcome.health.values():
            self.health.for_source(ledger.source_id).merge(ledger)
            # Worker-side retries surface on the coordinator counter so
            # `manager.retry_count` reads the same as in-process.
            self.retry_count += ledger.retries
        outcome.elapsed_seconds = time.perf_counter() - started
        if self.metrics is not None:
            self._record_outcome_metrics(outcome)
        return outcome

    def close(self) -> None:
        """Stop the fleet; the manager stays usable (lazy restart).

        A shared fleet is left running — its owner (the server) shuts
        it down once, after every tenant middleware has closed."""
        if not self._fleet_shared:
            self.fleet.shutdown()
