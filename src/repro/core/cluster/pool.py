"""Generic supervised worker pools: thread and spawn-subprocess.

Generalized from the ingest pipeline's worker pools so the sharded
query engine and the ingest coordinator share one fleet substrate.  A
pool owns ``n_workers`` shard workers; each worker runs a caller-
supplied *loop function* over a private inbox and reports plain-dict
events (``beat`` / ``done`` / ``stage`` / ``failed``) on a shared
results queue.  The loop function — not the pool — defines what a work
item means, which is how the same two pool flavours run both the
ingest stage waterfall and per-shard query extraction.

The loop contract::

    def loop(shard, inbox, results, ctx, *, cancel=None,
             in_subprocess=False) -> None:
        # drain inbox until the None sentinel; emit dicts carrying at
        # least {"kind": ..., "shard": shard} on results.put

Thread pools share the live context object (and therefore the
coordinator's clock, breakers and fault-injection state); subprocess
pools use the ``spawn`` start method deliberately — children re-import
the loop function by reference and re-pickle the context, enforcing
the pickling contract a distributed deployment would need.  A worker
that raises :class:`~repro.sources.flaky.WorkerCrashed` (or calls
``os._exit``) dies silently; supervision must notice on its own.
"""

from __future__ import annotations

import pickle
import queue as queue_module
import threading
from typing import Any, Callable, Protocol

#: Exit code a subprocess worker dies with on a scripted kill.
KILL_EXIT_CODE = 17

#: The worker main-loop callable a pool runs on each shard.
WorkerLoop = Callable[..., None]


class WorkerPool(Protocol):
    """What a coordinator requires of a pool of shard workers."""

    n_workers: int

    def start(self) -> None: ...
    def submit(self, shard: int, item: Any) -> None: ...
    def events(self, timeout: float) -> list[dict]: ...
    def alive(self, shard: int) -> bool: ...
    def restart(self, shard: int) -> None: ...
    def shutdown(self) -> None: ...


class _ThreadWorker:
    __slots__ = ("thread", "inbox", "cancel")

    def __init__(self, thread: threading.Thread,
                 inbox: "queue_module.Queue", cancel: threading.Event
                 ) -> None:
        self.thread = thread
        self.inbox = inbox
        self.cancel = cancel


class ThreadWorkerPool:
    """Shard workers as daemon threads sharing the process state.

    The cheap default: no pickling, shared fault-injection state (a
    scripted kill consumed by one worker is gone for all), and the
    coordinator's FakeClock is genuinely shared with the workers."""

    def __init__(self, ctx: Any, n_workers: int = 2, *,
                 loop: WorkerLoop, name: str = "worker") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.ctx = ctx
        self.n_workers = n_workers
        self.name = name
        self._loop = loop
        self.results: "queue_module.Queue[dict]" = queue_module.Queue()
        self._workers: dict[int, _ThreadWorker] = {}

    def _spawn(self, shard: int) -> _ThreadWorker:
        inbox: "queue_module.Queue" = queue_module.Queue()
        cancel = threading.Event()
        thread = threading.Thread(
            target=self._loop, args=(shard, inbox, self.results, self.ctx),
            kwargs={"cancel": cancel}, daemon=True,
            name=f"{self.name}-{shard}")
        thread.start()
        return _ThreadWorker(thread, inbox, cancel)

    def start(self) -> None:
        for shard in range(self.n_workers):
            self._workers[shard] = self._spawn(shard)

    def submit(self, shard: int, item: Any) -> None:
        self._workers[shard].inbox.put(item)

    def events(self, timeout: float) -> list[dict]:
        collected: list[dict] = []
        try:
            collected.append(self.results.get(timeout=timeout))
        except queue_module.Empty:
            return collected
        while True:
            try:
                collected.append(self.results.get_nowait())
            except queue_module.Empty:
                return collected

    def alive(self, shard: int) -> bool:
        worker = self._workers.get(shard)
        return worker is not None and worker.thread.is_alive()

    def restart(self, shard: int) -> None:
        old = self._workers.get(shard)
        if old is not None:
            old.cancel.set()  # release a hung worker, if that's the cause
        self._workers[shard] = self._spawn(shard)

    def shutdown(self) -> None:
        for worker in self._workers.values():
            worker.cancel.set()
            worker.inbox.put(None)
        for worker in self._workers.values():
            worker.thread.join(timeout=1.0)
        self._workers.clear()


def _subprocess_main(loop: WorkerLoop, shard: int, inbox, results, cancel,
                     context_bytes: bytes) -> None:
    """Top-level subprocess entry point (spawn requires importability).

    ``loop`` crosses the boundary by reference (a module-level function
    pickles as its dotted path), the context by value."""
    ctx = pickle.loads(context_bytes)
    loop(shard, inbox, results, ctx, cancel=cancel, in_subprocess=True)


class SubprocessWorkerPool:
    """Shard workers as spawned subprocesses (real process isolation).

    Everything crossing the boundary is pickled: the worker context at
    spawn, work items on dispatch, payloads on the way back — which is
    exactly the contract a distributed deployment would need.  A
    scripted kill here is a genuine ``os._exit``."""

    def __init__(self, ctx: Any, n_workers: int = 2, *,
                 loop: WorkerLoop, name: str = "worker") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        import multiprocessing
        self._mp = multiprocessing.get_context("spawn")
        self.ctx = ctx
        self.name = name
        self._loop = loop
        self._context_bytes = pickle.dumps(ctx)
        self.n_workers = n_workers
        self.results = self._mp.Queue()
        self._workers: dict[int, Any] = {}
        self._inboxes: dict[int, Any] = {}
        self._cancels: dict[int, Any] = {}

    def _spawn(self, shard: int) -> None:
        inbox = self._mp.Queue()
        cancel = self._mp.Event()
        process = self._mp.Process(
            target=_subprocess_main,
            args=(self._loop, shard, inbox, self.results, cancel,
                  self._context_bytes),
            daemon=True, name=f"{self.name}-{shard}")
        process.start()
        self._workers[shard] = process
        self._inboxes[shard] = inbox
        self._cancels[shard] = cancel

    def start(self) -> None:
        for shard in range(self.n_workers):
            self._spawn(shard)

    def submit(self, shard: int, item: Any) -> None:
        self._inboxes[shard].put(item)

    def events(self, timeout: float) -> list[dict]:
        collected: list[dict] = []
        try:
            collected.append(self.results.get(timeout=timeout))
        except queue_module.Empty:
            return collected
        while True:
            try:
                collected.append(self.results.get_nowait())
            except queue_module.Empty:
                return collected

    def alive(self, shard: int) -> bool:
        process = self._workers.get(shard)
        return process is not None and process.is_alive()

    def restart(self, shard: int) -> None:
        old = self._workers.get(shard)
        if old is not None and old.is_alive():
            self._cancels[shard].set()
            old.terminate()
            old.join(timeout=2.0)
        self._spawn(shard)

    def shutdown(self) -> None:
        for shard, process in list(self._workers.items()):
            self._cancels[shard].set()
            if process.is_alive():
                self._inboxes[shard].put(None)
        for process in self._workers.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
        self._workers.clear()
        self._inboxes.clear()
        self._cancels.clear()
