"""The query shard coordinator: an interleaving scheduler over one fleet.

One consumer query becomes one *sub-plan per shard*: the extraction
schema is filtered down to each shard's sources (replica mappings ride
along with their primary) and queued as a work item.  Unlike the PR 9
coordinator — which held a lock for a whole query's fan-out, so
concurrent callers serialized even while workers idled — the scheduler
admits **multiple in-flight requests at once** and interleaves their
shard items over the same workers:

* a background dispatcher thread drains the pool's event queue and
  keeps a per-request completion map keyed by the existing request
  ids;
* freed workers are fed from a fair-share ready queue — round-robin
  across in-flight requests, with per-tenant quotas
  (:class:`~repro.core.resilience.config.FleetConfig.tenant_quota`)
  bounding how many workers one tenant may occupy on a shared fleet;
* worker death mid-item is detected by liveness checks and heartbeat
  age on the injectable clock (:class:`~repro.core.cluster.supervision.
  WorkerSupervisor`, the same policy the ingest pipeline uses); only
  the dead worker's item is released — back to the *front* of its
  request's queue — while every other request keeps streaming.  A
  worker that exhausts its restart budget degrades its current item's
  sources into reported problems instead of failing the answer.

Admission is quota-checked up front: a query past the fleet-wide
``max_inflight_requests`` cap (or a tenant past its shard quota)
raises :class:`~repro.errors.FleetQuotaExceeded`, which the server
maps onto its RETRY_AFTER pushback frame.

Thread-pool workers share the coordinator manager's live collaborators
(breakers, fragment cache, source repositories, clock), so sharded
answers are entity-for-entity identical to in-process execution.
Spawn-subprocess workers hold *pickled replicas* of the repositories,
taken when the fleet starts; the coordinator watches every registered
tenant's source-repository mutation version and rebuilds the fleet —
at the next idle moment — when any of them change.  See
``docs/cluster.md`` for the full failure model and scheduler shape.
"""

from __future__ import annotations

import threading
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ...clock import Clock
from ...errors import FleetQuotaExceeded, S2SError
from ...obs import NULL_SPAN, MetricsRegistry
from ...sources.flaky import WorkerCrashed
from ..extractor.extractors import ExtractorRegistry
from ..extractor.manager import ExtractorManager
from ..extractor.schema import ExtractionSchema
from ..mapping.rules import TransformRegistry
from ..resilience import Deadline
from ..resilience.config import UNSET, FleetConfig, ResilienceConfig
from .pool import SubprocessWorkerPool, ThreadWorkerPool, WorkerPool
from .sharding import partition_sources
from .supervision import WorkerSupervisor

#: Pool kinds the sharded engine accepts.
QUERY_POOL_KINDS = ("thread", "spawn")


@dataclass
class QueryWorkerContext:
    """Everything a query worker needs, picklable as a unit.

    Thread workers share the coordinator manager's live collaborators
    (``extractors``, ``cache``, ``breakers``); those do not cross the
    spawn boundary — subprocess children rebuild a default extractor
    registry and their own (per-child) breakers from the resilience
    config, which is the same trade a distributed deployment makes.
    """

    attributes: Any  # AttributeRepository
    sources: Any  # DataSourceRepository
    resilience: ResilienceConfig
    strict: bool = False
    extractors: ExtractorRegistry | None = None
    cache: Any = None  # FragmentCache | None, thread-shared only
    breakers: Any = None  # CircuitBreakerRegistry | None, thread-shared only
    killable: Any = None  # KillableWorker | None
    manager: ExtractorManager | None = field(default=None, repr=False)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["extractors"] = None  # transform lambdas don't pickle
        state["cache"] = None
        state["breakers"] = None
        state["manager"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def manager_for_worker(self) -> ExtractorManager:
        """The (lazily built) in-process manager a worker extracts with.

        Thread workers adopt the coordinator manager's breaker registry
        and fragment cache so breaker state and cached fragments behave
        exactly as in-process execution; a spawned child builds its own.
        Metrics stay off — the coordinator records per-query metrics
        once, on the merged outcome."""
        if self.manager is None:
            manager = ExtractorManager(
                self.attributes, self.sources,
                self.extractors or ExtractorRegistry(TransformRegistry()),
                strict=self.strict, cache=self.cache,
                resilience=self.resilience, metrics=None)
            if self.breakers is not None:
                manager.breakers = self.breakers
            self.manager = manager
        return self.manager


@dataclass
class FleetWorkerContext:
    """A shared fleet's worker context: one per-tenant context each.

    Work items carry their tenant name; the worker resolves the right
    :class:`QueryWorkerContext` (and therefore the right repositories,
    breakers and cache) per item.  Picklable as a unit — each tenant
    context applies its own ``__getstate__`` discipline — so the spawn
    pool ships a whole multi-tenant world to each child."""

    contexts: dict[str, QueryWorkerContext]
    killable: Any = None

    def for_tenant(self, tenant: str) -> QueryWorkerContext:
        return self.contexts[tenant]


@dataclass
class QueryWorkItem:
    """One dispatched sub-plan: a shard's slice of one query's schema."""

    request_id: str
    shard: int
    source_ids: list[str]
    schema: ExtractionSchema
    deadline_seconds: float | None = None
    tenant: str = "default"


def subschema_for(schema: ExtractionSchema,
                  source_ids: list[str]) -> ExtractionSchema:
    """The shard-local slice of one extraction schema.

    Replica mappings whose *primary* lives on this shard ride along, so
    per-entry failover works even when the replica's own source is
    sharded elsewhere (every worker holds the full source repository).
    ``missing`` stays empty — unmapped attributes are a whole-plan fact
    the coordinator stamps on the merged outcome."""
    wanted = set(source_ids)
    return ExtractionSchema(
        requested=list(schema.requested),
        by_source={sid: list(schema.by_source[sid]) for sid in source_ids},
        replicas={key: list(entries)
                  for key, entries in schema.replicas.items()
                  if key[1] in wanted})


def run_query_item(shard: int, item: QueryWorkItem, ctx, emit, *,
                   cancel: Any = None, in_subprocess: bool = False) -> None:
    """Run one sub-plan, emitting progress events.

    ``emit`` receives plain dicts.  ``shard`` is the *worker index*
    (for supervisor heartbeats); events also carry ``item_shard`` — the
    item's own shard id — because the interleaving scheduler assigns
    items to whichever worker frees up, so the two no longer coincide.
    :class:`WorkerCrashed` propagates — the caller's loop dies with it,
    which is the point."""
    emit({"kind": "beat", "shard": shard, "request_id": item.request_id,
          "item_shard": item.shard})
    worker_ctx = (ctx.for_tenant(item.tenant)
                  if hasattr(ctx, "for_tenant") else ctx)
    if worker_ctx.killable is not None:
        probe = item.source_ids[0] if item.source_ids else ""
        worker_ctx.killable.check(probe, "QUERY", cancel=cancel,
                                  in_subprocess=in_subprocess)
    manager = worker_ctx.manager_for_worker()
    deadline = (None if item.deadline_seconds is None
                else Deadline(item.deadline_seconds,
                              worker_ctx.resilience.clock))
    try:
        outcome = manager.extract([], schema=item.schema, deadline=deadline)
    except S2SError as exc:
        # Strict-mode extraction raises instead of recording problems;
        # surface the failure so the coordinator can re-raise it.
        emit({"kind": "failed", "shard": shard,
              "request_id": item.request_id, "item_shard": item.shard,
              "error": str(exc)})
        return
    emit({"kind": "done", "shard": shard, "request_id": item.request_id,
          "item_shard": item.shard, "payload": outcome})


def query_worker_loop(shard: int, inbox, results, ctx, *,
                      cancel: Any = None,
                      in_subprocess: bool = False) -> None:
    """The query worker main loop: drain the inbox until the None
    sentinel.  Shared verbatim by thread and subprocess workers."""
    while True:
        item = inbox.get()
        if item is None:
            return
        try:
            run_query_item(shard, item, ctx, results.put, cancel=cancel,
                           in_subprocess=in_subprocess)
        except WorkerCrashed:
            # Simulated sudden death: exit the loop without reporting
            # anything — no failure event, no further heartbeats.  The
            # supervisor must notice on its own.
            return


@dataclass
class ShardRunResult:
    """What one fleet execution produced, before merging."""

    partials: dict[int, Any] = field(default_factory=dict)
    failures: dict[int, str] = field(default_factory=dict)
    timed_out: set[int] = field(default_factory=set)
    items: dict[int, QueryWorkItem] = field(default_factory=dict)
    redispatches: int = 0


class _InflightRequest:
    """One admitted query's scheduler state: the completion map entry."""

    __slots__ = ("request_id", "tenant", "deadline", "result", "ready",
                 "running", "pending", "spans", "run_span", "finished",
                 "peak_inflight")

    def __init__(self, request_id: str, tenant: str,
                 deadline: Deadline) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.deadline = deadline
        self.result = ShardRunResult()
        #: Shard ids waiting for a worker, in dispatch order.  A dead
        #: worker's item goes back to the *front* so recovery does not
        #: queue behind the request's own backlog.
        self.ready: deque[int] = deque()
        #: shard id -> worker index, for items currently executing.
        self.running: dict[int, int] = {}
        #: Shard ids not yet resolved (done, failed or timed out).
        self.pending: set[int] = set()
        self.spans: dict[int, Any] = {}
        self.run_span: Any = NULL_SPAN
        self.finished = threading.Event()
        self.peak_inflight = 1

    def backlog(self) -> int:
        """In-flight shard items (running + queued) — the quota unit."""
        return len(self.running) + len(self.ready)


#: Legacy QueryShardCoordinator kwargs and their FleetConfig fields.
_LEGACY_FLEET_KWARGS = ("n_workers", "pool", "heartbeat_timeout",
                        "poll_seconds", "real_poll_seconds",
                        "max_worker_restarts")


class QueryShardCoordinator:
    """Owns one query fleet: lifecycle, interleaved dispatch, supervision.

    The fleet is persistent across queries: workers start on first use
    and survive until :meth:`shutdown` (or a source-repository mutation
    forces a rebuild so spawned children never serve a stale replica of
    the mapping).  Multiple queries are in flight at once — see the
    module docstring for the scheduling model.  One coordinator can
    serve several tenants (:meth:`register_tenant`), which is how the
    server shares one fleet across namespaces.

    The per-worker restart budget is reclaimed whenever the fleet goes
    *idle* (no requests in flight) — the interleaved generalization of
    PR 9's per-query reset: a worker lost to an earlier query's chaos
    never pre-spends a fresh workload's budget, and a budget can never
    be reset under a query that is still draining."""

    def __init__(self, *, clock: Clock,
                 context_factory: Callable[[], QueryWorkerContext]
                 | None = None,
                 fleet: FleetConfig | None = None,
                 restart_policy=None,
                 metrics: MetricsRegistry | None = None,
                 source_version: Callable[[], int] | None = None,
                 n_workers: Any = UNSET, pool: Any = UNSET,
                 heartbeat_timeout: Any = UNSET,
                 poll_seconds: Any = UNSET,
                 real_poll_seconds: Any = UNSET,
                 max_worker_restarts: Any = UNSET) -> None:
        legacy = {name: value for name, value in
                  zip(_LEGACY_FLEET_KWARGS,
                      (n_workers, pool, heartbeat_timeout, poll_seconds,
                       real_poll_seconds, max_worker_restarts))
                  if value is not UNSET}
        if legacy:
            if fleet is not None:
                raise ValueError(
                    "pass either fleet=FleetConfig(...) or the legacy "
                    "kwargs, not both")
            warnings.warn(
                f"QueryShardCoordinator({', '.join(sorted(legacy))}=) is "
                f"deprecated; pass fleet=FleetConfig(...) instead",
                DeprecationWarning, stacklevel=2)
            fleet = FleetConfig(**legacy)
        self.fleet_config = fleet or FleetConfig()
        self.clock = clock
        self.metrics = metrics
        #: Scripted fault injection consulted when the fleet starts
        #: (chaos tests set this before the first query).
        self.killable: Any = None
        self.supervisor = WorkerSupervisor(
            clock, heartbeat_timeout=self.fleet_config.heartbeat_timeout,
            restart_policy=restart_policy,
            max_restarts=self.fleet_config.max_worker_restarts,
            metrics=metrics)
        self._tenants: dict[str, dict] = {}
        self._registrations = 0
        self._pool: WorkerPool | None = None
        self._versions: dict[str, tuple] = {}
        self._request_seq = 0
        self._lock = threading.RLock()
        self._requests: dict[str, _InflightRequest] = {}
        self._rr: deque[str] = deque()
        #: worker index -> (request_id, shard id) currently assigned.
        self._assignments: dict[int, tuple[str, int]] = {}
        self._dispatcher: threading.Thread | None = None
        self._stop_dispatcher = threading.Event()
        self._wake = threading.Event()
        self._draining = False
        if context_factory is not None:
            self.register_tenant("default", context_factory,
                                 source_version=source_version)

    # -- compat mirrors of the fleet config ---------------------------------

    @property
    def n_workers(self) -> int:
        return self.fleet_config.n_workers

    @property
    def pool_kind(self) -> str:
        return self.fleet_config.pool

    @property
    def poll_seconds(self) -> float:
        return self.fleet_config.poll_seconds

    @property
    def max_worker_restarts(self) -> int:
        return self.fleet_config.max_worker_restarts

    # -- tenants -------------------------------------------------------------

    def register_tenant(self, name: str,
                        context_factory: Callable[[], QueryWorkerContext],
                        *, source_version: Callable[[], int] | None = None
                        ) -> None:
        """Serve ``name``'s queries from this fleet.

        Re-registering a tenant (a middleware rebuilt after a mapping
        reload) replaces its context factory; the fleet rebuilds at the
        next idle moment so workers pick up the new world."""
        with self._lock:
            self._registrations += 1
            self._tenants[name] = {
                "context_factory": context_factory,
                "source_version": source_version,
                "generation": self._registrations,
            }

    def _tenant_versions(self) -> dict[str, tuple]:
        return {name: (entry["generation"],
                       entry["source_version"]()
                       if entry["source_version"] is not None else None)
                for name, entry in self._tenants.items()}

    # -- fleet lifecycle ---------------------------------------------------

    def _build_pool(self) -> WorkerPool:
        contexts: dict[str, QueryWorkerContext] = {}
        for name, entry in self._tenants.items():
            context = entry["context_factory"]()
            context.killable = self.killable
            contexts[name] = context
        if set(contexts) == {"default"}:
            # Single-tenant fleets keep the PR 9 wiring: the pool
            # context *is* the worker context (same pickling surface).
            ctx: Any = contexts["default"]
        else:
            ctx = FleetWorkerContext(contexts, killable=self.killable)
        if self.pool_kind == "spawn":
            return SubprocessWorkerPool(ctx, self.n_workers,
                                        loop=query_worker_loop,
                                        name="query-worker")
        return ThreadWorkerPool(ctx, self.n_workers,
                                loop=query_worker_loop,
                                name="query-worker")

    def ensure_started(self) -> None:
        """Start the fleet, or rebuild it after a source mutation.

        Spawned children work on repository replicas pickled at fleet
        start; when any registered tenant's live source repository has
        mutated since (its version moved), the stale fleet is torn
        down and respawned so children never answer from a replica the
        caller already replaced.  The rebuild is deferred while
        requests are in flight — they drain on the pool they started
        on — and happens at the next idle admission."""
        with self._lock:
            versions = self._tenant_versions()
            if (self._pool is not None and versions != self._versions
                    and not self._requests):
                self._teardown_locked()
            if self._pool is None:
                if not self._tenants:
                    raise S2SError("the query fleet has no tenants "
                                   "registered")
                pool = self._build_pool()
                pool.start()
                self._pool = pool
                self._versions = versions
                self.supervisor.reset(range(self.n_workers))
                self._start_dispatcher(pool)

    def _start_dispatcher(self, pool: WorkerPool) -> None:
        stop = threading.Event()
        self._stop_dispatcher = stop
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, args=(pool, stop),
            name="query-fleet-dispatcher", daemon=True)
        self._dispatcher.start()

    def _teardown_locked(self) -> None:
        """Stop the pool and release the dispatcher.

        Only legal with no requests in flight (callers drain or cancel
        first).  The dispatcher is signalled, not joined — it exits on
        its next loop iteration once it observes the pool swap, and a
        generation check keeps a lame-duck dispatcher from ever
        touching the successor fleet's state."""
        pool = self._pool
        self._pool = None
        self._dispatcher = None
        self._stop_dispatcher.set()
        self._wake.set()
        self._assignments.clear()
        if pool is not None:
            pool.shutdown()

    def shutdown(self, *, cancel: bool = False,
                 timeout: float = 30.0) -> None:
        """Stop the fleet; the next query transparently restarts it.

        Never tears the pool out from under an in-flight ``execute``:
        by default shutdown *drains* — it blocks new admissions and
        waits (up to ``timeout``) for in-flight requests to finish on
        the live fleet.  With ``cancel=True`` (or on drain timeout)
        the remaining items are failed instead, so every waiter wakes
        with a degraded — but well-formed — result."""
        with self._lock:
            self._draining = True
            if cancel:
                self._cancel_requests_locked(
                    "query fleet shut down while the shard was in flight")
            waiting = list(self._requests.values())
        try:
            deadline = None if not waiting else timeout
            for request in waiting:
                if not request.finished.wait(timeout=deadline):
                    break
            with self._lock:
                # Drain timed out (or raced a late admission): degrade
                # whatever is left rather than wedging the waiters.
                if self._requests:
                    self._cancel_requests_locked(
                        "query fleet shut down while the shard was "
                        "in flight")
                self._teardown_locked()
        finally:
            self._draining = False

    def _cancel_requests_locked(self, message: str) -> None:
        for request in list(self._requests.values()):
            for shard in sorted(request.pending):
                request.result.failures[shard] = message
                span = request.spans.get(shard)
                if span is not None:
                    span.fail(message)
                    span.finish()
            request.pending.clear()
            request.ready.clear()
            request.running.clear()
            self._finalize_locked(request)

    @property
    def started(self) -> bool:
        return self._pool is not None

    def snapshot(self) -> dict:
        """The fleet block for STATUS replies and ``client --status``."""
        with self._lock:
            config = self.fleet_config
            return {
                "workers": config.n_workers,
                "pool": config.pool,
                "shared": len(self._tenants) > 1,
                "tenants": sorted(self._tenants),
                "started": self._pool is not None,
                "inflight_requests": len(self._requests),
                "ready_queue_depth": sum(len(r.ready)
                                         for r in self._requests.values()),
                "max_inflight_requests": config.max_inflight_requests,
                "tenant_quota": config.tenant_quota,
            }

    # -- admission ----------------------------------------------------------

    def execute(self, schema: ExtractionSchema, *, deadline: Deadline,
                span=NULL_SPAN, tenant: str = "default") -> ShardRunResult:
        """Admit one query's fan-out and block until its shards resolve.

        Returns the per-shard partial outcomes plus the shards that
        failed (restart budget exhausted, or a strict-mode error) or
        timed out; merging is the caller's job
        (:func:`~repro.core.cluster.manager.merge_partials`).  Raises
        :class:`~repro.errors.FleetQuotaExceeded` when an admission
        quota refuses the query."""
        request = self._admit(schema, deadline, span, tenant)
        self._wake.set()
        request.finished.wait()
        return request.result

    def _admit(self, schema: ExtractionSchema, deadline: Deadline, span,
               tenant: str) -> _InflightRequest:
        with self._lock:
            if self._draining:
                raise S2SError("the query fleet is shutting down")
            if tenant not in self._tenants:
                raise S2SError(f"tenant {tenant!r} is not registered "
                               f"with this fleet")
            config = self.fleet_config
            if (config.max_inflight_requests is not None
                    and len(self._requests)
                    >= config.max_inflight_requests):
                self._reject_locked(
                    tenant, "fleet",
                    f"fleet is at its in-flight request quota "
                    f"({config.max_inflight_requests})")
            if config.tenant_quota is not None:
                backlog = sum(request.backlog()
                              for request in self._requests.values()
                              if request.tenant == tenant)
                if backlog >= config.tenant_quota:
                    self._reject_locked(
                        tenant, "tenant",
                        f"tenant {tenant!r} is at its in-flight shard "
                        f"quota ({config.tenant_quota})")
            self.ensure_started()
            if not self._requests:
                # The restart budget is per workload: a worker lost to
                # an earlier query's chaos must not pre-spend a fresh
                # one's.  Only an idle fleet may reclaim it — a reset
                # mid-flight would erase another query's death
                # bookkeeping.
                self.supervisor.reset(range(self.n_workers))
            self._request_seq += 1
            request_id = f"q{self._request_seq}"
            request = _InflightRequest(request_id, tenant, deadline)
            request.run_span = span.child(
                "shard.interleave", tenant=tenant,
                inflight=len(self._requests) + 1)
            shard_map = partition_sources(schema.source_ids(),
                                          self.n_workers)
            for shard, source_ids in sorted(shard_map.items()):
                item = QueryWorkItem(request_id, shard, source_ids,
                                     subschema_for(schema, source_ids),
                                     tenant=tenant)
                request.result.items[shard] = item
                request.pending.add(shard)
                request.ready.append(shard)
                request.spans[shard] = request.run_span.child(
                    "shard.enqueue", shard=shard, sources=len(source_ids))
            self._requests[request_id] = request
            self._rr.append(request_id)
            inflight = len(self._requests)
            for other in self._requests.values():
                other.peak_inflight = max(other.peak_inflight, inflight)
            if not request.pending:
                self._finalize_locked(request)
            else:
                self._feed_workers_locked()
            self._update_gauges()
            return request

    def _reject_locked(self, tenant: str, scope: str, message: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "fleet_quota_rejections_total",
                "fleet admissions refused by quota").inc(
                    tenant=tenant, scope=scope)
        raise FleetQuotaExceeded(message, tenant=tenant, scope=scope)

    # -- the dispatcher ------------------------------------------------------

    def _dispatch_loop(self, pool: WorkerPool,
                       stop: threading.Event) -> None:
        """Drain events, supervise, feed free workers — for one pool's
        lifetime.  A lame-duck dispatcher (its pool replaced under it)
        exits without touching the successor's state."""
        config = self.fleet_config
        while not stop.is_set():
            with self._lock:
                if self._pool is not pool:
                    return
                busy = bool(self._requests)
            if not busy:
                self._wake.wait(timeout=0.05)
                self._wake.clear()
                continue
            events = pool.events(config.real_poll_seconds)
            with self._lock:
                if self._pool is not pool:
                    return
                progressed = self._tick(pool, events)
            if not events and not progressed:
                # Idle beat: advance the (possibly fake) clock so
                # heartbeat ages, restart backoffs and deadlines make
                # progress.
                self.clock.sleep(config.poll_seconds)

    def _tick(self, pool: WorkerPool, events: list[dict]) -> bool:
        """One scheduler pass under the lock; True when state moved."""
        progressed = False
        for event in events:
            if self._apply_event_locked(event):
                progressed = True
        if self._expire_deadlines_locked():
            progressed = True
        for request in [r for r in self._requests.values()
                        if not r.pending]:
            self._finalize_locked(request)
            progressed = True
        if self._supervise_locked(pool):
            progressed = True
        if self._feed_workers_locked():
            progressed = True
        self._update_gauges()
        return progressed

    def _apply_event_locked(self, event: dict) -> bool:
        worker = event.get("shard")
        if worker is not None:
            self.supervisor.beat(worker)
        kind = event.get("kind")
        if kind not in ("done", "failed"):
            return False
        request_id = event.get("request_id")
        item_shard = event.get("item_shard", worker)
        progressed = False
        if self._assignments.get(worker) == (request_id, item_shard):
            # The worker finished its assigned item (or a late event
            # from a cancelled incarnation landed *after* the same item
            # was re-assigned to it — either way this worker is free).
            del self._assignments[worker]
            progressed = True
        request = self._requests.get(request_id)
        if request is None or item_shard not in request.pending:
            return progressed  # stale event from an abandoned attempt
        if request.running.get(item_shard) != worker:
            # A previous incarnation of the item reporting after its
            # worker was declared dead and the item re-dispatched: take
            # the answer anyway (it is just as correct) only when the
            # item has not already resolved — covered by the pending
            # check above.
            request.running.pop(item_shard, None)
        else:
            request.running.pop(item_shard, None)
        request.pending.discard(item_shard)
        span = request.spans[item_shard]
        if kind == "done":
            request.result.partials[item_shard] = event["payload"]
            span.annotate(outcome="done")
        else:
            request.result.failures[item_shard] = event.get(
                "error", "unknown worker failure")
            span.fail(request.result.failures[item_shard])
        span.finish()
        return True

    def _expire_deadlines_locked(self) -> bool:
        progressed = False
        for request in list(self._requests.values()):
            if not request.pending or not request.deadline.expired:
                continue
            for shard in sorted(request.pending):
                span = request.spans[shard]
                span.annotate(outcome="deadline")
                span.finish()
            request.result.timed_out = set(request.pending)
            request.pending.clear()
            request.ready.clear()
            # Workers still chewing on abandoned items stay assigned —
            # they are genuinely busy — and free themselves when their
            # (now stale) events arrive.
            request.running.clear()
            self._finalize_locked(request)
            progressed = True
        return progressed

    def _supervise_locked(self, pool: WorkerPool) -> bool:
        busy = set(self._assignments)
        has_ready = any(request.ready
                        for request in self._requests.values())
        # A dead-but-idle worker only matters when there is queued work
        # it could be serving; otherwise it must not burn the restart
        # budget while other shards drain.
        relevant = set(range(pool.n_workers)) if has_ready else set(busy)
        verdict = self.supervisor.supervise(pool, busy=busy,
                                            relevant=relevant)
        progressed = bool(verdict.restarted)
        for worker in verdict.deaths:
            if self._release_worker_locked(worker, aborted=False):
                progressed = True
        if verdict.aborted is not None:
            if self._release_worker_locked(verdict.aborted, aborted=True):
                progressed = True
        return progressed

    def _release_worker_locked(self, worker: int, *,
                               aborted: bool) -> bool:
        """A worker died (or aborted past its budget): release its item.

        Only the dead worker's item moves — to the front of its own
        request's ready queue (or, past the budget, into failures) —
        while every other request keeps streaming."""
        assignment = self._assignments.pop(worker, None)
        if assignment is None:
            return False
        request_id, shard = assignment
        request = self._requests.get(request_id)
        if request is None or shard not in request.pending:
            return False
        request.running.pop(shard, None)
        if aborted:
            message = (f"worker shard {worker} exceeded its restart "
                       f"budget ({self.max_worker_restarts})")
            request.result.failures[shard] = message
            request.pending.discard(shard)
            request.spans[shard].fail(message)
            request.spans[shard].finish()
        else:
            request.ready.appendleft(shard)
            request.result.redispatches += 1
            request.spans[shard].annotate(redispatched=True)
        return True

    def _feed_workers_locked(self) -> int:
        """Fair-share dispatch: free workers take the next ready item,
        round-robin across requests, skipping tenants at quota."""
        pool = self._pool
        if pool is None or not self._rr:
            return 0
        free = [worker for worker in range(self.n_workers)
                if worker not in self._assignments
                and worker not in self.supervisor.restart_at
                and pool.alive(worker)]
        if not free:
            return 0
        quota = self.fleet_config.tenant_quota
        occupancy: dict[str, int] = {}
        for request_id, _shard in self._assignments.values():
            request = self._requests.get(request_id)
            if request is not None:
                occupancy[request.tenant] = \
                    occupancy.get(request.tenant, 0) + 1
        fed = 0
        skipped = 0
        while free and self._rr and skipped < len(self._rr):
            request_id = self._rr[0]
            self._rr.rotate(-1)
            request = self._requests.get(request_id)
            if request is None or not request.ready:
                skipped += 1
                continue
            if (quota is not None
                    and occupancy.get(request.tenant, 0) >= quota):
                skipped += 1
                continue
            shard = request.ready.popleft()
            worker = free.pop(0)
            item = request.result.items[shard]
            item.deadline_seconds = (None if request.deadline.unbounded
                                     else request.deadline.remaining())
            self._assignments[worker] = (request_id, shard)
            request.running[shard] = worker
            occupancy[request.tenant] = \
                occupancy.get(request.tenant, 0) + 1
            request.spans[shard].annotate(worker=worker)
            pool.submit(worker, item)
            if self.metrics is not None:
                self.metrics.counter(
                    "shard_dispatches_total",
                    "query sub-plans dispatched to shard workers").inc(
                        shard=shard)
            fed += 1
            skipped = 0
        return fed

    def _finalize_locked(self, request: _InflightRequest) -> None:
        self._requests.pop(request.request_id, None)
        try:
            self._rr.remove(request.request_id)
        except ValueError:
            pass
        result = request.result
        outcome = ("deadline" if result.timed_out
                   else "degraded" if result.failures else "done")
        request.run_span.annotate(outcome=outcome,
                                  redispatches=result.redispatches,
                                  peak_inflight=request.peak_inflight)
        request.run_span.finish()
        self._update_gauges()
        request.finished.set()

    def _update_gauges(self) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge(
            "fleet_interleaved_requests",
            "queries currently interleaved over the fleet").set(
                len(self._requests))
        self.metrics.gauge(
            "fleet_ready_queue_depth",
            "shard items waiting for a free worker").set(
                sum(len(request.ready)
                    for request in self._requests.values()))
