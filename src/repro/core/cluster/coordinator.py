"""The query shard coordinator: per-query fan-out over a worker fleet.

One consumer query becomes one *sub-plan per shard*: the extraction
schema is filtered down to each shard's sources (replica mappings ride
along with their primary) and dispatched to that shard's worker, which
runs a plain in-process :class:`~repro.core.extractor.manager.\
ExtractorManager` extraction over its slice and sends the partial
:class:`~repro.core.extractor.manager.ExtractionOutcome` back on the
event queue.  The coordinator supervises the fleet while draining —
worker death mid-query is detected by liveness checks and heartbeat
age on the injectable clock (:class:`~repro.core.cluster.supervision.\
WorkerSupervisor`, the same policy the ingest pipeline uses), the dead
worker is restarted with jittered backoff and its sub-plan
re-dispatched, so a killed worker never loses a query.  A shard that
exhausts its restart budget degrades its sources into reported
problems instead of failing the answer.

Thread-pool workers share the coordinator manager's live collaborators
(breakers, fragment cache, source repositories, clock), so sharded
answers are entity-for-entity identical to in-process execution.
Spawn-subprocess workers hold *pickled replicas* of the repositories,
taken when the fleet starts; the coordinator watches the source
repository's mutation version and rebuilds the fleet when it changes.
See ``docs/cluster.md`` for the full failure model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ...clock import Clock
from ...errors import S2SError
from ...obs import NULL_SPAN, MetricsRegistry
from ...sources.flaky import WorkerCrashed
from ..extractor.extractors import ExtractorRegistry
from ..extractor.manager import ExtractorManager
from ..extractor.schema import ExtractionSchema
from ..mapping.rules import TransformRegistry
from ..resilience import Deadline
from ..resilience.config import ResilienceConfig
from .pool import SubprocessWorkerPool, ThreadWorkerPool, WorkerPool
from .sharding import partition_sources
from .supervision import WorkerSupervisor

#: Pool kinds the sharded engine accepts.
QUERY_POOL_KINDS = ("thread", "spawn")


@dataclass
class QueryWorkerContext:
    """Everything a query worker needs, picklable as a unit.

    Thread workers share the coordinator manager's live collaborators
    (``extractors``, ``cache``, ``breakers``); those do not cross the
    spawn boundary — subprocess children rebuild a default extractor
    registry and their own (per-child) breakers from the resilience
    config, which is the same trade a distributed deployment makes.
    """

    attributes: Any  # AttributeRepository
    sources: Any  # DataSourceRepository
    resilience: ResilienceConfig
    strict: bool = False
    extractors: ExtractorRegistry | None = None
    cache: Any = None  # FragmentCache | None, thread-shared only
    breakers: Any = None  # CircuitBreakerRegistry | None, thread-shared only
    killable: Any = None  # KillableWorker | None
    manager: ExtractorManager | None = field(default=None, repr=False)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["extractors"] = None  # transform lambdas don't pickle
        state["cache"] = None
        state["breakers"] = None
        state["manager"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def manager_for_worker(self) -> ExtractorManager:
        """The (lazily built) in-process manager a worker extracts with.

        Thread workers adopt the coordinator manager's breaker registry
        and fragment cache so breaker state and cached fragments behave
        exactly as in-process execution; a spawned child builds its own.
        Metrics stay off — the coordinator records per-query metrics
        once, on the merged outcome."""
        if self.manager is None:
            manager = ExtractorManager(
                self.attributes, self.sources,
                self.extractors or ExtractorRegistry(TransformRegistry()),
                strict=self.strict, cache=self.cache,
                resilience=self.resilience, metrics=None)
            if self.breakers is not None:
                manager.breakers = self.breakers
            self.manager = manager
        return self.manager


@dataclass
class QueryWorkItem:
    """One dispatched sub-plan: a shard's slice of one query's schema."""

    request_id: str
    shard: int
    source_ids: list[str]
    schema: ExtractionSchema
    deadline_seconds: float | None = None


def subschema_for(schema: ExtractionSchema,
                  source_ids: list[str]) -> ExtractionSchema:
    """The shard-local slice of one extraction schema.

    Replica mappings whose *primary* lives on this shard ride along, so
    per-entry failover works even when the replica's own source is
    sharded elsewhere (every worker holds the full source repository).
    ``missing`` stays empty — unmapped attributes are a whole-plan fact
    the coordinator stamps on the merged outcome."""
    wanted = set(source_ids)
    return ExtractionSchema(
        requested=list(schema.requested),
        by_source={sid: list(schema.by_source[sid]) for sid in source_ids},
        replicas={key: list(entries)
                  for key, entries in schema.replicas.items()
                  if key[1] in wanted})


def run_query_item(shard: int, item: QueryWorkItem, ctx: QueryWorkerContext,
                   emit, *, cancel: Any = None,
                   in_subprocess: bool = False) -> None:
    """Run one sub-plan, emitting progress events.

    ``emit`` receives plain dicts.  :class:`WorkerCrashed` propagates —
    the caller's loop dies with it, which is the point."""
    emit({"kind": "beat", "shard": shard, "request_id": item.request_id})
    if ctx.killable is not None:
        probe = item.source_ids[0] if item.source_ids else ""
        ctx.killable.check(probe, "QUERY", cancel=cancel,
                           in_subprocess=in_subprocess)
    manager = ctx.manager_for_worker()
    deadline = (None if item.deadline_seconds is None
                else Deadline(item.deadline_seconds,
                              ctx.resilience.clock))
    try:
        outcome = manager.extract([], schema=item.schema, deadline=deadline)
    except S2SError as exc:
        # Strict-mode extraction raises instead of recording problems;
        # surface the failure so the coordinator can re-raise it.
        emit({"kind": "failed", "shard": shard,
              "request_id": item.request_id, "error": str(exc)})
        return
    emit({"kind": "done", "shard": shard, "request_id": item.request_id,
          "payload": outcome})


def query_worker_loop(shard: int, inbox, results,
                      ctx: QueryWorkerContext, *, cancel: Any = None,
                      in_subprocess: bool = False) -> None:
    """The query worker main loop: drain the inbox until the None
    sentinel.  Shared verbatim by thread and subprocess workers."""
    while True:
        item = inbox.get()
        if item is None:
            return
        try:
            run_query_item(shard, item, ctx, results.put, cancel=cancel,
                           in_subprocess=in_subprocess)
        except WorkerCrashed:
            # Simulated sudden death: exit the loop without reporting
            # anything — no failure event, no further heartbeats.  The
            # supervisor must notice on its own.
            return


@dataclass
class ShardRunResult:
    """What one fleet execution produced, before merging."""

    partials: dict[int, Any] = field(default_factory=dict)
    failures: dict[int, str] = field(default_factory=dict)
    timed_out: set[int] = field(default_factory=set)
    items: dict[int, QueryWorkItem] = field(default_factory=dict)
    redispatches: int = 0


class QueryShardCoordinator:
    """Owns one tenant's query fleet: lifecycle, dispatch, supervision.

    One coordinator serializes its queries — a query's fan-out owns the
    whole fleet until its shards drain (concurrent callers queue on the
    coordinator lock; admission control upstream bounds how many).  The
    fleet itself is persistent across queries: workers start on first
    use and survive until :meth:`shutdown` (or a source-repository
    mutation forces a rebuild so spawned children never serve a stale
    replica of the mapping)."""

    def __init__(self, *, n_workers: int = 2, pool: str = "thread",
                 clock: Clock,
                 context_factory: Callable[[], QueryWorkerContext],
                 heartbeat_timeout: float = 30.0,
                 poll_seconds: float = 0.05,
                 real_poll_seconds: float = 0.02,
                 max_worker_restarts: int = 3,
                 restart_policy=None,
                 metrics: MetricsRegistry | None = None,
                 source_version: Callable[[], int] | None = None) -> None:
        if pool not in QUERY_POOL_KINDS:
            raise ValueError(
                f"pool must be one of {QUERY_POOL_KINDS}, not {pool!r}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.pool_kind = pool
        self.clock = clock
        self.context_factory = context_factory
        self.poll_seconds = poll_seconds
        self.real_poll_seconds = real_poll_seconds
        self.max_worker_restarts = max_worker_restarts
        self.metrics = metrics
        self.source_version = source_version
        #: Scripted fault injection consulted when the fleet starts
        #: (chaos tests set this before the first query).
        self.killable: Any = None
        self.supervisor = WorkerSupervisor(
            clock, heartbeat_timeout=heartbeat_timeout,
            restart_policy=restart_policy,
            max_restarts=max_worker_restarts, metrics=metrics)
        self._pool: WorkerPool | None = None
        self._version: int | None = None
        self._request_seq = 0
        self._lock = threading.Lock()

    # -- fleet lifecycle ---------------------------------------------------

    def _build_pool(self) -> WorkerPool:
        ctx = self.context_factory()
        ctx.killable = self.killable
        if self.pool_kind == "spawn":
            return SubprocessWorkerPool(ctx, self.n_workers,
                                        loop=query_worker_loop,
                                        name="query-worker")
        return ThreadWorkerPool(ctx, self.n_workers,
                                loop=query_worker_loop,
                                name="query-worker")

    def ensure_started(self) -> None:
        """Start the fleet, or rebuild it after a source mutation.

        Spawned children work on repository replicas pickled at fleet
        start; when the live source repository has mutated since (its
        version moved), the stale fleet is torn down and respawned so
        children never answer from a replica the caller already
        replaced."""
        version = (self.source_version()
                   if self.source_version is not None else None)
        if self._pool is not None and version != self._version:
            self._teardown()
        if self._pool is None:
            pool = self._build_pool()
            pool.start()
            self._pool = pool
            self._version = version
            self.supervisor.reset(range(self.n_workers))

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def shutdown(self) -> None:
        """Stop the fleet; the next query transparently restarts it."""
        with self._lock:
            self._teardown()

    @property
    def started(self) -> bool:
        return self._pool is not None

    # -- one query's fan-out ----------------------------------------------

    def execute(self, schema: ExtractionSchema, *, deadline: Deadline,
                span=NULL_SPAN) -> ShardRunResult:
        """Dispatch one query's sub-plans and drain them, supervised.

        Returns the per-shard partial outcomes plus the shards that
        failed (restart budget exhausted, or a strict-mode error) or
        timed out; merging is the caller's job
        (:func:`merge_partials`)."""
        with self._lock:
            self.ensure_started()
            # The restart budget is per query: a worker lost to an
            # earlier query's chaos must not pre-spend this one's.
            self.supervisor.reset(range(self.n_workers))
            self._request_seq += 1
            request_id = f"q{self._request_seq}"
            return self._run(request_id, schema, deadline, span)

    def _run(self, request_id: str, schema: ExtractionSchema,
             deadline: Deadline, span) -> ShardRunResult:
        result = ShardRunResult()
        pool = self._pool
        assert pool is not None
        shard_map = partition_sources(schema.source_ids(), self.n_workers)
        spans: dict[int, Any] = {}
        for shard, source_ids in sorted(shard_map.items()):
            item = QueryWorkItem(
                request_id, shard, source_ids,
                subschema_for(schema, source_ids),
                None if deadline.unbounded else deadline.remaining())
            result.items[shard] = item
            spans[shard] = span.child("shard.dispatch", shard=shard,
                                      sources=len(source_ids))
            self._dispatch(pool, item)
        pending = set(result.items)
        while pending:
            if deadline.expired:
                for shard in pending:
                    spans[shard].annotate(outcome="deadline")
                    spans[shard].finish()
                result.timed_out = set(pending)
                return result
            events = pool.events(self.real_poll_seconds)
            if not events:
                # Idle beat: advance the (possibly fake) clock so
                # heartbeat ages and restart backoffs make progress.
                self.clock.sleep(self.poll_seconds)
            for event in events:
                shard = event.get("shard")
                if shard is not None:
                    self.supervisor.beat(shard)
                if (event.get("request_id") != request_id
                        or shard not in pending):
                    continue  # stale event from an abandoned attempt
                kind = event.get("kind")
                if kind == "done":
                    result.partials[shard] = event["payload"]
                    pending.discard(shard)
                    spans[shard].annotate(outcome="done")
                    spans[shard].finish()
                elif kind == "failed":
                    result.failures[shard] = event.get(
                        "error", "unknown worker failure")
                    pending.discard(shard)
                    spans[shard].fail(result.failures[shard])
                    spans[shard].finish()
            if not pending:
                break
            verdict = self.supervisor.supervise(pool, busy=set(pending),
                                                relevant=set(pending))
            for shard in verdict.restarted:
                if shard in pending:
                    # The restarted worker has a fresh (empty) inbox:
                    # re-dispatch the released sub-plan to it.
                    self._dispatch(pool, result.items[shard])
                    result.redispatches += 1
                    spans[shard].annotate(redispatched=True)
            if verdict.aborted is not None and verdict.aborted in pending:
                shard = verdict.aborted
                result.failures[shard] = (
                    f"worker shard {shard} exceeded its restart budget "
                    f"({self.max_worker_restarts})")
                pending.discard(shard)
                spans[shard].fail(result.failures[shard])
                spans[shard].finish()
        return result

    def _dispatch(self, pool: WorkerPool, item: QueryWorkItem) -> None:
        pool.submit(item.shard, item)
        if self.metrics is not None:
            self.metrics.counter(
                "shard_dispatches_total",
                "query sub-plans dispatched to shard workers").inc(
                    shard=item.shard)
