"""Worker supervision: heartbeat death detection and restart backoff.

Extracted from the ingest coordinator's drain loop so the sharded
query engine supervises its fleet with the *same* policy: worker death
is detected by direct liveness checks and by heartbeat age on the
injectable clock, dead workers are restarted with jittered backoff,
and a shard that keeps dying exhausts a restart budget instead of
wedging the run.

The supervisor owns only the *policy state* (heartbeats, restart
counts, pending restart schedule); what a death *means* — releasing an
in-flight ingest job, re-dispatching a query sub-plan — stays with the
coordinator reading the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...clock import Clock
from ...obs import MetricsRegistry
from ..resilience import RetryPolicy
from .pool import WorkerPool


def default_restart_policy(max_restarts: int) -> RetryPolicy:
    """The fleet restart backoff both coordinators use by default."""
    return RetryPolicy(max_attempts=max_restarts + 1, base_delay=0.05,
                       max_delay=1.0, seed=11)


@dataclass
class SupervisionVerdict:
    """One supervision tick's findings, in detection order.

    ``restarted`` — shards whose scheduled restart came due and was
    performed this tick (their pending work can be re-dispatched);
    ``deaths`` — shards newly detected dead or silent, each with a
    restart now scheduled (their in-flight work must be released);
    ``aborted`` — the shard that exceeded its restart budget, if any
    (its in-flight work must be released too; the scan stops there).
    """

    restarted: list[int] = field(default_factory=list)
    deaths: list[int] = field(default_factory=list)
    aborted: int | None = None


class WorkerSupervisor:
    """Heartbeat bookkeeping + restart scheduling for one worker pool."""

    def __init__(self, clock: Clock, *, heartbeat_timeout: float = 30.0,
                 restart_policy: RetryPolicy | None = None,
                 max_restarts: int = 3,
                 metrics: MetricsRegistry | None = None) -> None:
        self.clock = clock
        self.heartbeat_timeout = heartbeat_timeout
        self.max_restarts = max_restarts
        self.restart_policy = (restart_policy
                               or default_restart_policy(max_restarts))
        self.metrics = metrics
        self.heartbeats: dict[int, float] = {}
        self.restarts: dict[int, int] = {}
        self.restart_at: dict[int, float] = {}
        self._rng = self.restart_policy.make_rng()

    def reset(self, shards) -> None:
        """Stamp fresh heartbeats and clear budgets (fleet start, or a
        new query run reclaiming the per-run restart budget)."""
        now = self.clock.monotonic()
        self.heartbeats = {shard: now for shard in shards}
        self.restarts.clear()
        self.restart_at.clear()

    def beat(self, shard: int) -> None:
        """Stamp a liveness signal (any event counts as a heartbeat)."""
        self.heartbeats[shard] = self.clock.monotonic()

    @property
    def total_restarts(self) -> int:
        """Restarts scheduled so far (for run reports)."""
        return sum(self.restarts.values())

    def supervise(self, pool: WorkerPool, *, busy: set[int],
                  relevant: set[int]) -> SupervisionVerdict:
        """One supervision tick over the pool.

        ``busy`` — shards with work in flight (eligible for silence
        detection, and flagged so the coordinator releases their work);
        ``relevant`` — shards that matter at all (busy or with work
        routed to them).  A dead-but-idle worker outside ``relevant``
        must not burn the restart budget — and certainly must not abort
        the run — while other shards drain."""
        verdict = SupervisionVerdict()
        now = self.clock.monotonic()
        for shard in range(pool.n_workers):
            if shard not in relevant and shard not in self.restart_at:
                continue
            if shard in self.restart_at:
                if now >= self.restart_at[shard]:
                    pool.restart(shard)
                    del self.restart_at[shard]
                    self.heartbeats[shard] = self.clock.monotonic()
                    verdict.restarted.append(shard)
                continue
            is_busy = shard in busy
            dead = not pool.alive(shard)
            silent = (is_busy and now - self.heartbeats.get(shard, now)
                      > self.heartbeat_timeout)
            if not dead and not silent:
                continue
            count = self.restarts.get(shard, 0) + 1
            self.restarts[shard] = count
            if count > self.max_restarts:
                verdict.aborted = shard
                return verdict
            delay = self.restart_policy.delay_for(count, self._rng)
            self.restart_at[shard] = now + delay
            verdict.deaths.append(shard)
            if self.metrics is not None:
                self.metrics.counter(
                    "worker_restarts_total",
                    "fleet workers restarted after death or silence"
                ).inc(shard=shard)
        return verdict
