"""Stable shard routing shared by the ingest and query fleets.

One source always lands on the same shard for a given pool width, so
per-source work is never concurrently in flight on two workers — the
invariant both the durable ingest pipeline and the sharded query
engine build on.  Moved here from :mod:`repro.core.ingest.jobs` when
the query fleet landed; the old import path still works.
"""

from __future__ import annotations

import zlib


def shard_of(source_id: str, n_shards: int) -> int:
    """Stable shard routing: one source always lands on the same shard
    (for a given pool width), so per-source work is never concurrently
    in flight on two workers."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return zlib.crc32(source_id.encode("utf-8")) % n_shards


def partition_sources(source_ids: list[str],
                      n_shards: int) -> dict[int, list[str]]:
    """Group sources by shard, preserving the caller's source order.

    Only shards that received at least one source appear in the result,
    so a query touching two sources on a six-worker fleet dispatches two
    sub-plans, not six."""
    shards: dict[int, list[str]] = {}
    for source_id in source_ids:
        shards.setdefault(shard_of(source_id, n_shards), []).append(source_id)
    return shards
