"""Sharded multi-worker execution: the shared fleet substrate.

The ROADMAP's "sharded, multi-process *query* execution" item, and the
home of everything fleet-shaped the ingest pipeline and the query path
now share:

* :mod:`~repro.core.cluster.sharding` — stable shard routing
  (``shard_of``) and source partitioning;
* :mod:`~repro.core.cluster.pool` — generic supervised worker pools
  (daemon threads and spawn subprocesses behind one protocol),
  parameterized by a domain loop function;
* :mod:`~repro.core.cluster.supervision` — heartbeat death detection
  and jittered restart backoff (:class:`WorkerSupervisor`), extracted
  from the ingest coordinator;
* :mod:`~repro.core.cluster.coordinator` — the
  :class:`QueryShardCoordinator`: interleaved multi-query sub-plan
  scheduling (fair-share ready queue, per-tenant quotas, death
  re-dispatch) over one shared fleet;
* :mod:`~repro.core.cluster.manager` — the
  :class:`ShardedExtractorManager` engine selected by
  ``ConcurrencyConfig(mode="sharded")``.

See ``docs/cluster.md`` for shard routing, merge semantics and the
failure model.
"""

from ..resilience.config import FleetConfig
from .coordinator import (QUERY_POOL_KINDS, FleetWorkerContext,
                          QueryShardCoordinator, QueryWorkerContext,
                          QueryWorkItem, ShardRunResult, query_worker_loop,
                          run_query_item, subschema_for)
from .manager import ShardedExtractorManager, merge_partials
from .pool import (KILL_EXIT_CODE, SubprocessWorkerPool, ThreadWorkerPool,
                   WorkerPool)
from .sharding import partition_sources, shard_of
from .supervision import (SupervisionVerdict, WorkerSupervisor,
                          default_restart_policy)

__all__ = [
    "KILL_EXIT_CODE", "QUERY_POOL_KINDS",
    "FleetConfig", "FleetWorkerContext",
    "QueryShardCoordinator", "QueryWorkItem", "QueryWorkerContext",
    "ShardRunResult", "ShardedExtractorManager", "SubprocessWorkerPool",
    "SupervisionVerdict", "ThreadWorkerPool", "WorkerPool",
    "WorkerSupervisor", "default_restart_policy", "merge_partials",
    "partition_sources", "query_worker_loop", "run_query_item",
    "shard_of", "subschema_for",
]
