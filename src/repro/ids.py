"""Attribute-identifier utilities.

The S2S mapping module names every ontology attribute with a *unique
identifier* that encodes its path through the ontology class hierarchy
(paper section 2.3.1, Figure 4), e.g. ``thing.product.brand`` or
``thing.product.watch.case``.  These dotted paths keep "a notion of the
ontology hierarchy" and are what the instance generator uses to rebuild the
class structure of the output.

This module centralizes parsing, validation and manipulation of such IDs so
every component agrees on their syntax.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .errors import MappingError

_SEGMENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*\Z")


@dataclass(frozen=True, slots=True)
class AttributePath:
    """A parsed dotted attribute identifier.

    ``AttributePath.parse("thing.product.brand")`` yields a path whose
    ``classes`` are ``("thing", "product")`` and whose ``attribute`` is
    ``"brand"``.
    """

    segments: tuple[str, ...]

    @classmethod
    def parse(cls, text: str) -> "AttributePath":
        """Parse a dotted identifier, validating each segment."""
        if not isinstance(text, str) or not text:
            raise MappingError(f"attribute id must be a non-empty string, got {text!r}")
        segments = tuple(text.split("."))
        if len(segments) < 2:
            raise MappingError(
                f"attribute id {text!r} must contain at least one class and "
                "one attribute segment (e.g. 'product.brand')")
        for segment in segments:
            if not _SEGMENT_RE.match(segment):
                raise MappingError(
                    f"invalid segment {segment!r} in attribute id {text!r}")
        return cls(segments)

    @property
    def attribute(self) -> str:
        """The final segment: the attribute name itself."""
        return self.segments[-1]

    @property
    def classes(self) -> tuple[str, ...]:
        """All segments before the attribute: the class path."""
        return self.segments[:-1]

    @property
    def leaf_class(self) -> str:
        """The class the attribute directly belongs to."""
        return self.segments[-2]

    @property
    def root_class(self) -> str:
        """The topmost class in the path."""
        return self.segments[0]

    def __str__(self) -> str:
        return ".".join(self.segments)

    def within(self, class_name: str) -> bool:
        """Return True if ``class_name`` appears anywhere on the class path."""
        return class_name in self.classes

    def child(self, segment: str) -> "AttributePath":
        """Return a new path with ``segment`` appended."""
        if not _SEGMENT_RE.match(segment):
            raise MappingError(f"invalid segment {segment!r}")
        return AttributePath(self.segments + (segment,))


def is_valid_attribute_id(text: str) -> bool:
    """Return True if ``text`` parses as an attribute identifier."""
    try:
        AttributePath.parse(text)
    except MappingError:
        return False
    return True


def common_class_prefix(paths: list[AttributePath]) -> tuple[str, ...]:
    """Return the longest common class-path prefix of ``paths``.

    Used by the instance assembler to find the class under which a group of
    extracted attributes should be nested.
    """
    if not paths:
        return ()
    prefix = list(paths[0].classes)
    for path in paths[1:]:
        classes = path.classes
        limit = min(len(prefix), len(classes))
        matched = 0
        while matched < limit and prefix[matched] == classes[matched]:
            matched += 1
        del prefix[matched:]
        if not prefix:
            break
    return tuple(prefix)
