"""The consolidated configuration surface.

Every knob object the middleware family accepts, importable from one
place::

    from repro.config import (ConcurrencyConfig, RefreshPolicy,
                              ResilienceConfig, ServerConfig)

* :class:`ResilienceConfig` — retries, breakers, deadlines, failover
  and the injectable clock (``S2SMiddleware(resilience=...)``).
* :class:`ConcurrencyConfig` — the extraction fan-out engine
  (``serial`` | ``thread`` | ``asyncio`` | ``sharded``) and its worker
  bound; carried on :class:`ResilienceConfig`, or passed as
  ``S2SMiddleware(concurrency=...)``.
* :class:`FleetConfig` — every knob of a sharded query fleet (worker
  count, pool kind, supervision timings, admission quotas) in one
  frozen object: ``ConcurrencyConfig.sharded(fleet=...)`` and
  ``QueryShardCoordinator(fleet=...)``.
* :class:`RefreshPolicy` — semantic-store freshness: TTL, stale-while-
  refresh grace, fingerprint polling (``S2SMiddleware(store=...)``).
* :class:`ServerConfig` — the query server's listen address, admission
  control bounds, deadlines and frame ceiling
  (``S2SServer(config=...)``).

These classes still *live* next to the subsystems they configure (that
is where their behaviour is documented and tested); this module is the
stable import path.  The historical spellings —
``repro.core.resilience.ResilienceConfig``,
``repro.core.store.RefreshPolicy`` and friends — keep working but emit
:class:`DeprecationWarning`.
"""

from __future__ import annotations

from .core.resilience.config import (DEFAULT_WORKER_CAP, ConcurrencyConfig,
                                     FleetConfig, ResilienceConfig)
from .core.store.refresh import RefreshPolicy
from .server.config import ServerConfig

__all__ = [
    "DEFAULT_WORKER_CAP",
    "ConcurrencyConfig",
    "FleetConfig",
    "RefreshPolicy",
    "ResilienceConfig",
    "ServerConfig",
]
