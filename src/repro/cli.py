"""Command-line interface: ``python -m repro <command>``.

Commands operate on a self-contained demo world (the deterministic B2B
scenario generator), so the middleware can be explored without writing
any code:

* ``demo`` — build a scenario, run the paper's example query, print the
  integrated answer;
* ``query`` — run an arbitrary S2SQL query against a scenario;
* ``mapping`` — print the attribute repository in the paper's
  ``attr = rule, source`` format;
* ``plan`` — parse an S2SQL query and show the extraction plan
  (class closure + required attributes) without executing it;
* ``ontology`` — print the demo ontology as OWL (RDF/XML) or Turtle.
"""

from __future__ import annotations

import argparse
import sys

from .core.instances.outputs import OUTPUT_FORMATS
from .core.query.parser import parse_s2sql
from .core.query.planner import QueryPlanner
from .errors import S2SError
from .ontology.builders import watch_domain_ontology
from .ontology.owlxml import serialize_ontology
from .workloads import B2BScenario, ConflictProfile

_CONFLICT_LEVELS = {
    "none": ConflictProfile(schematic=False, semantic=False),
    "schematic": ConflictProfile(schematic=True, semantic=False),
    "full": ConflictProfile(schematic=True, semantic=True),
}


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sources", type=int, default=4,
                        help="number of organizations (default 4)")
    parser.add_argument("--products", type=int, default=20,
                        help="catalog size (default 20)")
    parser.add_argument("--conflicts", choices=sorted(_CONFLICT_LEVELS),
                        default="full",
                        help="heterogeneity level (default full)")
    parser.add_argument("--seed", type=int, default=7,
                        help="world seed (default 7)")
    parser.add_argument("--concurrency",
                        choices=("serial", "thread", "asyncio", "sharded"),
                        default=None,
                        help="extraction engine: serial (default), a "
                             "thread pool, the asyncio engine, or the "
                             "sharded worker fleet")
    parser.add_argument("--parallel", action="store_true",
                        help="deprecated alias of --concurrency thread")
    parser.add_argument("--sql-engine", choices=("row", "columnar"),
                        default="columnar",
                        help="SELECT executor for database sources: "
                             "vectorized columnar (default) or the "
                             "row-at-a-time oracle")


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="print the per-query span tree to stderr")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics registry to stderr")


def _build(args: argparse.Namespace, *, store: bool = False):
    from dataclasses import replace as _replace

    from .config import ConcurrencyConfig, ResilienceConfig
    from .obs import MetricsRegistry, Tracer

    scenario = B2BScenario(n_sources=args.sources, n_products=args.products,
                           conflicts=_CONFLICT_LEVELS[args.conflicts],
                           seed=args.seed,
                           sql_engine=getattr(args, "sql_engine", "columnar"))
    mode = args.concurrency
    if mode is None:
        # --parallel predates --concurrency; honor it quietly here (the
        # library-level kwargs are where the DeprecationWarning lives).
        mode = "thread" if args.parallel else "serial"
    query_workers = getattr(args, "query_workers", None)
    query_pool = getattr(args, "query_pool", None)
    if query_workers is not None or query_pool is not None:
        # --workers / --pool imply the sharded fleet engine.
        mode = "sharded"
    if mode == "sharded":
        concurrency = ConcurrencyConfig.sharded(
            query_workers if query_workers is not None else 2,
            pool=query_pool or "thread")
    else:
        concurrency = ConcurrencyConfig(mode=mode)
    resilience = _replace(ResilienceConfig.conservative(),
                          concurrency=concurrency)
    tracer = Tracer() if getattr(args, "trace", False) else None
    middleware = scenario.build_middleware(resilience=resilience,
                                           tracer=tracer,
                                           metrics=MetricsRegistry(),
                                           store=store)
    return scenario, middleware


def _report_observability(args: argparse.Namespace, s2s, result) -> None:
    """Append --trace / --metrics output to stderr, after the answer."""
    if getattr(args, "trace", False) and result.trace is not None:
        print(f"\n--- trace ---\n{result.trace.render()}", file=sys.stderr)
    if getattr(args, "metrics", False):
        print(f"\n--- metrics ---\n{s2s.metrics().render_text()}",
              file=sys.stderr)


def _cmd_demo(args: argparse.Namespace) -> int:
    scenario, s2s = _build(args)
    print(f"world: {args.sources} organizations "
          f"({', '.join(sorted({o.source_type for o in scenario.organizations}))}), "
          f"{args.products} products, conflicts={args.conflicts}")
    query = 'SELECT product WHERE case = "stainless-steel"'
    print(f"query: {query}\n")
    result = s2s.query(query)
    print(result.serialize("text"))
    print(f"{len(result)} products integrated from "
          f"{len({e.source_id for e in result.entities})} sources "
          f"({result.errors.summary()}, "
          f"{result.elapsed_seconds * 1e3:.1f} ms)")
    _report_observability(args, s2s, result)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if bool(args.s2sql) == bool(args.batch_file):
        print("error: provide either an S2SQL query or --batch-file, "
              "not both", file=sys.stderr)
        return 2
    merge_key = args.merge_key.split(",") if args.merge_key else None
    _scenario, s2s = _build(args)
    if args.batch_file:
        return _run_batch_file(args, s2s, merge_key)
    result = s2s.query(args.s2sql, merge_key=merge_key)
    sys.stdout.write(result.serialize(args.format))
    if not result.errors.ok:
        print(f"\n[{result.errors.summary()}]", file=sys.stderr)
        for entry in result.errors.entries:
            print(f"  {entry}", file=sys.stderr)
    _report_observability(args, s2s, result)
    return 0


def _read_batch_file(path: str) -> list[str]:
    """One S2SQL query per line; blank lines and # comments skipped."""
    with open(path, encoding="utf-8") as handle:
        return [line.strip() for line in handle
                if line.strip() and not line.strip().startswith("#")]


def _run_batch_file(args: argparse.Namespace, s2s,
                    merge_key: list[str] | None) -> int:
    queries = _read_batch_file(args.batch_file)
    if not queries:
        print(f"error: no queries in {args.batch_file}", file=sys.stderr)
        return 2
    results = s2s.query_many(queries, merge_key=merge_key)
    for query, result in zip(queries, results):
        print(f"=== {query} ({len(result)} entities) ===")
        sys.stdout.write(result.serialize(args.format))
        print()
        if not result.errors.ok:
            print(f"[{result.errors.summary()}]", file=sys.stderr)
    print(f"{len(results)} queries in one shared scan "
          f"({results[0].elapsed_seconds * 1e3:.1f} ms)", file=sys.stderr)
    _report_observability(args, s2s, results[0])
    return 0


def _cmd_mapping(args: argparse.Namespace) -> int:
    _scenario, s2s = _build(args)
    for line in s2s.mapping_lines():
        print(line)
    print(f"\n{len(s2s.attribute_repository)} entries, "
          f"coverage {s2s.mapping_coverage():.0%}", file=sys.stderr)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    _scenario, s2s = _build(args)
    query = parse_s2sql(args.s2sql)
    plan = QueryPlanner(s2s.schema).plan(query)
    print(f"query:          {plan.query}")
    print(f"query class:    {plan.class_name}")
    print(f"output classes: {', '.join(plan.output_classes)}")
    print("required attributes:")
    for path in plan.required_attributes:
        print(f"  {path}")
    if plan.conditions:
        print("conditions:")
        for condition in plan.conditions:
            print(f"  {condition.path} {condition.operator} "
                  f"{condition.value!r} ({condition.property.range})")
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    """Show assisted-mapping suggestions for a fresh (unmapped) world."""
    from .core.mapping.suggest import MappingSuggester
    from .ontology.builders import watch_domain_ontology
    from .core.middleware import S2SMiddleware
    from .workloads import B2BScenario

    scenario = B2BScenario(n_sources=args.sources,
                           n_products=args.products,
                           conflicts=_CONFLICT_LEVELS[args.conflicts],
                           seed=args.seed)
    s2s = S2SMiddleware(watch_domain_ontology())
    for org in scenario.organizations:
        s2s.register_source(scenario.connector(org))
    suggester = MappingSuggester(s2s.registrar)
    for org in scenario.organizations:
        source = s2s.source_repository.get(org.source_id)
        print(f"{org.source_id} ({org.source_type}):")
        suggestions = suggester.suggest_for_source(
            source, attributes=s2s.registrar.schema.attribute_paths())
        for suggestion in suggestions:
            print(f"  {suggestion}")
        if not suggestions:
            print("  (no candidates above threshold)")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """``store refresh|status|export`` over the demo world's store.

    ``--dir`` makes the store persistent across invocations: an existing
    snapshot is warm-loaded before the subcommand runs, and ``refresh``
    saves the store back afterwards."""
    import os

    _scenario, s2s = _build(args, store=True)
    directory = getattr(args, "dir", None)
    if directory and os.path.exists(os.path.join(directory,
                                                 "manifest.json")):
        loaded = s2s.store.load(directory)
        print(f"loaded {loaded} materialization(s) from {directory}",
              file=sys.stderr)

    if args.store_command == "status":
        rows = s2s.store_status()
        if not rows:
            print("(store empty — run 'store refresh' to materialize)")
        for row in rows:
            freshness = "fresh" if row["fresh"] else "stale"
            stale_note = (f", stale sources: "
                          f"{', '.join(row['stale_sources'])}"
                          if row["stale_sources"] else "")
            print(f"{row['class']} [{row['attributes']} attributes]: "
                  f"{row['entities']} entities from "
                  f"{len(row['sources'])} sources, {freshness} "
                  f"(age {row['age_seconds']:.1f}s, "
                  f"generation {row['generation']}{stale_note})")
        return 0

    if args.store_command == "export":
        sys.stdout.write(s2s.store.export(args.format))
        return 0

    # refresh
    if args.materialize or not s2s.store.materializations():
        query = args.materialize or "SELECT product"
        result = s2s.materialize(query)
        print(f"materialized: {result.summary()} "
              f"({result.elapsed_seconds * 1e3:.1f} ms)")
    else:
        for result in s2s.refresh_store(force=args.force):
            print(f"refreshed: {result.summary()} "
                  f"({result.elapsed_seconds * 1e3:.1f} ms)")
    if directory:
        manifest = s2s.store.save(directory)
        print(f"saved store to {manifest}", file=sys.stderr)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """``ingest run|status|dead-letter|requeue`` — the durable pipeline.

    The journal directory is the unit of recovery: rerunning ``ingest
    run`` with the same ``--journal`` resumes exactly the jobs a crashed
    or aborted run left unfinished.  ``--dir`` persists the store
    snapshot across invocations, same as the ``store`` command."""
    import os

    if args.ingest_command == "dead-letter":
        from .core.ingest import DeadLetterLedger
        entries = DeadLetterLedger(args.journal, fsync=False).entries()
        if not entries:
            print("(dead-letter ledger empty)")
        for entry in entries:
            job = entry.get("job", {})
            print(f"{job.get('job_id')}  source={job.get('source_id')} "
                  f"stage={job.get('stage')} attempts={job.get('attempts')}")
            print(f"  error: {entry.get('error')}")
        return 0

    _scenario, s2s = _build(args, store=True)
    directory = getattr(args, "dir", None)
    if directory and os.path.exists(os.path.join(directory,
                                                 "manifest.json")):
        loaded = s2s.store.load(directory)
        print(f"loaded {loaded} materialization(s) from {directory}",
              file=sys.stderr)

    if args.ingest_command == "status":
        status = s2s.ingest_status(args.journal)
        jobs = status["jobs"] or {}
        tally = ", ".join(f"{count} {state}"
                          for state, count in sorted(jobs.items()))
        print(f"journal: {status['journal']}")
        print(f"jobs: {tally or '(none journaled)'}")
        print(f"dead letters: {status['dead_letter']}")
        for line in status["unfinished"]:
            print(f"  unfinished: {line}")
        return 0

    if args.ingest_command == "requeue":
        jobs = s2s.ingest_requeue(args.journal, args.job_ids or None)
        if not jobs:
            print("(nothing to requeue)")
        for job in jobs:
            print(f"requeued {job.job_id} (source={job.source_id})")
        return 0

    # run
    report = s2s.ingest(args.s2sql or "SELECT product",
                        journal_dir=args.journal,
                        n_workers=args.workers, pool=args.pool,
                        force=args.force, stop_after=args.stop_after)
    print(report.summary())
    for error in report.errors:
        print(f"  {error}", file=sys.stderr)
    if directory:
        manifest = s2s.store.save(directory)
        print(f"saved store to {manifest}", file=sys.stderr)
    return 1 if report.aborted else 0


def _parse_tenant_specs(spec: str) -> list[tuple[str, str | None]]:
    """``acme:s3cret,globex`` → [("acme", "s3cret"), ("globex", None)]."""
    tenants = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, token = part.partition(":")
        tenants.append((name, token or None))
    if not tenants:
        raise S2SError("--tenants must name at least one tenant")
    return tenants


def _parse_fleet_spec(spec: str):
    """Parse ``--fleet workers[:pool][:shared]`` → (workers, pool, shared).

    ``4`` — four thread workers per tenant; ``4:spawn`` — subprocess
    workers; ``4:shared`` / ``4:spawn:shared`` — one fleet serving every
    tenant."""
    workers_text, _, rest = spec.partition(":")
    try:
        workers = int(workers_text)
    except ValueError:
        raise S2SError(f"--fleet spec must start with a worker count, "
                       f"got {spec!r}") from None
    pool, shared = "thread", False
    for token in filter(None, rest.split(":")):
        if token in ("thread", "spawn"):
            pool = token
        elif token == "shared":
            shared = True
        else:
            raise S2SError(f"unknown --fleet token {token!r} in {spec!r} "
                           f"(expected thread, spawn or shared)")
    return workers, pool, shared


def _resolve_serve_fleet(args: argparse.Namespace):
    """The serve command's fleet shape: (FleetConfig, shared) or None."""
    legacy = (args.query_workers is not None
              or args.query_pool is not None)
    if args.fleet is None and not legacy:
        return None
    if args.fleet is not None:
        if legacy:
            raise S2SError("pass either --fleet or the deprecated "
                           "--query-workers/--query-pool, not both")
        workers, pool, shared = _parse_fleet_spec(args.fleet)
    else:
        print("warning: --query-workers/--query-pool are deprecated; "
              "use --fleet workers[:pool][:shared]", file=sys.stderr)
        workers = args.query_workers if args.query_workers is not None else 2
        pool, shared = args.query_pool or "thread", False
    from .config import FleetConfig
    return FleetConfig(n_workers=workers, pool=pool,
                       tenant_quota=args.fleet_quota), shared


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve`` — expose demo worlds over the wire protocol.

    Each tenant gets its *own* scenario (seeded ``--seed + index``) and
    its own middleware: namespaces are isolated end to end.  Port 0
    binds an ephemeral port; the bound address is printed (and written
    to ``--port-file`` when given) so scripts can connect.  With
    ``--fleet N[:pool][:shared]`` queries run on sharded worker fleets —
    one per tenant, or (``:shared``) one fleet interleaving every
    tenant's shards under per-tenant quotas."""
    import time as _time

    from .config import ServerConfig
    from .server import S2SServer, ServerThread, Tenant, TenantRegistry

    fleet_shape = _resolve_serve_fleet(args)
    middleware_kwargs = {}
    if fleet_shape is not None:
        from .config import ConcurrencyConfig
        middleware_kwargs["concurrency"] = ConcurrencyConfig.sharded(
            fleet=fleet_shape[0])
    shared_fleet = None
    if fleet_shape is not None and fleet_shape[1]:
        from .clock import SystemClock
        from .core.cluster import QueryShardCoordinator
        from .obs import DEFAULT_REGISTRY
        shared_fleet = QueryShardCoordinator(clock=SystemClock(),
                                             fleet=fleet_shape[0],
                                             metrics=DEFAULT_REGISTRY)
    registry = TenantRegistry()
    for index, (name, token) in enumerate(_parse_tenant_specs(args.tenants)):
        scenario = B2BScenario(n_sources=args.sources,
                               n_products=args.products,
                               conflicts=_CONFLICT_LEVELS[args.conflicts],
                               seed=args.seed + index)
        middleware = scenario.build_middleware(store=args.store,
                                               **middleware_kwargs)
        if shared_fleet is not None:
            middleware.attach_fleet(shared_fleet, tenant=name)
        registry.add(Tenant(name, middleware, token=token, owned=True))
    config = ServerConfig(host=args.host, port=args.port,
                          max_inflight=args.max_inflight,
                          max_queue=args.max_queue)
    thread = ServerThread(S2SServer(registry, config=config))
    host, port = thread.start()
    fleet_note = ""
    if fleet_shape is not None:
        fleet_config, shared = fleet_shape
        scope = "shared fleet" if shared else "fleet per tenant"
        fleet_note = (f", {scope}: {fleet_config.n_workers} "
                      f"{fleet_config.pool} worker(s)")
    print(f"listening on {host}:{port} "
          f"({len(registry)} tenant(s): {', '.join(registry.names())}"
          f"{fleet_note})",
          flush=True)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(str(port))
    try:
        if args.duration is not None:
            _time.sleep(args.duration)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        thread.stop()
        if shared_fleet is not None:
            shared_fleet.shutdown()
    print("server stopped", file=sys.stderr)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    """``client`` — query a running server with the symmetric client."""
    import json as _json

    from .server import S2SClient

    modes = [bool(args.s2sql), bool(args.batch_file), bool(args.sparql),
             bool(args.explain), args.status, args.show_metrics]
    if sum(modes) != 1:
        print("error: provide exactly one of an S2SQL query, "
              "--batch-file, --sparql, --explain, --status or --metrics",
              file=sys.stderr)
        return 2
    merge_key = args.merge_key.split(",") if args.merge_key else None
    with S2SClient(args.host, args.port, tenant=args.tenant,
                   token=args.token) as client:
        if args.status:
            print(_json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.show_metrics:
            sys.stdout.write(client.metrics()["text"])
            return 0
        if args.explain:
            sys.stdout.write(client.explain(args.explain,
                                            merge_key=merge_key))
            return 0
        if args.sparql:
            answer = client.sparql(args.sparql)
            if isinstance(answer, bool):
                print("true" if answer else "false")
            else:
                print("\t".join(answer.variables))
                for row in answer.simple_rows():
                    print("\t".join(str(value) for value in row))
            return 0
        if args.batch_file:
            queries = _read_batch_file(args.batch_file)
            if not queries:
                print(f"error: no queries in {args.batch_file}",
                      file=sys.stderr)
                return 2
            for query, result in zip(queries,
                                     client.query_many(
                                         queries, merge_key=merge_key)):
                print(f"=== {query} ({len(result)} entities) ===")
                sys.stdout.write(result.render_text())
            return 0
        result = client.query(args.s2sql, merge_key=merge_key)
        sys.stdout.write(result.render_text())
        print(f"{len(result)} entities "
              f"(server {result.server_seconds * 1e3:.1f} ms, "
              f"round-trip {result.elapsed_seconds * 1e3:.1f} ms)",
              file=sys.stderr)
    return 0


def _cmd_ontology(args: argparse.Namespace) -> int:
    ontology = watch_domain_ontology()
    sys.stdout.write(serialize_ontology(
        ontology, "turtle" if args.format == "turtle" else "rdfxml",
        include_individuals=False))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S2S middleware demo CLI (Silva & Cardoso, ICDCS 2006 "
                    "reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run the demo integration")
    _add_scenario_arguments(demo)
    _add_observability_arguments(demo)
    demo.set_defaults(handler=_cmd_demo)

    query = commands.add_parser("query", help="run an S2SQL query")
    query.add_argument("s2sql", nargs="?", default=None,
                       help='e.g. \'SELECT product WHERE '
                            'brand = "Seiko"\'')
    query.add_argument("--batch-file", default=None,
                       help="file with one S2SQL query per line, executed "
                            "as one batch through a shared scan "
                            "(# comments and blank lines skipped)")
    query.add_argument("--format", choices=OUTPUT_FORMATS, default="text")
    query.add_argument("--merge-key", default="",
                       help="comma-separated attributes to dedup on, "
                            "e.g. brand,model")
    query.add_argument("--workers", dest="query_workers", type=int,
                       default=None, metavar="N",
                       help="shard the query across N fleet workers "
                            "(implies --concurrency sharded)")
    query.add_argument("--pool", dest="query_pool",
                       choices=("thread", "spawn"), default=None,
                       help="fleet worker flavour: daemon threads "
                            "(default) or spawned subprocesses "
                            "(implies --concurrency sharded)")
    _add_scenario_arguments(query)
    _add_observability_arguments(query)
    query.set_defaults(handler=_cmd_query)

    mapping = commands.add_parser("mapping",
                                  help="print the mapping repository")
    _add_scenario_arguments(mapping)
    mapping.set_defaults(handler=_cmd_mapping)

    plan = commands.add_parser("plan", help="show a query's extraction plan")
    plan.add_argument("s2sql")
    _add_scenario_arguments(plan)
    plan.set_defaults(handler=_cmd_plan)

    suggest = commands.add_parser(
        "suggest", help="show assisted mapping suggestions")
    _add_scenario_arguments(suggest)
    suggest.set_defaults(handler=_cmd_suggest)

    store = commands.add_parser(
        "store", help="materialized semantic store operations")
    store_commands = store.add_subparsers(dest="store_command",
                                          required=True)
    refresh = store_commands.add_parser(
        "refresh", help="materialize or incrementally refresh the store")
    refresh.add_argument("--dir", default=None,
                         help="directory to load/save the store snapshot "
                              "(persistent across invocations)")
    refresh.add_argument("--force", action="store_true",
                         help="re-extract every source, ignoring "
                              "content fingerprints")
    refresh.add_argument("--materialize", default=None, metavar="S2SQL",
                         help="materialize this query's answer "
                              "(default: SELECT product when the store "
                              "is empty)")
    _add_scenario_arguments(refresh)
    refresh.set_defaults(handler=_cmd_store)
    status = store_commands.add_parser(
        "status", help="per-materialization freshness summary")
    status.add_argument("--dir", default=None,
                        help="directory holding a saved store snapshot")
    _add_scenario_arguments(status)
    status.set_defaults(handler=_cmd_store)
    export = store_commands.add_parser(
        "export", help="serialize the store graph to stdout")
    export.add_argument("--dir", default=None,
                        help="directory holding a saved store snapshot")
    export.add_argument("--format", choices=("turtle", "ntriples"),
                        default="turtle")
    _add_scenario_arguments(export)
    export.set_defaults(handler=_cmd_store)

    ingest = commands.add_parser(
        "ingest", help="durable staged ingest pipeline operations")
    ingest_commands = ingest.add_subparsers(dest="ingest_command",
                                            required=True)
    ingest_run = ingest_commands.add_parser(
        "run", help="run a supervised, crash-recoverable ingest")
    ingest_run.add_argument("s2sql", nargs="?", default=None,
                            help="query to materialize "
                                 "(default: SELECT product)")
    ingest_run.add_argument("--journal", required=True,
                            help="journal directory (the unit of crash "
                                 "recovery; reuse it to resume)")
    ingest_run.add_argument("--dir", default=None,
                            help="directory to load/save the store "
                                 "snapshot (persistent across runs)")
    ingest_run.add_argument("--workers", type=int, default=2,
                            help="shard worker count (default 2)")
    ingest_run.add_argument("--pool", choices=("thread", "subprocess"),
                            default="thread",
                            help="worker isolation (default thread)")
    ingest_run.add_argument("--force", action="store_true",
                            help="re-ingest every source, ignoring "
                                 "content fingerprints")
    ingest_run.add_argument("--stop-after", type=int, default=None,
                            help="abandon the run after N completed jobs "
                                 "(crash simulation; exit code 1)")
    _add_scenario_arguments(ingest_run)
    ingest_run.set_defaults(handler=_cmd_ingest)
    ingest_status = ingest_commands.add_parser(
        "status", help="journal-level job counts and unfinished work")
    ingest_status.add_argument("--journal", required=True)
    _add_scenario_arguments(ingest_status)
    ingest_status.set_defaults(handler=_cmd_ingest)
    ingest_dead = ingest_commands.add_parser(
        "dead-letter", help="list quarantined jobs and their errors")
    ingest_dead.add_argument("--journal", required=True)
    ingest_dead.set_defaults(handler=_cmd_ingest)
    ingest_requeue = ingest_commands.add_parser(
        "requeue", help="release dead-letter jobs back to pending")
    ingest_requeue.add_argument("job_ids", nargs="*",
                                help="job ids to requeue (default: all)")
    ingest_requeue.add_argument("--journal", required=True)
    _add_scenario_arguments(ingest_requeue)
    ingest_requeue.set_defaults(handler=_cmd_ingest)

    serve = commands.add_parser(
        "serve", help="serve demo worlds over the wire protocol")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 0)")
    serve.add_argument("--tenants", default="default",
                       help="comma-separated tenant specs, each "
                            "name[:token] — every tenant gets its own "
                            "isolated world (default: one tenant "
                            "'default', no token)")
    serve.add_argument("--store", action="store_true",
                       help="give each tenant a materialized semantic "
                            "store (enables SPARQL frames)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrent executions before requests "
                            "queue (default 8)")
    serve.add_argument("--max-queue", type=int, default=32,
                       help="queued requests before RETRY_AFTER "
                            "pushback (default 32)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds then drain and exit "
                            "(default: until interrupted)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port to this file once "
                            "listening (for scripts)")
    serve.add_argument("--fleet", default=None, metavar="N[:POOL][:shared]",
                       help="run queries on sharded worker fleets, e.g. "
                            "'4', '4:spawn' or '4:thread:shared'; 'shared' "
                            "interleaves every tenant on ONE fleet "
                            "(default: in-process execution)")
    serve.add_argument("--fleet-quota", type=int, default=None, metavar="N",
                       help="per-tenant cap on in-flight shard items on a "
                            "shared fleet; over-quota queries get "
                            "RETRY_AFTER pushback (default: no quota)")
    serve.add_argument("--query-workers", type=int, default=None,
                       metavar="N",
                       help="deprecated alias: --fleet N")
    serve.add_argument("--query-pool", choices=("thread", "spawn"),
                       default=None,
                       help="deprecated alias: the POOL part of --fleet")
    _add_scenario_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    client = commands.add_parser(
        "client", help="query a running server over the wire protocol")
    client.add_argument("s2sql", nargs="?", default=None,
                        help="S2SQL query to run remotely")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--tenant", default="default")
    client.add_argument("--token", default=None)
    client.add_argument("--batch-file", default=None,
                        help="file with one S2SQL query per line, "
                             "executed as one QUERY_MANY frame")
    client.add_argument("--sparql", default=None, metavar="SPARQL",
                        help="run a SPARQL query against the tenant's "
                             "store")
    client.add_argument("--explain", default=None, metavar="S2SQL",
                        help="render the server-side execution plan")
    client.add_argument("--status", action="store_true",
                        help="print the server + tenant status snapshot")
    client.add_argument("--metrics", dest="show_metrics",
                        action="store_true",
                        help="print the server's metrics rendering")
    client.add_argument("--merge-key", default="",
                        help="comma-separated attributes to dedup on")
    client.set_defaults(handler=_cmd_client)

    ontology = commands.add_parser("ontology",
                                   help="print the demo ontology as OWL")
    ontology.add_argument("--format", choices=("rdfxml", "turtle"),
                          default="rdfxml")
    ontology.set_defaults(handler=_cmd_ontology)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except S2SError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
