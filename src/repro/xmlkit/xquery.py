"""An XQuery FLWOR subset.

Paper section 2.3.1 step 2: "For XML data sources, XPath and XQuery can
be used."  This module implements the FLWOR slice extraction rules need::

    for $w in //watch
    where $w/price > 100 and contains($w/case, "steel")
    return $w/brand

* ``for`` binds each node selected by an XPath expression;
* ``where`` (optional) is any XPath predicate expression evaluated with
  the bound node as context;
* ``return`` is an XPath expression evaluated against the bound node;
  its string value(s) become the result items.

The clauses reuse the XPath engine wholesale, so the supported predicate
and function vocabulary is identical to :mod:`repro.xmlkit.xpath`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import XPathError
from .dom import Document, Element
from .xpath.engine import XPath, _to_bool, _string_value  # noqa: F401

_FLWOR_RE = re.compile(
    r"""\A\s*
    for\s+\$(?P<variable>[A-Za-z_][A-Za-z0-9_]*)\s+in\s+
    (?P<sequence>.+?)
    (?:\s+where\s+(?P<where>.+?))?
    \s+return\s+(?P<return>.+?)\s*\Z
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class XQuery:
    """A compiled FLWOR expression."""

    variable: str
    sequence: XPath
    where: XPath | None
    returning: XPath
    source: str

    @classmethod
    def compile(cls, text: str) -> "XQuery":
        """Parse a FLWOR expression into a compiled query."""
        match = _FLWOR_RE.match(text)
        if match is None:
            raise XPathError(
                f"not a supported FLWOR expression (expected "
                f"'for $v in <path> [where <expr>] return <expr>'): "
                f"{text!r}")
        variable = match.group("variable")
        where_text = match.group("where")
        return cls(
            variable=variable,
            sequence=XPath(match.group("sequence")),
            where=(XPath(_bind(where_text, variable))
                   if where_text else None),
            returning=XPath(_bind(match.group("return"), variable)),
            source=text,
        )

    def evaluate(self, root: Document | Element) -> list[str]:
        """Run the FLWOR over a document; returns item string values."""
        results: list[str] = []
        for node in self.sequence.select(root):
            if not isinstance(node, Element):
                raise XPathError(
                    f"for-clause of {self.source!r} must select elements, "
                    f"got {type(node).__name__}")
            if self.where is not None:
                if not _to_bool(self.where.evaluate(node)):
                    continue
            value = self.returning.evaluate(node)
            if isinstance(value, list):
                results.extend(_string_value(item) for item in value)
            else:
                results.append(_scalar_text(value))
        return results


def _bind(expression: str, variable: str) -> str:
    """Rewrite ``$v/path`` → ``path`` and bare ``$v`` → ``.``.

    The bound node is the XPath *context node* during evaluation, so
    variable references become context-relative paths."""
    rewritten = re.sub(rf"\${variable}\s*/", "", expression)
    rewritten = re.sub(rf"\${variable}\b", ".", rewritten)
    if "$" in rewritten:
        raise XPathError(
            f"only the for-variable ${variable} may be referenced, "
            f"got {expression!r}")
    return rewritten


def _scalar_text(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return str(int(value)) if value == int(value) else str(value)
    return str(value)


def is_flwor(text: str) -> bool:
    """Cheap syntactic test used by the rule dispatcher."""
    return text.lstrip().startswith("for ") or text.lstrip().startswith("for$")


def xquery_values(root: Document | Element, text: str) -> list[str]:
    """One-shot convenience: compile and evaluate."""
    return XQuery.compile(text).evaluate(root)
