"""A namespace-aware XML parser for the DOM-lite tree.

Handles the XML features B2B documents actually use: elements, attributes,
character data, entity references, CDATA sections, comments, processing
instructions and namespace declarations.  DTDs are tolerated but ignored.
The parser is strict about well-formedness (mismatched tags, unterminated
constructs and stray ``<`` are errors) because the XML substrate models
*structured* sources — tag-soup tolerance belongs to the HTML parser in the
web substrate.
"""

from __future__ import annotations

import re

from ..errors import XmlSyntaxError
from .dom import Document, Element

_NAME = r"[A-Za-z_:][A-Za-z0-9_\-.:]*"
_ATTR_RE = re.compile(
    rf"\s+({_NAME})\s*=\s*(\"[^\"]*\"|'[^']*')")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


def _decode_entities(text: str, line: int) -> str:
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XmlSyntaxError(f"unterminated entity reference (line {line})")
        entity = text[i + 1:end]
        if entity.startswith("#x") or entity.startswith("#X"):
            out.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            out.append(chr(int(entity[1:])))
        elif entity in _ENTITIES:
            out.append(_ENTITIES[entity])
        else:
            raise XmlSyntaxError(f"unknown entity &{entity}; (line {line})")
        i = end + 1
    return "".join(out)


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1

    def error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(f"{message} (line {self.line})")

    def advance(self, count: int) -> None:
        self.line += self.text.count("\n", self.pos, self.pos + count)
        self.pos += count

    def parse(self) -> Document:
        declaration = self._skip_prolog()
        root = self._parse_element(namespaces={"xml": "http://www.w3.org/XML/1998/namespace"})
        self._skip_misc()
        if self.pos < len(self.text):
            raise self.error("content after document root")
        return Document(root, declaration=declaration)

    def _skip_prolog(self) -> bool:
        declaration = False
        while True:
            self._skip_whitespace()
            if self.text.startswith("<?xml", self.pos):
                end = self.text.find("?>", self.pos)
                if end == -1:
                    raise self.error("unterminated XML declaration")
                self.advance(end + 2 - self.pos)
                declaration = True
            elif self.text.startswith("<!--", self.pos):
                self._skip_comment()
            elif self.text.startswith("<!DOCTYPE", self.pos):
                self._skip_doctype()
            elif self.text.startswith("<?", self.pos):
                self._skip_pi()
            else:
                return declaration

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.text.startswith("<!--", self.pos):
                self._skip_comment()
            elif self.text.startswith("<?", self.pos):
                self._skip_pi()
            else:
                return

    def _skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.advance(1)

    def _skip_comment(self) -> None:
        end = self.text.find("-->", self.pos)
        if end == -1:
            raise self.error("unterminated comment")
        self.advance(end + 3 - self.pos)

    def _skip_pi(self) -> None:
        end = self.text.find("?>", self.pos)
        if end == -1:
            raise self.error("unterminated processing instruction")
        self.advance(end + 2 - self.pos)

    def _skip_doctype(self) -> None:
        depth = 0
        i = self.pos
        while i < len(self.text):
            ch = self.text[i]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                self.advance(i + 1 - self.pos)
                return
            i += 1
        raise self.error("unterminated DOCTYPE")

    def _parse_element(self, namespaces: dict[str, str]) -> Element:
        if not self.text.startswith("<", self.pos):
            raise self.error("expected element start tag")
        match = re.compile(rf"<({_NAME})").match(self.text, self.pos)
        if match is None:
            raise self.error("malformed start tag")
        raw_name = match.group(1)
        self.advance(match.end() - self.pos)

        attributes: dict[str, str] = {}
        local_namespaces = dict(namespaces)
        while True:
            attr_match = _ATTR_RE.match(self.text, self.pos)
            if attr_match is None:
                break
            attr_name = attr_match.group(1)
            attr_value = _decode_entities(attr_match.group(2)[1:-1], self.line)
            self.advance(attr_match.end() - self.pos)
            if attr_name == "xmlns":
                local_namespaces[""] = attr_value
            elif attr_name.startswith("xmlns:"):
                local_namespaces[attr_name[6:]] = attr_value
            attributes[attr_name] = attr_value

        self._skip_whitespace()
        prefix, _, local = raw_name.rpartition(":")
        namespace = local_namespaces.get(prefix, "" if prefix == "" else None)
        if namespace is None:
            raise self.error(f"undeclared namespace prefix {prefix!r}")
        element = Element(raw_name, attributes, namespace=namespace)

        if self.text.startswith("/>", self.pos):
            self.advance(2)
            return element
        if not self.text.startswith(">", self.pos):
            raise self.error(f"malformed start tag <{raw_name}>")
        self.advance(1)

        self._parse_content(element, local_namespaces)

        close = f"</{raw_name}"
        if not self.text.startswith(close, self.pos):
            raise self.error(f"expected closing tag </{raw_name}>")
        self.advance(len(close))
        self._skip_whitespace()
        if not self.text.startswith(">", self.pos):
            raise self.error(f"malformed closing tag </{raw_name}>")
        self.advance(1)
        return element

    def _parse_content(self, element: Element, namespaces: dict[str, str]) -> None:
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                text = _decode_entities("".join(buffer), self.line)
                element.append_text(text)
                buffer.clear()

        while True:
            if self.pos >= len(self.text):
                raise self.error(f"unterminated element <{element.name}>")
            if self.text.startswith("</", self.pos):
                flush()
                return
            if self.text.startswith("<!--", self.pos):
                flush()
                self._skip_comment()
                continue
            if self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos)
                if end == -1:
                    raise self.error("unterminated CDATA section")
                element.append_text(self.text[self.pos + 9:end])
                self.advance(end + 3 - self.pos)
                continue
            if self.text.startswith("<?", self.pos):
                flush()
                self._skip_pi()
                continue
            if self.text.startswith("<", self.pos):
                flush()
                element.append(self._parse_element(namespaces))
                continue
            next_tag = self.text.find("<", self.pos)
            if next_tag == -1:
                raise self.error(f"unterminated element <{element.name}>")
            buffer.append(self.text[self.pos:next_tag])
            self.advance(next_tag - self.pos)


def parse_xml(text: str) -> Document:
    """Parse an XML document string into a :class:`Document`."""
    if not text or not text.strip():
        raise XmlSyntaxError("empty XML document")
    return _Parser(text).parse()
