"""A self-contained XML toolkit.

Provides the DOM-lite tree model, a namespace-aware XML parser, a
serializer, and an XPath-subset engine.  It is shared by two consumers:

* :mod:`repro.rdf.rdfxml` — RDF/XML and OWL document exchange;
* :mod:`repro.sources.xmlstore` — the XML data-source substrate whose
  extraction rules are XPath expressions.
"""

from .dom import Document, Element, Text
from .parser import parse_xml
from .serializer import serialize_xml
from .xpath import XPath, xpath_select

__all__ = [
    "Document",
    "Element",
    "Text",
    "parse_xml",
    "serialize_xml",
    "XPath",
    "xpath_select",
]
