"""DOM-lite tree model for XML documents.

Small on purpose: elements, text nodes and a document wrapper, with the
navigation and search helpers the XPath engine and the serializers need.
Namespaces are handled by storing each element's resolved ``namespace`` URI
next to its ``name`` (local name); prefix bookkeeping lives in the parser
and serializer.
"""

from __future__ import annotations

from typing import Iterator, Union

from ..errors import XmlError


class Text:
    """A text node."""

    __slots__ = ("value", "parent")

    def __init__(self, value: str) -> None:
        self.value = value
        self.parent: Element | None = None

    def __repr__(self) -> str:
        return f"Text({self.value!r})"


Node = Union["Element", Text]


class Element:
    """An XML element with attributes and ordered children."""

    __slots__ = ("name", "namespace", "attributes", "children", "parent")

    def __init__(self, name: str, attributes: dict[str, str] | None = None,
                 *, namespace: str = "") -> None:
        if not name:
            raise XmlError("element name must be non-empty")
        self.name = name
        self.namespace = namespace
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Node] = []
        self.parent: Element | None = None

    # -- construction ---------------------------------------------------

    def append(self, child: Node) -> Node:
        """Attach a child node (Element or Text)."""
        if not isinstance(child, (Element, Text)):
            raise XmlError(f"cannot append {type(child).__name__} to element")
        child.parent = self
        self.children.append(child)
        return child

    def append_text(self, value: str) -> Text:
        """Attach a text node with ``value``."""
        node = Text(value)
        return self.append(node)  # type: ignore[return-value]

    def subelement(self, name: str, attributes: dict[str, str] | None = None,
                   *, text: str | None = None, namespace: str = "") -> "Element":
        """Create, attach and return a child element."""
        child = Element(name, attributes, namespace=namespace)
        self.append(child)
        if text is not None:
            child.append_text(text)
        return child

    # -- navigation -----------------------------------------------------

    def element_children(self) -> list["Element"]:
        """Direct child elements (text nodes skipped)."""
        return [c for c in self.children if isinstance(c, Element)]

    def find(self, name: str) -> "Element | None":
        """First child element with the given local name."""
        for child in self.element_children():
            if child.name == name:
                return child
        return None

    def find_all(self, name: str) -> list["Element"]:
        """All direct child elements with the given name."""
        return [c for c in self.element_children() if c.name == name]

    def iter(self) -> Iterator["Element"]:
        """Depth-first iterator over this element and all descendants."""
        yield self
        for child in self.element_children():
            yield from child.iter()

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.value)
            else:
                parts.append(child.text_content())
        return "".join(parts)

    @property
    def text(self) -> str:
        """Direct text content (immediate Text children only)."""
        return "".join(c.value for c in self.children if isinstance(c, Text))

    def get(self, attribute: str, default: str | None = None) -> str | None:
        """Attribute value, or ``default``."""
        return self.attributes.get(attribute, default)

    def path(self) -> str:
        """Slash-separated element-name path from the root, for diagnostics."""
        names: list[str] = []
        node: Element | None = self
        while node is not None:
            names.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(names))

    def __repr__(self) -> str:
        return f"Element({self.name!r}, children={len(self.children)})"


class Document:
    """An XML document: one root element plus optional XML declaration."""

    __slots__ = ("root", "declaration")

    def __init__(self, root: Element, *, declaration: bool = True) -> None:
        if not isinstance(root, Element):
            raise XmlError("document root must be an Element")
        self.root = root
        self.declaration = declaration

    def iter(self) -> Iterator[Element]:
        """Depth-first iterator over the root and its descendants."""
        return self.root.iter()

    def __repr__(self) -> str:
        return f"Document(root={self.root.name!r})"
