"""Recursive-descent parser for the XPath subset.

Grammar (precedence low to high)::

    expr        := or_expr
    or_expr     := and_expr ("or" and_expr)*
    and_expr    := union_expr ("and" union_expr)*
    union_expr  := cmp_expr ("|" cmp_expr)*
    cmp_expr    := primary (("="|"!="|"<"|">"|"<="|">=") primary)?
    primary     := number | string | function_call | location_path | "(" expr ")"
    location_path := ("/" | "//")? step (("/" | "//") step)*
    step        := ("." | ".." | "@" name | name "(" ")" (text only)
                    | name | "*") predicate*
    predicate   := "[" expr "]"
"""

from __future__ import annotations

from ...errors import XPathError
from .ast import (AttributeTest, BooleanOp, Comparison, Expr, FunctionCall,
                  LocationPath, NameTest, NumberLiteral, ParentTest, SelfTest,
                  Step, StringLiteral, TextTest, Union_)
from .lexer import Token, tokenize

_FUNCTIONS = {
    "contains", "starts-with", "count", "position", "last",
    "normalize-space", "string", "number", "name", "not", "concat",
    "string-length", "substring",
}


class _Parser:
    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.tokens = tokenize(expression)
        self.index = 0

    def error(self, message: str) -> XPathError:
        return XPathError(f"{message} in XPath {self.expression!r}")

    def peek(self) -> Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of expression")
        self.index += 1
        return token

    def accept(self, kind: str) -> Token | None:
        token = self.peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise self.error(f"expected {kind}, got {token.value!r}")
        return token

    # -- expression levels ----------------------------------------------

    def parse(self) -> Expr:
        expr = self.or_expr()
        if self.peek() is not None:
            raise self.error(f"trailing tokens starting at {self.peek().value!r}")
        return expr

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while self._keyword("or"):
            left = BooleanOp("or", left, self.and_expr())
        return left

    def and_expr(self) -> Expr:
        left = self.union_expr()
        while self._keyword("and"):
            left = BooleanOp("and", left, self.union_expr())
        return left

    def _keyword(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "name" and token.value == word:
            self.index += 1
            return True
        return False

    def union_expr(self) -> Expr:
        left = self.cmp_expr()
        while self.accept("union"):
            left = Union_(left, self.cmp_expr())
        return left

    def cmp_expr(self) -> Expr:
        left = self.primary()
        token = self.peek()
        if token is not None and token.kind in ("eq", "ne", "lt", "gt", "le", "ge"):
            self.index += 1
            operator = {"eq": "=", "ne": "!=", "lt": "<", "gt": ">",
                        "le": "<=", "ge": ">="}[token.kind]
            return Comparison(operator, left, self.primary())
        return left

    def primary(self) -> Expr:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of expression")
        if token.kind == "number":
            self.index += 1
            return NumberLiteral(float(token.value))
        if token.kind == "string":
            self.index += 1
            return StringLiteral(token.value)
        if token.kind == "lparen":
            self.index += 1
            inner = self.or_expr()
            self.expect("rparen")
            return inner
        if (token.kind == "name" and token.value in _FUNCTIONS
                and self._lookahead_is("lparen") and token.value != "text"):
            return self.function_call()
        return self.location_path()

    def _lookahead_is(self, kind: str) -> bool:
        if self.index + 1 < len(self.tokens):
            return self.tokens[self.index + 1].kind == kind
        return False

    def function_call(self) -> Expr:
        name = self.expect("name").value
        self.expect("lparen")
        arguments: list[Expr] = []
        if self.peek() is not None and self.peek().kind != "rparen":
            arguments.append(self.or_expr())
            while self.accept("comma"):
                arguments.append(self.or_expr())
        self.expect("rparen")
        return FunctionCall(name, tuple(arguments))

    # -- location paths ---------------------------------------------------

    def location_path(self) -> LocationPath:
        absolute = False
        descendant = False
        if self.accept("dslash"):
            absolute = True
            descendant = True
        elif self.accept("slash"):
            absolute = True
        steps = [self.step(descendant)]
        while True:
            if self.accept("dslash"):
                steps.append(self.step(True))
            elif self.accept("slash"):
                steps.append(self.step(False))
            else:
                break
        return LocationPath(absolute, tuple(steps))

    def step(self, descendant: bool) -> Step:
        token = self.peek()
        if token is None:
            raise self.error("expected location step")
        if token.kind == "ddot":
            self.index += 1
            test: object = ParentTest()
        elif token.kind == "dot":
            self.index += 1
            test = SelfTest()
        elif token.kind == "at":
            self.index += 1
            name_token = self.next()
            if name_token.kind not in ("name", "star"):
                raise self.error(f"expected attribute name, got {name_token.value!r}")
            test = AttributeTest(name_token.value)
        elif token.kind == "star":
            self.index += 1
            test = NameTest("*")
        elif token.kind == "name":
            if token.value == "text" and self._lookahead_is("lparen"):
                self.index += 1
                self.expect("lparen")
                self.expect("rparen")
                test = TextTest()
            else:
                self.index += 1
                test = NameTest(token.value)
        else:
            raise self.error(f"expected location step, got {token.value!r}")

        predicates: list[Expr] = []
        while self.accept("lbracket"):
            predicates.append(self.or_expr())
            self.expect("rbracket")
        return Step(test, descendant, tuple(predicates))  # type: ignore[arg-type]


def parse_xpath(expression: str) -> Expr:
    """Parse an XPath expression string into its AST."""
    if not expression or not expression.strip():
        raise XPathError("empty XPath expression")
    return _Parser(expression).parse()
