"""Evaluation engine for the XPath subset.

Values in this engine are one of: a node-set (``list`` of Element / Text /
attribute-value strings, in document order), a ``str``, a ``float`` or a
``bool`` — the four XPath 1.0 value types.  Attribute steps yield plain
strings (the attribute values), which is what extraction rules consume.
"""

from __future__ import annotations

from ...errors import XPathError
from ..dom import Document, Element, Text
from .ast import (AttributeTest, BooleanOp, Comparison, Expr, FunctionCall,
                  LocationPath, NameTest, NumberLiteral, ParentTest, SelfTest,
                  Step, StringLiteral, TextTest, Union_)
from .parser import parse_xpath


def _string_value(item) -> str:
    if isinstance(item, Element):
        return item.text_content()
    if isinstance(item, Text):
        return item.value
    return str(item)


def _to_string(value) -> str:
    if isinstance(value, list):
        return _string_value(value[0]) if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:
            return "NaN"  # XPath: string(NaN) = "NaN"
        return str(int(value)) if value == int(value) else str(value)
    return str(value)


def _to_number(value) -> float:
    text = _to_string(value).strip()
    try:
        return float(text)
    except ValueError:
        return float("nan")


def _to_bool(value) -> bool:
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, float):
        return value != 0 and value == value  # non-zero, not NaN
    return bool(value)


class _Context:
    __slots__ = ("node", "position", "size")

    def __init__(self, node, position: int, size: int) -> None:
        self.node = node
        self.position = position  # 1-based, per XPath
        self.size = size


class XPath:
    """A compiled XPath expression."""

    def __init__(self, expression: str) -> None:
        self.expression = expression
        self._ast = parse_xpath(expression)

    def __repr__(self) -> str:
        return f"XPath({self.expression!r})"

    # -- public API -----------------------------------------------------

    def select(self, root: Document | Element) -> list:
        """Evaluate and return a node-set (list), coercing scalars to a list."""
        result = self.evaluate(root)
        if isinstance(result, list):
            return result
        return [result]

    def evaluate(self, root: Document | Element):
        """Evaluate and return the raw XPath value."""
        if isinstance(root, Document):
            context_node: object = root
        else:
            context_node = root
        context = _Context(context_node, 1, 1)
        return self._eval(self._ast, context)

    def values(self, root: Document | Element) -> list[str]:
        """String values of the selected node-set."""
        return [_string_value(item) for item in self.select(root)]

    def first(self, root: Document | Element, default: str | None = None) -> str | None:
        """String value of the first selected node, or ``default``."""
        values = self.values(root)
        return values[0] if values else default

    # -- evaluation -----------------------------------------------------

    def _eval(self, expr: Expr, context: _Context):
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, LocationPath):
            return self._eval_path(expr, context)
        if isinstance(expr, Comparison):
            return self._eval_comparison(expr, context)
        if isinstance(expr, BooleanOp):
            left = _to_bool(self._eval(expr.left, context))
            if expr.operator == "and":
                return left and _to_bool(self._eval(expr.right, context))
            return left or _to_bool(self._eval(expr.right, context))
        if isinstance(expr, Union_):
            left = self._eval(expr.left, context)
            right = self._eval(expr.right, context)
            if not isinstance(left, list) or not isinstance(right, list):
                raise XPathError("union operands must be node-sets")
            merged = list(left)
            seen = {id(item) for item in left}
            for item in right:
                if id(item) not in seen:
                    merged.append(item)
            return merged
        if isinstance(expr, FunctionCall):
            return self._eval_function(expr, context)
        raise XPathError(f"unsupported expression node: {expr!r}")

    def _eval_comparison(self, expr: Comparison, context: _Context):
        left = self._eval(expr.left, context)
        right = self._eval(expr.right, context)

        def compare(a, b) -> bool:
            if expr.operator in ("=", "!="):
                # Numeric comparison when either side is numeric.
                if isinstance(a, float) or isinstance(b, float):
                    equal = _to_number(a) == _to_number(b)
                else:
                    equal = _to_string(a) == _to_string(b)
                return equal if expr.operator == "=" else not equal
            na, nb = _to_number(a), _to_number(b)
            if expr.operator == "<":
                return na < nb
            if expr.operator == ">":
                return na > nb
            if expr.operator == "<=":
                return na <= nb
            return na >= nb

        # Node-set comparisons are existential in XPath 1.0.
        left_items = left if isinstance(left, list) else [left]
        right_items = right if isinstance(right, list) else [right]
        for a in left_items:
            a_value = _string_value(a) if isinstance(left, list) else a
            for b in right_items:
                b_value = _string_value(b) if isinstance(right, list) else b
                if compare(a_value, b_value):
                    return True
        return False

    def _eval_function(self, expr: FunctionCall, context: _Context):
        name = expr.name
        args = [self._eval(a, context) for a in expr.arguments]
        if name == "position":
            return float(context.position)
        if name == "last":
            return float(context.size)
        if name == "count":
            if len(args) != 1 or not isinstance(args[0], list):
                raise XPathError("count() requires one node-set argument")
            return float(len(args[0]))
        if name == "contains":
            return _to_string(args[0]).find(_to_string(args[1])) >= 0
        if name == "starts-with":
            return _to_string(args[0]).startswith(_to_string(args[1]))
        if name == "normalize-space":
            source = args[0] if args else [context.node]
            return " ".join(_to_string(source).split())
        if name == "string":
            return _to_string(args[0] if args else [context.node])
        if name == "number":
            return _to_number(args[0] if args else [context.node])
        if name == "name":
            target = args[0][0] if args and isinstance(args[0], list) and args[0] \
                else context.node
            return target.name if isinstance(target, Element) else ""
        if name == "not":
            return not _to_bool(args[0])
        if name == "concat":
            return "".join(_to_string(a) for a in args)
        if name == "string-length":
            return float(len(_to_string(args[0] if args else [context.node])))
        if name == "substring":
            text = _to_string(args[0])
            start = int(_to_number(args[1])) - 1
            if len(args) > 2:
                length = int(_to_number(args[2]))
                return text[max(start, 0):max(start, 0) + length]
            return text[max(start, 0):]
        raise XPathError(f"unsupported function: {name}()")

    # -- location path machinery ----------------------------------------

    def _eval_path(self, path: LocationPath, context: _Context) -> list:
        if path.absolute:
            node = context.node
            while True:
                if isinstance(node, Document):
                    start: list = [node]
                    break
                parent = getattr(node, "parent", None)
                if parent is None:
                    start = [node]
                    break
                node = parent
        else:
            start = [context.node]
        current = start
        for step in path.steps:
            current = self._eval_step(step, current)
        return current

    def _eval_step(self, step: Step, nodes: list) -> list:
        """Apply the node test and predicates for every context node.

        Predicates — in particular positional ones — are evaluated
        *per context node*, per XPath 1.0: ``//item[1]`` selects the
        first ``item`` child of every parent, not the first match
        overall."""
        results: list = []
        seen: set[int] = set()
        for node in nodes:
            if step.descendant:
                scopes = list(self._descendants_or_self_scope(step, node))
            else:
                scopes = [node]
            for scope in scopes:
                candidates = self._apply_test_single(step, scope)
                for predicate in step.predicates:
                    retained: list = []
                    size = len(candidates)
                    for position, candidate in enumerate(candidates,
                                                         start=1):
                        value = self._eval(
                            predicate, _Context(candidate, position, size))
                        if isinstance(value, float):
                            if position == int(value):
                                retained.append(candidate)
                        elif _to_bool(value):
                            retained.append(candidate)
                    candidates = retained
                for candidate in candidates:
                    key = id(candidate)
                    if key not in seen:
                        seen.add(key)
                        results.append(candidate)
        return results

    def _descendants_or_self_scope(self, step: Step, node):
        """Scopes for a ``//`` step (self + all element descendants)."""
        yield from self._descendants_or_self(node)

    def _apply_test_single(self, step: Step, scope) -> list:
        """Node test against one scope (no descendant expansion here)."""
        test = step.test
        if isinstance(test, SelfTest):
            return [scope]
        if isinstance(test, ParentTest):
            parent = getattr(scope, "parent", None)
            return [parent] if parent is not None else []
        results: list = []
        if isinstance(test, NameTest):
            for child in self._element_children(scope):
                if test.name == "*" or child.name == test.name:
                    results.append(child)
        elif isinstance(test, AttributeTest):
            if isinstance(scope, Element):
                if test.name == "*":
                    results.extend(scope.attributes.values())
                elif test.name in scope.attributes:
                    results.append(scope.attributes[test.name])
        elif isinstance(test, TextTest):
            for child in self._all_children(scope):
                if isinstance(child, Text):
                    results.append(child)
        return results

    @staticmethod
    def _element_children(node) -> list[Element]:
        if isinstance(node, Document):
            return [node.root]
        if isinstance(node, Element):
            return node.element_children()
        return []

    @staticmethod
    def _all_children(node) -> list:
        if isinstance(node, Document):
            return [node.root]
        if isinstance(node, Element):
            return list(node.children)
        return []

    @classmethod
    def _descendants_or_self(cls, node):
        yield node
        for child in cls._element_children(node):
            yield from cls._descendants_or_self(child)


def xpath_select(root: Document | Element, expression: str) -> list:
    """One-shot convenience: compile and select."""
    return XPath(expression).select(root)
