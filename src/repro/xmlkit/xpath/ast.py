"""AST node definitions for the XPath subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True, slots=True)
class NameTest:
    """A child-element step matching a name or ``*``."""
    name: str  # "*" means any element


@dataclass(frozen=True, slots=True)
class AttributeTest:
    """An ``@name`` step selecting attribute values."""
    name: str  # "*" means any attribute


@dataclass(frozen=True, slots=True)
class TextTest:
    """``text()`` — select text-node children."""


@dataclass(frozen=True, slots=True)
class SelfTest:
    """``.`` — the context node."""


@dataclass(frozen=True, slots=True)
class ParentTest:
    """``..`` — the parent node."""


NodeTest = Union[NameTest, AttributeTest, TextTest, SelfTest, ParentTest]


@dataclass(frozen=True, slots=True)
class Step:
    """One location step: node test, descendant flag, predicates."""
    test: NodeTest
    descendant: bool = False  # True when reached via //
    predicates: tuple["Expr", ...] = field(default=())


@dataclass(frozen=True, slots=True)
class LocationPath:
    absolute: bool
    steps: tuple[Step, ...]


@dataclass(frozen=True, slots=True)
class NumberLiteral:
    value: float


@dataclass(frozen=True, slots=True)
class StringLiteral:
    value: str


@dataclass(frozen=True, slots=True)
class FunctionCall:
    name: str
    arguments: tuple["Expr", ...]


@dataclass(frozen=True, slots=True)
class Comparison:
    operator: str  # = != < > <= >=
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class BooleanOp:
    operator: str  # and | or
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class Union_:
    """``left | right`` — node-set union."""
    left: "Expr"
    right: "Expr"


Expr = Union[LocationPath, NumberLiteral, StringLiteral, FunctionCall,
             Comparison, BooleanOp, Union_]
