"""XPath 1.0 subset engine over the DOM-lite tree.

Supported grammar (the slice used by B2B extraction rules):

* absolute and relative location paths with ``/`` and ``//`` separators;
* name tests, ``*`` wildcard, ``@attribute`` steps, ``.`` and ``..``;
* predicates: numeric position, comparisons, ``and`` / ``or``;
* functions: ``text()``, ``contains()``, ``starts-with()``, ``count()``,
  ``position()``, ``last()``, ``normalize-space()``, ``string()``,
  ``number()``, ``name()``;
* union expressions with ``|``.
"""

from .engine import XPath, xpath_select

__all__ = ["XPath", "xpath_select"]
