"""Tokenizer for the XPath subset."""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...errors import XPathError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<dslash>//)
  | (?P<slash>/)
  | (?P<dcolon>::)
  | (?P<ddot>\.\.)
  | (?P<dot>\.)
  | (?P<at>@)
  | (?P<lbracket>\[) | (?P<rbracket>\])
  | (?P<lparen>\() | (?P<rparen>\))
  | (?P<union>\|)
  | (?P<ne>!=) | (?P<le><=) | (?P<ge>>=) | (?P<eq>=) | (?P<lt><) | (?P<gt>>)
  | (?P<comma>,)
  | (?P<star>\*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-.]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token (kind, text, offset)."""
    kind: str
    value: str
    position: int


def tokenize(expression: str) -> list[Token]:
    """Tokenize an XPath expression, dropping whitespace."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(expression):
        match = _TOKEN_RE.match(expression, pos)
        if match is None:
            raise XPathError(
                f"unexpected character {expression[pos]!r} at offset {pos} "
                f"in XPath {expression!r}")
        kind = match.lastgroup or ""
        if kind != "ws":
            value = match.group()
            if kind == "string":
                value = value[1:-1]
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    return tokens
