"""XML serializer for the DOM-lite tree.

Pretty-prints with two-space indentation by default; elements whose only
content is text are written on one line so documents stay diff-friendly.
"""

from __future__ import annotations

from .dom import Document, Element, Text


def _escape_text(value: str) -> str:
    return (value.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _escape_attr(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


def _render_element(element: Element, indent: int, pretty: bool,
                    lines: list[str]) -> None:
    pad = "  " * indent if pretty else ""
    attrs = "".join(
        f' {name}="{_escape_attr(value)}"'
        for name, value in element.attributes.items())
    children = element.children
    if not children:
        lines.append(f"{pad}<{element.name}{attrs}/>")
        return
    if all(isinstance(c, Text) for c in children):
        text = _escape_text("".join(c.value for c in children))  # type: ignore[union-attr]
        lines.append(f"{pad}<{element.name}{attrs}>{text}</{element.name}>")
        return
    lines.append(f"{pad}<{element.name}{attrs}>")
    for child in children:
        if isinstance(child, Text):
            stripped = child.value.strip()
            if stripped:
                child_pad = "  " * (indent + 1) if pretty else ""
                lines.append(f"{child_pad}{_escape_text(stripped)}")
        else:
            _render_element(child, indent + 1, pretty, lines)
    lines.append(f"{pad}</{element.name}>")


def serialize_xml(document: Document | Element, *, pretty: bool = True) -> str:
    """Render a document or element subtree as an XML string."""
    lines: list[str] = []
    if isinstance(document, Document):
        if document.declaration:
            lines.append('<?xml version="1.0" encoding="UTF-8"?>')
        root = document.root
    else:
        root = document
    _render_element(root, 0, pretty, lines)
    return "\n".join(lines) + "\n"
