"""A self-contained RDF substrate.

The paper's middleware emits its integrated results as OWL documents; since
no third-party RDF library is assumed, this package implements the pieces of
the RDF data model the middleware needs:

* :mod:`repro.rdf.terms` — IRIs, literals, blank nodes, triples;
* :mod:`repro.rdf.namespace` — namespace/prefix management and the standard
  RDF/RDFS/OWL/XSD vocabularies;
* :mod:`repro.rdf.graph` — an indexed in-memory triple store with pattern
  matching;
* :mod:`repro.rdf.turtle` — Turtle serializer and parser;
* :mod:`repro.rdf.rdfxml` — RDF/XML serializer and parser (the concrete
  syntax OWL documents are exchanged in);
* :mod:`repro.rdf.ntriples` — N-Triples line format;
* :mod:`repro.rdf.sparql` — a SPARQL subset for consuming the
  middleware's output ("semantic knowledge processing");
* :mod:`repro.rdf.inference` — RDFS entailment materialization.
"""

from .terms import IRI, BlankNode, Literal, Triple
from .namespace import Namespace, NamespaceManager, OWL, RDF, RDFS, XSD
from .graph import Graph
from .sparql import execute_sparql
from .inference import materialize_rdfs

__all__ = [
    "IRI",
    "BlankNode",
    "Literal",
    "Triple",
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "Graph",
    "execute_sparql",
    "materialize_rdfs",
]
