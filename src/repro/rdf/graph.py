"""An indexed, in-memory RDF triple store.

The graph maintains three hash indexes (SPO, POS, OSP) so that any triple
pattern with at least one bound position is answered without a full scan.
This is the storage layer under both the ontology model and the OWL output
of the instance generator, and its index design is one of the ablations
measured in benchmark E2 (see DESIGN.md section 7).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from ..errors import RdfError
from .namespace import NamespaceManager, RDF
from .terms import IRI, BlankNode, Object, Predicate, Subject, Triple


class Graph:
    """A set of RDF triples with pattern-matching access paths."""

    def __init__(self, *, namespace_manager: NamespaceManager | None = None) -> None:
        self._triples: set[Triple] = set()
        self._spo: dict[Subject, dict[Predicate, set[Object]]] = defaultdict(
            lambda: defaultdict(set))
        self._pos: dict[Predicate, dict[Object, set[Subject]]] = defaultdict(
            lambda: defaultdict(set))
        self._osp: dict[Object, dict[Subject, set[Predicate]]] = defaultdict(
            lambda: defaultdict(set))
        self.namespace_manager = namespace_manager or NamespaceManager()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, subject: Subject, predicate: Predicate, obj: Object) -> bool:
        """Add one triple; returns True if it was not already present."""
        triple = Triple(subject, predicate, obj)
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._spo[subject][predicate].add(obj)
        self._pos[predicate][obj].add(subject)
        self._osp[obj][subject].add(predicate)
        return True

    def add_triple(self, triple: Triple) -> bool:
        """Add a :class:`Triple`; returns True if newly inserted."""
        return self.add(triple.subject, triple.predicate, triple.object)

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        added = 0
        for triple in triples:
            if self.add_triple(triple):
                added += 1
        return added

    def remove(self, subject: Subject | None = None,
               predicate: Predicate | None = None,
               obj: Object | None = None) -> int:
        """Remove all triples matching the pattern; returns removal count."""
        victims = list(self.triples(subject, predicate, obj))
        for triple in victims:
            self._triples.discard(triple)
            self._discard_index(self._spo, triple.subject, triple.predicate,
                                triple.object)
            self._discard_index(self._pos, triple.predicate, triple.object,
                                triple.subject)
            self._discard_index(self._osp, triple.object, triple.subject,
                                triple.predicate)
        return len(victims)

    @staticmethod
    def _discard_index(index, first, second, third) -> None:
        bucket = index.get(first)
        if bucket is None:
            return
        inner = bucket.get(second)
        if inner is None:
            return
        inner.discard(third)
        if not inner:
            del bucket[second]
        if not bucket:
            del index[first]

    def clear(self) -> None:
        """Remove every triple."""
        self._triples.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def triples(self, subject: Subject | None = None,
                predicate: Predicate | None = None,
                obj: Object | None = None) -> Iterator[Triple]:
        """Yield triples matching a pattern; ``None`` is a wildcard.

        Dispatches to the index whose bound positions narrow the scan most.
        """
        if subject is not None and predicate is not None and obj is not None:
            candidate = Triple(subject, predicate, obj)
            if candidate in self._triples:
                yield candidate
            return
        if subject is not None:
            by_pred = self._spo.get(subject, {})
            predicates = [predicate] if predicate is not None else list(by_pred)
            for pred in predicates:
                for o in by_pred.get(pred, ()):
                    if obj is None or o == obj:
                        yield Triple(subject, pred, o)
            return
        if predicate is not None:
            by_obj = self._pos.get(predicate, {})
            objects = [obj] if obj is not None else list(by_obj)
            for o in objects:
                for s in by_obj.get(o, ()):
                    yield Triple(s, predicate, o)
            return
        if obj is not None:
            by_subj = self._osp.get(obj, {})
            for s, preds in by_subj.items():
                for pred in preds:
                    yield Triple(s, pred, obj)
            return
        yield from self._triples

    def subjects(self, predicate: Predicate | None = None,
                 obj: Object | None = None) -> Iterator[Subject]:
        """Distinct subjects matching the pattern."""
        seen: set[Subject] = set()
        for triple in self.triples(None, predicate, obj):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def objects(self, subject: Subject | None = None,
                predicate: Predicate | None = None) -> Iterator[Object]:
        """Distinct objects matching the pattern."""
        seen: set[Object] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def predicates(self, subject: Subject | None = None,
                   obj: Object | None = None) -> Iterator[Predicate]:
        """Distinct predicates matching the pattern."""
        seen: set[Predicate] = set()
        for triple in self.triples(subject, None, obj):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def value(self, subject: Subject | None = None,
              predicate: Predicate | None = None,
              obj: Object | None = None):
        """Return the single term filling the one unbound position, or None.

        Raises :class:`RdfError` when more than one value matches, because a
        silent arbitrary choice hides data problems.
        """
        unbound = [name for name, term in
                   (("subject", subject), ("predicate", predicate), ("object", obj))
                   if term is None]
        if len(unbound) != 1:
            raise RdfError("value() requires exactly one unbound position")
        results = list(self.triples(subject, predicate, obj))
        if not results:
            return None
        values = {getattr(t, unbound[0]) for t in results}
        if len(values) > 1:
            raise RdfError(
                f"value() is ambiguous: {len(values)} candidates for {unbound[0]}")
        return next(iter(values))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def instances_of(self, class_iri: IRI) -> Iterator[Subject]:
        """Subjects with ``rdf:type class_iri``."""
        yield from self.subjects(RDF.type, class_iri)

    def copy(self) -> "Graph":
        """An independent copy sharing the namespace manager."""
        clone = Graph(namespace_manager=self.namespace_manager)
        clone.update(self._triples)
        return clone

    def __or__(self, other: "Graph") -> "Graph":
        merged = self.copy()
        merged.update(other)
        return merged

    def isomorphic_signature(self) -> frozenset[str]:
        """A cheap comparison key ignoring blank-node labels.

        Blank nodes are replaced with a placeholder; two graphs with the
        same signature contain the same ground structure.  This is not a
        full graph-isomorphism check (bnode-heavy graphs may collide) but is
        sufficient for the serializer round-trip tests where blank nodes are
        rare and structurally distinct.
        """
        def render(term) -> str:
            if isinstance(term, BlankNode):
                return "_:"
            return term.n3()

        return frozenset(
            f"{render(t.subject)} {render(t.predicate)} {render(t.object)}"
            for t in self._triples)
