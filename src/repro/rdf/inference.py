"""RDFS entailment materialization.

The middleware's OWL output carries the schema (``rdfs:subClassOf``
edges, domains, ranges); a consumer that wants "semantic knowledge
processing" (paper §1) can materialize the standard RDFS entailments so
that e.g. a SPARQL query for ``?x a onto:product`` also finds the
``onto:watch`` instances.  Implemented rules (fixpoint):

* rdfs5  — subPropertyOf transitivity;
* rdfs7  — property inheritance through subPropertyOf;
* rdfs9  — type propagation through subClassOf;
* rdfs11 — subClassOf transitivity;
* rdfs2  — domain entailment (``p rdfs:domain C``, ``s p o`` → ``s a C``);
* rdfs3  — range entailment for IRI/bnode objects.
"""

from __future__ import annotations

from .graph import Graph
from .namespace import RDF, RDFS
from .terms import IRI, Literal


def materialize_rdfs(graph: Graph, *, max_rounds: int = 50) -> int:
    """Add RDFS entailments to ``graph`` in place.

    Returns the number of triples added.  Runs rule application to a
    fixpoint; ``max_rounds`` bounds pathological ontologies."""
    added_total = 0
    for _round in range(max_rounds):
        added = _apply_once(graph)
        added_total += added
        if added == 0:
            return added_total
    return added_total


def _apply_once(graph: Graph) -> int:
    new_triples = []

    # rdfs11: subclass transitivity.
    subclass_edges = list(graph.triples(None, RDFS.subClassOf, None))
    parents: dict = {}
    for triple in subclass_edges:
        parents.setdefault(triple.subject, set()).add(triple.object)
    for triple in subclass_edges:
        for grandparent in parents.get(triple.object, ()):
            new_triples.append((triple.subject, RDFS.subClassOf,
                                grandparent))

    # rdfs9: type propagation.
    for triple in list(graph.triples(None, RDF.type, None)):
        for parent in parents.get(triple.object, ()):
            new_triples.append((triple.subject, RDF.type, parent))

    # rdfs5: subproperty transitivity; rdfs7: property inheritance.
    subprop_edges = list(graph.triples(None, RDFS.subPropertyOf, None))
    super_props: dict = {}
    for triple in subprop_edges:
        super_props.setdefault(triple.subject, set()).add(triple.object)
    for triple in subprop_edges:
        for grandparent in super_props.get(triple.object, ()):
            new_triples.append((triple.subject, RDFS.subPropertyOf,
                                grandparent))
    for child, supers in super_props.items():
        if not isinstance(child, IRI):
            continue
        for statement in list(graph.triples(None, child, None)):
            for super_prop in supers:
                if isinstance(super_prop, IRI):
                    new_triples.append((statement.subject, super_prop,
                                        statement.object))

    # rdfs2/rdfs3: domain and range entailment.
    for domain_triple in list(graph.triples(None, RDFS.domain, None)):
        prop = domain_triple.subject
        if not isinstance(prop, IRI):
            continue
        for statement in list(graph.triples(None, prop, None)):
            new_triples.append((statement.subject, RDF.type,
                                domain_triple.object))
    for range_triple in list(graph.triples(None, RDFS.range, None)):
        prop = range_triple.subject
        if not isinstance(prop, IRI):
            continue
        for statement in list(graph.triples(None, prop, None)):
            if not isinstance(statement.object, Literal):
                new_triples.append((statement.object, RDF.type,
                                    range_triple.object))

    added = 0
    for subject, predicate, obj in new_triples:
        if graph.add(subject, predicate, obj):
            added += 1
    return added
