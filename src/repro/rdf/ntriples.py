"""N-Triples serializer and parser.

The simplest RDF line format: one triple per line in fully-expanded form.
Added as the proof case for the paper's "other outputs can easily be
adapted" claim (§2.6) — the whole adapter is a few dozen lines over the
existing term model.
"""

from __future__ import annotations

import re

from ..errors import RdfSyntaxError
from .graph import Graph
from .namespace import NamespaceManager
from .terms import IRI, BlankNode, Literal

_LINE_RE = re.compile(
    r"""\s*
    (?P<subject><[^>]*>|_:[A-Za-z0-9_]+)\s+
    (?P<predicate><[^>]*>)\s+
    (?P<object><[^>]*>|_:[A-Za-z0-9_]+|"(?:[^"\\]|\\.)*"
        (?:\^\^<[^>]*>|@[A-Za-z0-9\-]+)?)\s*
    \.\s*(?:\#.*)?$""",
    re.VERBOSE,
)

_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}


def serialize_ntriples(graph: Graph) -> str:
    """One ``subject predicate object .`` line per triple, sorted."""
    return "".join(sorted(triple.n3() + "\n" for triple in graph))


def _unescape(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt in _ESCAPES:
                out.append(_ESCAPES[nxt])
                i += 2
                continue
            if nxt == "u" and i + 6 <= len(text):
                out.append(chr(int(text[i + 2:i + 6], 16)))
                i += 6
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


def _parse_term(token: str, bnodes: dict[str, BlankNode]):
    if token.startswith("<"):
        return IRI(token[1:-1])
    if token.startswith("_:"):
        label = token[2:]
        if label not in bnodes:
            bnodes[label] = BlankNode()
        return bnodes[label]
    # literal
    match = re.match(r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^>]*)>|@([A-Za-z0-9\-]+))?\Z',
                     token)
    if match is None:
        raise RdfSyntaxError(f"malformed N-Triples term: {token!r}")
    lexical = _unescape(match.group(1))
    datatype, language = match.group(2), match.group(3)
    if datatype:
        return Literal(lexical, IRI(datatype))
    if language:
        return Literal(lexical, language=language)
    return Literal(lexical)


def parse_ntriples(text: str) -> Graph:
    """Parse an N-Triples document into a fresh :class:`Graph`."""
    graph = Graph(namespace_manager=NamespaceManager())
    bnodes: dict[str, BlankNode] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise RdfSyntaxError(f"malformed N-Triples line: {line!r}",
                                 line=line_number)
        subject = _parse_term(match.group("subject"), bnodes)
        predicate = _parse_term(match.group("predicate"), bnodes)
        obj = _parse_term(match.group("object"), bnodes)
        if isinstance(subject, Literal) or not isinstance(predicate, IRI):
            raise RdfSyntaxError("invalid term positions",
                                 line=line_number)
        graph.add(subject, predicate, obj)  # type: ignore[arg-type]
    return graph
