"""RDF term model: IRIs, blank nodes, literals and triples.

Terms are immutable value objects so they can be used as dictionary keys in
the indexed graph.  A :class:`Triple` is a named tuple-like dataclass of
(subject, predicate, object) with the usual RDF positional constraints
enforced at construction time.
"""

from __future__ import annotations

import itertools
import re
import threading
from dataclasses import dataclass, field
from typing import Union

from ..errors import RdfError

_IRI_FORBIDDEN = re.compile(r"[<>\"{}|^`\\\x00-\x20]")


@dataclass(frozen=True, slots=True)
class IRI:
    """An absolute or relative IRI reference."""

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise RdfError("IRI must be non-empty")
        if _IRI_FORBIDDEN.search(self.value):
            raise RdfError(f"IRI contains forbidden characters: {self.value!r}")

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        """N-Triples / Turtle rendering."""
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """Heuristic local part: text after the last '#' or '/'."""
        for sep in ("#", "/"):
            if sep in self.value:
                candidate = self.value.rsplit(sep, 1)[1]
                if candidate:
                    return candidate
        return self.value

    @property
    def namespace_part(self) -> str:
        """Heuristic namespace: everything up to and including the last '#' or '/'."""
        local = self.local_name
        if local != self.value:
            return self.value[: len(self.value) - len(local)]
        return ""


_blank_counter = itertools.count(1)
_blank_lock = threading.Lock()


@dataclass(frozen=True, slots=True)
class BlankNode:
    """An anonymous RDF node; fresh labels are generated when omitted."""

    label: str = field(default="")

    def __post_init__(self) -> None:
        if not self.label:
            with _blank_lock:
                object.__setattr__(self, "label", f"b{next(_blank_counter)}")
        if not re.match(r"[A-Za-z0-9_]+\Z", self.label):
            raise RdfError(f"invalid blank node label: {self.label!r}")

    def __str__(self) -> str:
        return f"_:{self.label}"

    def n3(self) -> str:
        """N-Triples / Turtle rendering."""
        return f"_:{self.label}"


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with optional datatype IRI or language tag.

    Exactly one of ``datatype`` / ``language`` may be set; a plain literal
    has neither (it is implicitly ``xsd:string`` per RDF 1.1, but we keep
    the distinction for faithful round-tripping).
    """

    lexical: str
    datatype: IRI | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.language is not None:
            raise RdfError("literal cannot have both datatype and language")
        if self.language is not None and not re.match(
                r"[A-Za-z]{1,8}(-[A-Za-z0-9]{1,8})*\Z", self.language):
            raise RdfError(f"invalid language tag: {self.language!r}")

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        """N-Triples / Turtle rendering."""
        escaped = (self.lexical.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\r", "\\r").replace("\t", "\\t"))
        base = f'"{escaped}"'
        if self.language is not None:
            return f"{base}@{self.language}"
        if self.datatype is not None:
            return f"{base}^^{self.datatype.n3()}"
        return base

    def to_python(self):
        """Convert to a native Python value based on the XSD datatype."""
        if self.datatype is None:
            return self.lexical
        name = self.datatype.local_name
        import datetime as _dt
        try:
            if name in ("integer", "int", "long", "short", "byte",
                        "nonNegativeInteger", "positiveInteger"):
                return int(self.lexical)
            if name in ("decimal", "double", "float"):
                return float(self.lexical)
            if name == "boolean":
                return self.lexical.strip().lower() in ("true", "1")
            if name == "date":
                return _dt.date.fromisoformat(self.lexical.strip())
            if name == "dateTime":
                return _dt.datetime.fromisoformat(self.lexical.strip())
        except ValueError as exc:
            raise RdfError(
                f"literal {self.lexical!r} is not a valid {name}") from exc
        return self.lexical


Subject = Union[IRI, BlankNode]
Predicate = IRI
Object = Union[IRI, BlankNode, Literal]
Term = Union[IRI, BlankNode, Literal]


@dataclass(frozen=True, slots=True)
class Triple:
    """An RDF statement (subject, predicate, object)."""

    subject: Subject
    predicate: Predicate
    object: Object

    def __post_init__(self) -> None:
        if not isinstance(self.subject, (IRI, BlankNode)):
            raise RdfError(
                f"triple subject must be IRI or BlankNode, got {type(self.subject).__name__}")
        if not isinstance(self.predicate, IRI):
            raise RdfError(
                f"triple predicate must be IRI, got {type(self.predicate).__name__}")
        if not isinstance(self.object, (IRI, BlankNode, Literal)):
            raise RdfError(
                f"triple object must be IRI, BlankNode or Literal, got "
                f"{type(self.object).__name__}")

    def __iter__(self):
        yield self.subject
        yield self.predicate
        yield self.object

    def n3(self) -> str:
        """N-Triples / Turtle rendering."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."


def python_to_literal(value, xsd_namespace: str = "http://www.w3.org/2001/XMLSchema#") -> Literal:
    """Build a typed literal from a native Python value."""
    import datetime as _dt

    if isinstance(value, Literal):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", IRI(xsd_namespace + "boolean"))
    if isinstance(value, int):
        return Literal(str(value), IRI(xsd_namespace + "integer"))
    if isinstance(value, float):
        return Literal(repr(value), IRI(xsd_namespace + "double"))
    if isinstance(value, _dt.datetime):
        return Literal(value.isoformat(), IRI(xsd_namespace + "dateTime"))
    if isinstance(value, _dt.date):
        return Literal(value.isoformat(), IRI(xsd_namespace + "date"))
    if isinstance(value, str):
        return Literal(value)
    raise RdfError(f"cannot convert {type(value).__name__} to RDF literal")
