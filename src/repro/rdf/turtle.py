"""Turtle (Terse RDF Triple Language) serializer and parser.

Supports the subset of Turtle the middleware itself produces plus the common
authoring conveniences: ``@prefix`` / ``@base`` directives, qualified names,
``a`` for ``rdf:type``, predicate lists (``;``), object lists (``,``),
anonymous blank nodes (``[...]``), collections are *not* supported (the
middleware never emits them), numeric/boolean shorthand literals, language
tags and datatyped literals with long or short quoted strings.
"""

from __future__ import annotations

import re

from ..errors import RdfSyntaxError
from .graph import Graph
from .namespace import NamespaceManager
from .terms import IRI, BlankNode, Literal, Object, Subject

# ---------------------------------------------------------------------------
# Serializer
# ---------------------------------------------------------------------------


def serialize_turtle(graph: Graph) -> str:
    """Render ``graph`` as a Turtle document grouped by subject."""
    manager = graph.namespace_manager
    lines: list[str] = []
    for prefix, base in manager.namespaces():
        lines.append(f"@prefix {prefix}: <{base}> .")
    if lines:
        lines.append("")

    def term_text(term) -> str:
        if isinstance(term, IRI):
            qname = manager.compact(term)
            return qname if qname is not None else term.n3()
        if isinstance(term, Literal) and term.datatype is not None:
            qname = manager.compact(term.datatype)
            if qname is not None:
                plain = Literal(term.lexical)
                return f"{plain.n3()}^^{qname}"
        return term.n3()

    by_subject: dict[Subject, dict[IRI, list[Object]]] = {}
    for triple in graph:
        by_subject.setdefault(triple.subject, {}).setdefault(
            triple.predicate, []).append(triple.object)

    def subject_key(subject: Subject) -> tuple[int, str]:
        return (0 if isinstance(subject, IRI) else 1, str(subject))

    rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
    for subject in sorted(by_subject, key=subject_key):
        predicates = by_subject[subject]
        chunks: list[str] = []
        ordered = sorted(predicates, key=lambda p: (p != rdf_type, p.value))
        for predicate in ordered:
            pred_text = "a" if predicate == rdf_type else term_text(predicate)
            objects = sorted(predicates[predicate], key=lambda o: o.n3())
            obj_text = ", ".join(term_text(o) for o in objects)
            chunks.append(f"    {pred_text} {obj_text}")
        body = " ;\n".join(chunks)
        lines.append(f"{term_text(subject)}\n{body} .")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<longstr>\"\"\"(?:[^"\\]|\\.|\"(?!\"\"))*\"\"\")
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<iri><[^<>\s]*>)
  | (?P<prefix_directive>@prefix\b)
  | (?P<base_directive>@base\b)
  | (?P<langtag>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<dtype>\^\^)
  | (?P<punct>[;,.\[\]()])
  | (?P<number>[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?))
  | (?P<bnode>_:[A-Za-z0-9_]+)
  | (?P<qname>[A-Za-z_][A-Za-z0-9_\-.]*?:[A-Za-z0-9_][A-Za-z0-9_\-.]*|[A-Za-z_][A-Za-z0-9_\-.]*?:|:[A-Za-z0-9_][A-Za-z0-9_\-.]*)
  | (?P<keyword>[A-Za-z]+)
    """,
    re.VERBOSE,
)

_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}


def _unescape(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt in _ESCAPES:
                out.append(_ESCAPES[nxt])
                i += 2
                continue
            if nxt == "u" and i + 6 <= len(text):
                out.append(chr(int(text[i + 2:i + 6], 16)))
                i += 6
                continue
            if nxt == "U" and i + 10 <= len(text):
                out.append(chr(int(text[i + 2:i + 10], 16)))
                i += 10
                continue
        out.append(ch)
        i += 1
    return "".join(out)


class _Tokens:
    def __init__(self, text: str) -> None:
        self.items: list[tuple[str, str, int]] = []
        pos = 0
        line = 1
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise RdfSyntaxError(
                    f"unexpected character {text[pos]!r}", line=line)
            kind = match.lastgroup or ""
            value = match.group()
            line += value.count("\n")
            if kind != "ws":
                self.items.append((kind, value, line))
            pos = match.end()
        self.index = 0

    def peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def next(self) -> tuple[str, str, int]:
        item = self.peek()
        if item is None:
            raise RdfSyntaxError("unexpected end of Turtle document")
        self.index += 1
        return item

    def expect_punct(self, value: str) -> None:
        kind, text, line = self.next()
        if kind != "punct" or text != value:
            raise RdfSyntaxError(f"expected {value!r}, got {text!r}", line=line)


_XSD = "http://www.w3.org/2001/XMLSchema#"


class TurtleParser:
    """Recursive-descent Turtle parser emitting into a :class:`Graph`."""

    def __init__(self, *, base_iri: str = "") -> None:
        self._base = base_iri

    def parse(self, text: str, graph: Graph | None = None) -> Graph:
        """Parse Turtle text into ``graph`` (or a fresh one)."""
        graph = graph if graph is not None else Graph(
            namespace_manager=NamespaceManager())
        self._graph = graph
        self._manager = graph.namespace_manager
        self._tokens = _Tokens(text)
        self._bnodes: dict[str, BlankNode] = {}
        while self._tokens.peek() is not None:
            self._statement()
        return graph

    def _statement(self) -> None:
        kind, value, line = self._tokens.items[self._tokens.index]
        if kind == "prefix_directive":
            self._tokens.next()
            pkind, ptext, pline = self._tokens.next()
            if pkind != "qname" or not ptext.endswith(":"):
                raise RdfSyntaxError(f"expected prefix name, got {ptext!r}",
                                     line=pline)
            ikind, itext, iline = self._tokens.next()
            if ikind != "iri":
                raise RdfSyntaxError(f"expected IRI, got {itext!r}", line=iline)
            self._manager.bind(ptext[:-1] or "_default", self._resolve(itext[1:-1]),
                               replace=True)
            self._tokens.expect_punct(".")
            return
        if kind == "base_directive":
            self._tokens.next()
            ikind, itext, iline = self._tokens.next()
            if ikind != "iri":
                raise RdfSyntaxError(f"expected IRI, got {itext!r}", line=iline)
            self._base = itext[1:-1]
            self._tokens.expect_punct(".")
            return
        subject = self._subject()
        self._predicate_object_list(subject)
        self._tokens.expect_punct(".")

    def _resolve(self, iri_text: str) -> str:
        if self._base and "://" not in iri_text and not iri_text.startswith(
                ("urn:", "mailto:")):
            return self._base + iri_text
        return iri_text

    def _subject(self) -> Subject:
        kind, value, line = self._tokens.next()
        if kind == "iri":
            return IRI(self._resolve(value[1:-1]))
        if kind == "qname":
            return self._expand_qname(value, line)
        if kind == "bnode":
            return self._bnode(value)
        if kind == "punct" and value == "[":
            node = BlankNode()
            peek = self._tokens.peek()
            if peek is not None and peek[0] == "punct" and peek[1] == "]":
                self._tokens.next()
                return node
            self._predicate_object_list(node)
            self._tokens.expect_punct("]")
            return node
        raise RdfSyntaxError(f"expected subject, got {value!r}", line=line)

    def _expand_qname(self, text: str, line: int) -> IRI:
        prefix, _, local = text.partition(":")
        try:
            return self._manager.expand(f"{prefix or '_default'}:{local}")
        except Exception as exc:
            raise RdfSyntaxError(str(exc), line=line) from exc

    def _bnode(self, text: str) -> BlankNode:
        label = text[2:]
        if label not in self._bnodes:
            self._bnodes[label] = BlankNode()
        return self._bnodes[label]

    def _predicate_object_list(self, subject: Subject) -> None:
        while True:
            predicate = self._predicate()
            while True:
                obj = self._object()
                self._graph.add(subject, predicate, obj)
                peek = self._tokens.peek()
                if peek is not None and peek[0] == "punct" and peek[1] == ",":
                    self._tokens.next()
                    continue
                break
            peek = self._tokens.peek()
            if peek is not None and peek[0] == "punct" and peek[1] == ";":
                self._tokens.next()
                nxt = self._tokens.peek()
                if nxt is not None and nxt[0] == "punct" and nxt[1] in ".]":
                    return
                continue
            return

    def _predicate(self) -> IRI:
        kind, value, line = self._tokens.next()
        if kind == "keyword" and value == "a":
            return IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        if kind == "iri":
            return IRI(self._resolve(value[1:-1]))
        if kind == "qname":
            return self._expand_qname(value, line)
        raise RdfSyntaxError(f"expected predicate, got {value!r}", line=line)

    def _object(self) -> Object:
        kind, value, line = self._tokens.next()
        if kind == "iri":
            return IRI(self._resolve(value[1:-1]))
        if kind == "qname":
            return self._expand_qname(value, line)
        if kind == "bnode":
            return self._bnode(value)
        if kind == "punct" and value == "[":
            node = BlankNode()
            peek = self._tokens.peek()
            if peek is not None and peek[0] == "punct" and peek[1] == "]":
                self._tokens.next()
                return node
            self._predicate_object_list(node)
            self._tokens.expect_punct("]")
            return node
        if kind in ("string", "longstr"):
            lexical = _unescape(value[3:-3] if kind == "longstr" else value[1:-1])
            peek = self._tokens.peek()
            if peek is not None and peek[0] == "langtag":
                self._tokens.next()
                return Literal(lexical, language=peek[1][1:])
            if peek is not None and peek[0] == "dtype":
                self._tokens.next()
                dkind, dtext, dline = self._tokens.next()
                if dkind == "iri":
                    return Literal(lexical, IRI(self._resolve(dtext[1:-1])))
                if dkind == "qname":
                    return Literal(lexical, self._expand_qname(dtext, dline))
                raise RdfSyntaxError(
                    f"expected datatype IRI, got {dtext!r}", line=dline)
            return Literal(lexical)
        if kind == "number":
            if re.fullmatch(r"[+-]?\d+", value):
                return Literal(value, IRI(_XSD + "integer"))
            if "e" in value.lower():
                return Literal(value, IRI(_XSD + "double"))
            return Literal(value, IRI(_XSD + "decimal"))
        if kind == "keyword" and value in ("true", "false"):
            return Literal(value, IRI(_XSD + "boolean"))
        raise RdfSyntaxError(f"expected object, got {value!r}", line=line)


def parse_turtle(text: str, *, base_iri: str = "") -> Graph:
    """Parse a Turtle document into a fresh :class:`Graph`."""
    return TurtleParser(base_iri=base_iri).parse(text)
