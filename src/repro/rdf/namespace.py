"""Namespace handling and standard vocabularies.

A :class:`Namespace` builds IRIs by attribute or item access
(``RDF.type``, ``XSD["integer"]``).  The :class:`NamespaceManager` keeps a
bidirectional prefix <-> namespace table used by both serializers to emit
compact qualified names.
"""

from __future__ import annotations

import re

from ..errors import RdfError
from .terms import IRI

_PREFIX_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-.]*\Z")


class Namespace:
    """A factory for IRIs sharing a common prefix string."""

    def __init__(self, base: str) -> None:
        if not base:
            raise RdfError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        """The namespace's base IRI string."""
        return self._base

    def term(self, local: str) -> IRI:
        """Build the IRI ``base + local``."""
        return IRI(self._base + local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __eq__(self, other) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(self._base)

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

WELL_KNOWN_PREFIXES: dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD,
}


class NamespaceManager:
    """Bidirectional prefix <-> namespace registry."""

    def __init__(self, *, include_well_known: bool = True) -> None:
        self._by_prefix: dict[str, str] = {}
        self._by_base: dict[str, str] = {}
        if include_well_known:
            for prefix, namespace in WELL_KNOWN_PREFIXES.items():
                self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: Namespace | str,
             *, replace: bool = False) -> None:
        """Register ``prefix`` for ``namespace``.

        Re-binding an existing prefix to a different base raises unless
        ``replace`` is set; binding the same pair twice is a no-op.
        """
        if not _PREFIX_RE.match(prefix):
            raise RdfError(f"invalid namespace prefix: {prefix!r}")
        base = namespace.base if isinstance(namespace, Namespace) else namespace
        existing = self._by_prefix.get(prefix)
        if existing is not None and existing != base and not replace:
            raise RdfError(
                f"prefix {prefix!r} already bound to {existing!r}")
        if existing is not None and replace:
            self._by_base.pop(existing, None)
        self._by_prefix[prefix] = base
        # Keep the first prefix registered for a base as canonical.
        self._by_base.setdefault(base, prefix)

    def expand(self, qname: str) -> IRI:
        """Expand ``prefix:local`` to a full IRI."""
        if ":" not in qname:
            raise RdfError(f"not a qualified name: {qname!r}")
        prefix, local = qname.split(":", 1)
        base = self._by_prefix.get(prefix)
        if base is None:
            raise RdfError(f"unknown namespace prefix: {prefix!r}")
        return IRI(base + local)

    def compact(self, iri: IRI) -> str | None:
        """Return ``prefix:local`` for ``iri`` if a binding covers it."""
        best_base = ""
        best_prefix = None
        for base, prefix in self._by_base.items():
            if iri.value.startswith(base) and len(base) > len(best_base):
                local = iri.value[len(base):]
                if re.match(r"[A-Za-z_][A-Za-z0-9_\-.]*\Z", local) or local == "":
                    best_base = base
                    best_prefix = prefix
        if best_prefix is None:
            return None
        return f"{best_prefix}:{iri.value[len(best_base):]}"

    def namespaces(self) -> list[tuple[str, str]]:
        """All (prefix, base) pairs, sorted by prefix."""
        return sorted(self._by_prefix.items())

    def prefix_for(self, namespace: Namespace | str) -> str | None:
        """The canonical prefix bound to a namespace, or None."""
        base = namespace.base if isinstance(namespace, Namespace) else namespace
        return self._by_base.get(base)
