"""A SPARQL subset over the in-memory graph.

The paper's closing argument is that S2S output "allows data to be shared
and processed by automated tools" — i.e. the OWL documents the middleware
emits are *queryable knowledge*.  This module is that consumer side: a
SPARQL engine supporting the slice B2B post-processing needs::

    PREFIX onto: <http://example.org/s2s/watch#>
    SELECT DISTINCT ?brand ?name
    WHERE {
      ?w rdf:type onto:watch .
      ?w onto:brand ?brand .
      ?w onto:hasProvider ?p .
      ?p onto:name ?name .
      FILTER (?price >= 100 && ?brand != "Casio")
    }
    ORDER BY ?brand LIMIT 10

Supported: ``PREFIX`` declarations (rdf/rdfs/owl/xsd are pre-bound),
``SELECT`` with variable projection or ``*``, ``DISTINCT``, basic graph
patterns (``.``-separated triples, ``a`` for ``rdf:type``), ``FILTER``
with comparisons, ``&&``/``||``/``!``, ``BOUND``, ``REGEX``, ``OPTIONAL``
blocks, ``ORDER BY``/``LIMIT``/``OFFSET``, and ``ASK`` queries.

Evaluation is backtracking join over the indexed triple store: patterns
are reordered greedily by bound-term count so selective patterns run
first.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Union

from ..errors import RdfError
from .graph import Graph
from .namespace import NamespaceManager
from .terms import IRI, BlankNode, Literal

# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Variable:
    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Variable, IRI, Literal]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def bound_count(self, bindings: dict) -> int:
        """How many positions are already fixed under ``bindings``."""
        count = 0
        for term in (self.subject, self.predicate, self.object):
            if not isinstance(term, Variable) or term.name in bindings:
                count += 1
        return count


@dataclass(frozen=True, slots=True)
class Comparison:
    operator: str  # = != < > <= >=
    left: "FilterExpr"
    right: "FilterExpr"


@dataclass(frozen=True, slots=True)
class BoolOp:
    operator: str  # && ||
    left: "FilterExpr"
    right: "FilterExpr"


@dataclass(frozen=True, slots=True)
class NotOp:
    operand: "FilterExpr"


@dataclass(frozen=True, slots=True)
class BoundCall:
    variable: Variable


@dataclass(frozen=True, slots=True)
class RegexCall:
    operand: "FilterExpr"
    pattern: str
    flags: str = ""


FilterExpr = Union[Variable, Literal, IRI, Comparison, BoolOp, NotOp,
                   BoundCall, RegexCall]


@dataclass
class GroupPattern:
    """A basic graph pattern: triples + filters + optional sub-groups."""

    triples: list[TriplePattern] = field(default_factory=list)
    filters: list[FilterExpr] = field(default_factory=list)
    optionals: list["GroupPattern"] = field(default_factory=list)


@dataclass
class SparqlQuery:
    form: str  # SELECT | ASK
    variables: list[Variable]  # empty means *
    distinct: bool
    pattern: GroupPattern
    order_by: list[tuple[Variable, bool]]  # (var, descending)
    limit: int | None
    offset: int


# ---------------------------------------------------------------------------
# Lexer / parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<iri><[^<>\s]*>)
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>[+-]?\d+(?:\.\d+)?)
  | (?P<dtype>\^\^)
  | (?P<and>&&) | (?P<or>\|\|)
  | (?P<ne>!=) | (?P<le><=) | (?P<ge>>=) | (?P<eq>=) | (?P<lt><) | (?P<gt>>)
  | (?P<not>!)
  | (?P<punct>[{}().,;])
  | (?P<qname>[A-Za-z_][A-Za-z0-9_\-]*:[A-Za-z_][A-Za-z0-9_\-.]*
              |[A-Za-z_][A-Za-z0-9_\-]*:)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*|\*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"PREFIX", "SELECT", "ASK", "WHERE", "FILTER", "OPTIONAL",
             "DISTINCT", "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET",
             "BOUND", "REGEX", "A", "TRUE", "FALSE"}

_XSD = "http://www.w3.org/2001/XMLSchema#"
_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    value: str


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens: list[_Token] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise RdfError(
                    f"SPARQL: unexpected character {text[pos]!r} at "
                    f"offset {pos}")
            kind = match.lastgroup or ""
            if kind != "ws":
                value = match.group()
                if kind == "word" and value.upper() in _KEYWORDS:
                    self.tokens.append(_Token("keyword", value.upper()))
                else:
                    self.tokens.append(_Token(kind, value))
            pos = match.end()
        self.index = 0
        self.manager = NamespaceManager()

    def peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) \
            else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise RdfError("SPARQL: unexpected end of query")
        self.index += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> _Token | None:
        token = self.peek()
        if token and token.kind == kind and (value is None
                                             or token.value == value):
            self.index += 1
            return token
        return None

    def expect(self, kind: str, value: str | None = None) -> _Token:
        token = self.next()
        if token.kind != kind or (value is not None
                                  and token.value != value):
            raise RdfError(f"SPARQL: expected {value or kind}, got "
                           f"{token.value!r}")
        return token

    # -- query ----------------------------------------------------------

    def parse(self) -> SparqlQuery:
        while self.accept("keyword", "PREFIX"):
            qname = self.expect("qname").value
            iri = self.expect("iri").value[1:-1]
            self.manager.bind(qname[:-1] if qname.endswith(":")
                              else qname.split(":", 1)[0], iri,
                              replace=True)
        token = self.next()
        if token.kind != "keyword" or token.value not in ("SELECT", "ASK"):
            raise RdfError(f"SPARQL: expected SELECT or ASK, got "
                           f"{token.value!r}")
        form = token.value
        variables: list[Variable] = []
        distinct = False
        if form == "SELECT":
            distinct = self.accept("keyword", "DISTINCT") is not None
            star = self.peek()
            if star is not None and star.kind == "punct" and \
                    star.value == "*":
                self.next()
            elif star is not None and star.kind == "word" and \
                    star.value == "*":
                self.next()
            else:
                while True:
                    var = self.accept("var")
                    if var is None:
                        break
                    variables.append(Variable(var.value[1:]))
                if not variables:
                    # maybe it was "*" tokenized oddly; require vars
                    token = self.peek()
                    if token is None or token.value != "{":
                        raise RdfError(
                            "SPARQL: SELECT needs variables or *")
        self.accept("keyword", "WHERE")
        pattern = self.group()
        order_by: list[tuple[Variable, bool]] = []
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            while True:
                descending = False
                if self.accept("keyword", "DESC"):
                    self.expect("punct", "(")
                    variable = Variable(self.expect("var").value[1:])
                    self.expect("punct", ")")
                    descending = True
                elif self.accept("keyword", "ASC"):
                    self.expect("punct", "(")
                    variable = Variable(self.expect("var").value[1:])
                    self.expect("punct", ")")
                else:
                    var = self.accept("var")
                    if var is None:
                        break
                    variable = Variable(var.value[1:])
                order_by.append((variable, descending))
                if self.peek() is None or self.peek().kind != "var" and \
                        not (self.peek().kind == "keyword"
                             and self.peek().value in ("ASC", "DESC")):
                    break
        limit = None
        offset = 0
        while True:
            if self.accept("keyword", "LIMIT"):
                limit = int(self.expect("number").value)
            elif self.accept("keyword", "OFFSET"):
                offset = int(self.expect("number").value)
            else:
                break
        if self.peek() is not None:
            raise RdfError(f"SPARQL: trailing tokens at "
                           f"{self.peek().value!r}")
        return SparqlQuery(form, variables, distinct, pattern, order_by,
                           limit, offset)

    def group(self) -> GroupPattern:
        self.expect("punct", "{")
        group = GroupPattern()
        while True:
            token = self.peek()
            if token is None:
                raise RdfError("SPARQL: unterminated group pattern")
            if token.kind == "punct" and token.value == "}":
                self.next()
                return group
            if token.kind == "keyword" and token.value == "FILTER":
                self.next()
                self.expect("punct", "(")
                group.filters.append(self.filter_or())
                self.expect("punct", ")")
                self.accept("punct", ".")
                continue
            if token.kind == "keyword" and token.value == "OPTIONAL":
                self.next()
                group.optionals.append(self.group())
                self.accept("punct", ".")
                continue
            group.triples.append(self.triple())
            if not self.accept("punct", "."):
                closing = self.peek()
                if closing is None or closing.value != "}":
                    raise RdfError("SPARQL: expected '.' or '}' after "
                                   "triple pattern")

    def triple(self) -> TriplePattern:
        subject = self.term(position="subject")
        predicate = self.term(position="predicate")
        obj = self.term(position="object")
        return TriplePattern(subject, predicate, obj)

    def term(self, position: str) -> PatternTerm:
        token = self.next()
        if token.kind == "var":
            return Variable(token.value[1:])
        if token.kind == "iri":
            return IRI(token.value[1:-1])
        if token.kind == "qname":
            return self.manager.expand(token.value)
        if token.kind == "keyword" and token.value == "A":
            if position != "predicate":
                raise RdfError("SPARQL: 'a' is only valid as predicate")
            return _RDF_TYPE
        if position == "object":
            if token.kind == "string":
                lexical = _unescape(token.value[1:-1])
                if self.accept("dtype"):
                    dtype_token = self.next()
                    if dtype_token.kind == "iri":
                        return Literal(lexical, IRI(dtype_token.value[1:-1]))
                    if dtype_token.kind == "qname":
                        return Literal(lexical,
                                       self.manager.expand(dtype_token.value))
                    raise RdfError("SPARQL: expected datatype IRI")
                return Literal(lexical)
            if token.kind == "number":
                return _number_literal(token.value)
            if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
                return Literal(token.value.lower(), IRI(_XSD + "boolean"))
        raise RdfError(f"SPARQL: unexpected term {token.value!r} in "
                       f"{position} position")

    # -- filters -----------------------------------------------------------

    def filter_or(self) -> FilterExpr:
        left = self.filter_and()
        while self.accept("or"):
            left = BoolOp("||", left, self.filter_and())
        return left

    def filter_and(self) -> FilterExpr:
        left = self.filter_not()
        while self.accept("and"):
            left = BoolOp("&&", left, self.filter_not())
        return left

    def filter_not(self) -> FilterExpr:
        if self.accept("not"):
            return NotOp(self.filter_not())
        return self.filter_comparison()

    def filter_comparison(self) -> FilterExpr:
        left = self.filter_primary()
        token = self.peek()
        operators = {"eq": "=", "ne": "!=", "lt": "<", "gt": ">",
                     "le": "<=", "ge": ">="}
        if token is not None and token.kind in operators:
            self.next()
            return Comparison(operators[token.kind], left,
                              self.filter_primary())
        return left

    def filter_primary(self) -> FilterExpr:
        token = self.next()
        if token.kind == "var":
            return Variable(token.value[1:])
        if token.kind == "string":
            return Literal(_unescape(token.value[1:-1]))
        if token.kind == "number":
            return _number_literal(token.value)
        if token.kind == "iri":
            return IRI(token.value[1:-1])
        if token.kind == "qname":
            return self.manager.expand(token.value)
        if token.kind == "keyword" and token.value == "BOUND":
            self.expect("punct", "(")
            variable = Variable(self.expect("var").value[1:])
            self.expect("punct", ")")
            return BoundCall(variable)
        if token.kind == "keyword" and token.value == "REGEX":
            self.expect("punct", "(")
            operand = self.filter_or()
            self.expect("punct", ",")
            pattern = _unescape(self.expect("string").value[1:-1])
            flags = ""
            if self.accept("punct", ","):
                flags = _unescape(self.expect("string").value[1:-1])
            self.expect("punct", ")")
            return RegexCall(operand, pattern, flags)
        if token.kind == "punct" and token.value == "(":
            inner = self.filter_or()
            self.expect("punct", ")")
            return inner
        raise RdfError(f"SPARQL: unexpected filter token {token.value!r}")


def _unescape(text: str) -> str:
    return (text.replace("\\\\", "\x00").replace('\\"', '"')
            .replace("\\n", "\n").replace("\\t", "\t")
            .replace("\x00", "\\"))


def _number_literal(text: str) -> Literal:
    if "." in text:
        return Literal(text, IRI(_XSD + "decimal"))
    return Literal(text, IRI(_XSD + "integer"))


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

Binding = dict[str, object]  # variable name → IRI | BlankNode | Literal


def _substitute(term: PatternTerm, bindings: Binding):
    if isinstance(term, Variable):
        return bindings.get(term.name)
    return term


def _match_group(graph: Graph, group: GroupPattern,
                 bindings: Binding) -> Iterator[Binding]:
    yield from _match_triples(graph, list(group.triples), bindings,
                              group)


def _match_triples(graph: Graph, remaining: list[TriplePattern],
                   bindings: Binding,
                   group: GroupPattern) -> Iterator[Binding]:
    if not remaining:
        yield from _apply_tail(graph, bindings, group)
        return
    # Greedy selectivity: run the most-bound pattern next.
    remaining = sorted(remaining,
                       key=lambda p: -p.bound_count(bindings))
    pattern, rest = remaining[0], remaining[1:]
    subject = _substitute(pattern.subject, bindings)
    predicate = _substitute(pattern.predicate, bindings)
    obj = _substitute(pattern.object, bindings)
    if isinstance(predicate, (Literal, BlankNode)):
        return  # cannot be a predicate
    for triple in graph.triples(
            subject if not isinstance(subject, Literal) else None,
            predicate, obj):
        if isinstance(subject, Literal):
            continue
        extended = dict(bindings)
        if not _bind(pattern.subject, triple.subject, extended):
            continue
        if not _bind(pattern.predicate, triple.predicate, extended):
            continue
        if not _bind(pattern.object, triple.object, extended):
            continue
        yield from _match_triples(graph, rest, extended, group)


def _apply_tail(graph: Graph, bindings: Binding,
                group: GroupPattern) -> Iterator[Binding]:
    result = bindings
    for optional in group.optionals:
        matched = next(_match_group(graph, optional, result), None)
        if matched is not None:
            result = matched
    # SPARQL evaluates a group's FILTERs after its OPTIONALs, so
    # !BOUND(?x) over an optional variable works as expected.
    for filter_expr in group.filters:
        if not _filter_bool(filter_expr, result):
            return
    yield result


def _bind(term: PatternTerm, value, bindings: Binding) -> bool:
    if isinstance(term, Variable):
        existing = bindings.get(term.name)
        if existing is None:
            bindings[term.name] = value
            return True
        return existing == value
    return term == value


def _filter_value(expr: FilterExpr, bindings: Binding):
    if isinstance(expr, Variable):
        return bindings.get(expr.name)
    if isinstance(expr, (Literal, IRI)):
        return expr
    if isinstance(expr, BoundCall):
        return expr.variable.name in bindings
    if isinstance(expr, RegexCall):
        operand = _filter_value(expr.operand, bindings)
        if operand is None:
            return False
        text = operand.lexical if isinstance(operand, Literal) \
            else str(operand)
        flags = re.IGNORECASE if "i" in expr.flags else 0
        return re.search(expr.pattern, text, flags) is not None
    if isinstance(expr, NotOp):
        return not _filter_bool(expr.operand, bindings)
    if isinstance(expr, BoolOp):
        if expr.operator == "&&":
            return (_filter_bool(expr.left, bindings)
                    and _filter_bool(expr.right, bindings))
        return (_filter_bool(expr.left, bindings)
                or _filter_bool(expr.right, bindings))
    if isinstance(expr, Comparison):
        left = _comparable(_filter_value(expr.left, bindings))
        right = _comparable(_filter_value(expr.right, bindings))
        if left is None or right is None:
            return False
        try:
            if expr.operator == "=":
                return left == right
            if expr.operator == "!=":
                return left != right
            if expr.operator == "<":
                return left < right
            if expr.operator == ">":
                return left > right
            if expr.operator == "<=":
                return left <= right
            return left >= right
        except TypeError:
            return False
    raise RdfError(f"SPARQL: unsupported filter expression {expr!r}")


def _filter_bool(expr: FilterExpr, bindings: Binding) -> bool:
    value = _filter_value(expr, bindings)
    if isinstance(value, Literal):
        return bool(value.lexical)
    return bool(value)


def _comparable(value):
    if isinstance(value, Literal):
        try:
            return value.to_python()
        except RdfError:
            return value.lexical
    if isinstance(value, IRI):
        return value.value
    return value


def _sort_key(value):
    if value is None:
        return (0, "", 0)
    comparable = _comparable(value)
    if isinstance(comparable, bool):
        return (1, "bool", int(comparable))
    if isinstance(comparable, (int, float)):
        return (2, "", comparable)
    return (3, type(comparable).__name__, str(comparable))


@dataclass
class SparqlResult:
    """SELECT results: variable names + rows of bound terms."""

    variables: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list:
        """Bound terms of one projected variable."""
        index = self.variables.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as variable→term dictionaries."""
        return [dict(zip(self.variables, row)) for row in self.rows]


def execute_sparql(graph: Graph, query_text: str):
    """Parse and run a SPARQL query.

    Returns a :class:`SparqlResult` for SELECT, a ``bool`` for ASK."""
    query = _Parser(query_text).parse()
    solutions = list(_match_group(graph, query.pattern, {}))
    if query.form == "ASK":
        return bool(solutions)

    if query.variables:
        names = [v.name for v in query.variables]
    else:
        seen: list[str] = []
        for solution in solutions:
            for name in solution:
                if name not in seen:
                    seen.append(name)
        names = seen

    rows = [tuple(solution.get(name) for name in names)
            for solution in solutions]
    if query.distinct:
        rows = list(dict.fromkeys(rows))
    for variable, descending in reversed(query.order_by):
        try:
            position = names.index(variable.name)
        except ValueError as exc:
            raise RdfError(f"SPARQL: ORDER BY unknown variable "
                           f"?{variable.name}") from exc
        rows.sort(key=lambda row: _sort_key(row[position]),
                  reverse=descending)
    if query.offset:
        rows = rows[query.offset:]
    if query.limit is not None:
        rows = rows[: query.limit]
    return SparqlResult(names, rows)
