"""RDF/XML serializer and parser.

RDF/XML is the concrete syntax OWL documents were exchanged in at the time
of the paper, so this is the default output format of the Instance
Generator.  The serializer emits typed node elements (one per subject, using
the subject's ``rdf:type`` when it can be compacted to a qualified name) and
property elements with ``rdf:resource`` references, ``rdf:datatype`` typed
literals or ``xml:lang`` tagged literals.  The parser accepts the striped
syntax produced here plus the common authoring variants (``rdf:Description``
nodes, ``rdf:ID``, ``rdf:nodeID``, nested node elements).
"""

from __future__ import annotations

from ..errors import RdfError, RdfSyntaxError
from ..xmlkit import Document, Element, parse_xml, serialize_xml
from .graph import Graph
from .namespace import NamespaceManager, RDF
from .terms import IRI, BlankNode, Literal, Object, Subject

_RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
_XML_NS = "http://www.w3.org/XML/1998/namespace"


# ---------------------------------------------------------------------------
# Serializer
# ---------------------------------------------------------------------------

class RdfXmlSerializer:
    """Serialize a :class:`Graph` to an RDF/XML string."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._manager = graph.namespace_manager

    def serialize(self) -> str:
        """Render the graph as an RDF/XML document string."""
        root = Element("rdf:RDF", namespace=_RDF_NS)
        used_prefixes = {"rdf"}
        body_nodes: list[Element] = []

        subjects = sorted(
            {t.subject for t in self._graph},
            key=lambda s: (isinstance(s, BlankNode), str(s)))
        described_inline: set[Subject] = set()
        for subject in subjects:
            if subject in described_inline:
                continue
            node = self._describe(subject, used_prefixes)
            body_nodes.append(node)

        for prefix, base in sorted(self._manager.namespaces()):
            if prefix in used_prefixes:
                root.attributes[f"xmlns:{prefix}"] = base
        root.attributes.setdefault("xmlns:rdf", _RDF_NS)
        for node in body_nodes:
            root.append(node)
        return serialize_xml(Document(root))

    def _qname(self, iri: IRI, used_prefixes: set[str]) -> str | None:
        compact = self._manager.compact(iri)
        if compact is None or compact.endswith(":"):
            return None
        prefix = compact.split(":", 1)[0]
        used_prefixes.add(prefix)
        return compact

    def _describe(self, subject: Subject, used_prefixes: set[str]) -> Element:
        triples = sorted(self._graph.triples(subject, None, None),
                         key=lambda t: (t.predicate.value, t.object.n3()))
        type_iri: IRI | None = None
        for triple in triples:
            if triple.predicate == RDF.type and isinstance(triple.object, IRI):
                qname = self._qname(triple.object, used_prefixes)
                if qname is not None:
                    type_iri = triple.object
                    break

        if type_iri is not None:
            tag = self._qname(type_iri, used_prefixes)
            node = Element(tag or "rdf:Description")
        else:
            node = Element("rdf:Description")

        if isinstance(subject, IRI):
            node.attributes["rdf:about"] = subject.value
        else:
            node.attributes["rdf:nodeID"] = subject.label

        for triple in triples:
            if triple.predicate == RDF.type and triple.object == type_iri:
                continue
            node.append(self._property(triple.predicate, triple.object,
                                       used_prefixes))
        return node

    def _property(self, predicate: IRI, obj: Object,
                  used_prefixes: set[str]) -> Element:
        tag = self._qname(predicate, used_prefixes)
        if tag is None:
            raise RdfError(
                f"cannot serialize predicate {predicate} to RDF/XML: no "
                "namespace prefix is bound for it")
        element = Element(tag)
        if isinstance(obj, IRI):
            element.attributes["rdf:resource"] = obj.value
        elif isinstance(obj, BlankNode):
            element.attributes["rdf:nodeID"] = obj.label
        else:
            if obj.datatype is not None:
                element.attributes["rdf:datatype"] = obj.datatype.value
            if obj.language is not None:
                element.attributes["xml:lang"] = obj.language
            element.append_text(obj.lexical)
        return element


def serialize_rdfxml(graph: Graph) -> str:
    """Serialize ``graph`` to RDF/XML."""
    return RdfXmlSerializer(graph).serialize()


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class RdfXmlParser:
    """Parse an RDF/XML document into a :class:`Graph`."""

    def __init__(self) -> None:
        self._bnodes: dict[str, BlankNode] = {}

    def parse(self, text: str, graph: Graph | None = None) -> Graph:
        """Parse RDF/XML text into ``graph`` (or a fresh one)."""
        document = parse_xml(text)
        graph = graph if graph is not None else Graph(
            namespace_manager=NamespaceManager())
        self._graph = graph
        self._register_namespaces(document.root)
        root = document.root
        if root.namespace == _RDF_NS and self._local(root) == "RDF":
            for child in root.element_children():
                self._node_element(child)
        else:
            self._node_element(root)
        return graph

    def _register_namespaces(self, root: Element) -> None:
        for name, value in root.attributes.items():
            if name.startswith("xmlns:"):
                try:
                    self._graph.namespace_manager.bind(name[6:], value)
                except RdfError:
                    pass  # conflicting redeclarations keep the first binding

    @staticmethod
    def _local(element: Element) -> str:
        return element.name.rpartition(":")[2]

    def _resolve_name(self, element: Element) -> IRI:
        if element.namespace:
            return IRI(element.namespace + self._local(element))
        raise RdfSyntaxError(
            f"element {element.name!r} has no namespace; RDF/XML requires "
            "namespace-qualified names")

    def _subject_of(self, element: Element) -> Subject:
        about = element.get("rdf:about")
        if about is not None:
            return IRI(about)
        rdf_id = element.get("rdf:ID")
        if rdf_id is not None:
            return IRI("#" + rdf_id)
        node_id = element.get("rdf:nodeID")
        if node_id is not None:
            return self._bnode(node_id)
        return BlankNode()

    def _bnode(self, label: str) -> BlankNode:
        if label not in self._bnodes:
            self._bnodes[label] = BlankNode()
        return self._bnodes[label]

    def _node_element(self, element: Element) -> Subject:
        subject = self._subject_of(element)
        name = self._resolve_name(element)
        if not (element.namespace == _RDF_NS and self._local(element) == "Description"):
            self._graph.add(subject, RDF.type, name)
        # Attribute shorthand: non-rdf attributes are literal properties.
        for attr, value in element.attributes.items():
            if attr.startswith(("rdf:", "xmlns", "xml:")):
                continue
            prefix, _, local = attr.rpartition(":")
            if prefix:
                predicate = self._graph.namespace_manager.expand(attr)
                self._graph.add(subject, predicate, Literal(value))
        for child in element.element_children():
            self._property_element(subject, child)
        return subject

    def _property_element(self, subject: Subject, element: Element) -> None:
        predicate = self._resolve_name(element)
        resource = element.get("rdf:resource")
        if resource is not None:
            self._graph.add(subject, predicate, IRI(resource))
            return
        node_id = element.get("rdf:nodeID")
        if node_id is not None:
            self._graph.add(subject, predicate, self._bnode(node_id))
            return
        children = element.element_children()
        if children:
            if len(children) != 1:
                raise RdfSyntaxError(
                    f"property element {element.name!r} must contain exactly "
                    "one node element")
            nested = self._node_element(children[0])
            self._graph.add(subject, predicate, nested)
            return
        datatype = element.get("rdf:datatype")
        language = element.get("xml:lang")
        lexical = element.text_content()
        if datatype is not None:
            literal = Literal(lexical, IRI(datatype))
        elif language is not None:
            literal = Literal(lexical, language=language)
        else:
            literal = Literal(lexical)
        self._graph.add(subject, predicate, literal)


def parse_rdfxml(text: str) -> Graph:
    """Parse an RDF/XML document into a fresh graph."""
    return RdfXmlParser().parse(text)
