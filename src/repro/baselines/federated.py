"""The hand-written federated querier.

The "no middleware" engineering baseline: for every source the integrator
author writes a callable producing already-normalized record dicts, and
queries are Python predicates.  It achieves the same answers as S2S — at
the cost of bespoke per-source code with no shared ontology, no reusable
mapping repository and no declarative query language.  E1 uses it to show
that S2S's generality costs little over hand-rolled integration; E9 shows
its maintenance profile (every source change edits code, not mapping
entries).
"""

from __future__ import annotations

from typing import Callable, Iterable

Record = dict[str, object]
Producer = Callable[[], Iterable[Record]]
Predicate = Callable[[Record], bool]


class FederatedQuerier:
    """Unions records from hand-written per-source producers."""

    def __init__(self) -> None:
        self._producers: dict[str, Producer] = {}

    def add_source(self, source_id: str, producer: Producer) -> None:
        """Attach a hand-written record producer for one source."""
        if source_id in self._producers:
            raise ValueError(f"producer for {source_id!r} already added")
        self._producers[source_id] = producer

    def remove_source(self, source_id: str) -> None:
        """Detach a producer (source decommissioned)."""
        self._producers.pop(source_id, None)

    def query(self, predicate: Predicate | None = None) -> list[Record]:
        """Union all producers' records, filtered by ``predicate``."""
        results: list[Record] = []
        for source_id, producer in self._producers.items():
            for record in producer():
                tagged = dict(record)
                tagged["_source"] = source_id
                if predicate is None or predicate(tagged):
                    results.append(tagged)
        return results

    def source_ids(self) -> list[str]:
        """IDs of the attached producers, sorted."""
        return sorted(self._producers)

    def __len__(self) -> int:
        return len(self._producers)
