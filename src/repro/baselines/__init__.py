"""Comparison systems.

The paper argues (sections 1, 4, 5) that syntactic-only middleware cannot
resolve schematic/semantic heterogeneity and that wrapper toolkits like
W4F and Caméléon cover only some source types.  These baselines make that
comparison measurable:

* :mod:`repro.baselines.syntactic` — a syntactic merge integrator: unions
  raw records under their native field names, no ontology, no
  normalization;
* :mod:`repro.baselines.federated` — a hand-written federated querier: per
  source, the author writes a record-producing callable and a per-query
  filter (what an engineer builds without any middleware);
* :mod:`repro.baselines.w4f` — a W4F-style standalone web wrapper: web
  pages only, XML output;
* :mod:`repro.baselines.cameleon` — a Caméléon-style declarative wrapper
  engine: spec files over web pages and text files, XML output.
"""

from .syntactic import SyntacticIntegrator
from .federated import FederatedQuerier
from .w4f import W4fWrapper
from .cameleon import CameleonWrapper

__all__ = ["SyntacticIntegrator", "FederatedQuerier", "W4fWrapper",
           "CameleonWrapper"]
