"""A Caméléon-style declarative wrapper engine.

Models the Caméléon Web Wrapper Engine of the paper's related work
(section 4): "capable of extracting from both text and binary formats.
The engine provides output in XML."  Caméléon wrappers are *spec files* —
per attribute, a begin/end delimiter pair and a pattern — rather than
imperative code.  This engine accepts such specs over web pages *and*
plain-text files (its advantage over W4F), but like the original it has
no ontology, no typing and no cross-source integration semantics.

Spec format (one attribute per block)::

    #ATTRIBUTE brand
    #BEGIN <td class="brand">
    #END </td>
    #PATTERN (.*?)

``#BEGIN``/``#END`` anchor the search region; ``#PATTERN`` (optional,
default ``(.*?)``) is applied between the anchors, group 1 extracted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import S2SError
from ..sources.textfiles.store import TextFileStore
from ..sources.web.site import SimulatedWeb
from ..xmlkit import Document, Element, serialize_xml


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute's declarative extraction spec."""

    name: str
    begin: str
    end: str
    pattern: str = "(.*?)"

    def compiled(self) -> re.Pattern:
        """The spec compiled to a regular expression."""
        body = self.pattern if self.pattern else "(.*?)"
        try:
            return re.compile(
                re.escape(self.begin) + body + re.escape(self.end),
                re.DOTALL)
        except re.error as exc:
            raise S2SError(
                f"invalid Caméléon pattern for {self.name!r}: {exc}") from exc


def parse_spec(text: str) -> list[AttributeSpec]:
    """Parse a Caméléon spec file into attribute specs."""
    specs: list[AttributeSpec] = []
    name: str | None = None
    begin: str | None = None
    end: str | None = None
    pattern = "(.*?)"

    def flush() -> None:
        nonlocal name, begin, end, pattern
        if name is not None:
            if begin is None or end is None:
                raise S2SError(
                    f"spec for {name!r} is missing #BEGIN or #END")
            specs.append(AttributeSpec(name, begin, end, pattern))
        name, begin, end, pattern = None, None, None, "(.*?)"

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("//"):
            continue
        if line.startswith("#ATTRIBUTE"):
            flush()
            name = line[len("#ATTRIBUTE"):].strip()
            if not name:
                raise S2SError(f"line {line_number}: empty attribute name")
        elif line.startswith("#BEGIN"):
            begin = line[len("#BEGIN"):].strip()
        elif line.startswith("#END"):
            end = line[len("#END"):].strip()
        elif line.startswith("#PATTERN"):
            pattern = line[len("#PATTERN"):].strip()
        else:
            raise S2SError(f"line {line_number}: unrecognized spec line "
                           f"{line!r}")
    flush()
    if not specs:
        raise S2SError("empty Caméléon spec")
    return specs


class CameleonWrapper:
    """Runs declarative specs over web pages and text files."""

    def __init__(self, web: SimulatedWeb | None = None,
                 files: TextFileStore | None = None) -> None:
        self.web = web
        self.files = files
        self._specs: list[AttributeSpec] = []

    def load_spec(self, text: str) -> None:
        """Parse and install a spec file."""
        self._specs = parse_spec(text)

    def attribute_names(self) -> list[str]:
        """Attributes the loaded spec extracts."""
        return [spec.name for spec in self._specs]

    # -- extraction ------------------------------------------------------

    def _content(self, locator: str) -> str:
        if locator.startswith(("http://", "https://")):
            if self.web is None:
                raise S2SError("no web attached to this wrapper")
            return self.web.fetch(locator)
        if self.files is None:
            raise S2SError("no file store attached to this wrapper")
        return self.files.read(locator)

    def extract(self, locator: str) -> dict[str, list[str]]:
        """Run every spec against a URL or file path."""
        if not self._specs:
            raise S2SError("load_spec() before extracting")
        content = self._content(locator)
        return {
            spec.name: [match.group(1).strip()
                        for match in spec.compiled().finditer(content)]
            for spec in self._specs
        }

    def extract_xml(self, locator: str) -> str:
        """The Caméléon deliverable: results as an XML document."""
        extracted = self.extract(locator)
        count = max((len(values) for values in extracted.values()),
                    default=0)
        root = Element("cameleon-result", {"source": locator})
        for index in range(count):
            record = root.subelement("record")
            for name in sorted(extracted):
                values = extracted[name]
                if index < len(values):
                    record.subelement(name, text=values[index])
        return serialize_xml(Document(root))
