"""A W4F-style standalone web wrapper.

Models the World Wide Web Wrapper Factory of the paper's related work
(section 4): "W4F extracts exclusively from Web pages and the output may
be in an XML file or a Java interface."  The wrapper takes per-field
regex extraction rules over one page, and emits flat XML — no ontology,
no typed values, no non-web sources.  E10 compares its coverage and cost
with the full S2S pipeline.
"""

from __future__ import annotations

import re

from ..errors import S2SError, WebError
from ..sources.web.site import SimulatedWeb
from ..xmlkit import Document, Element, serialize_xml


class W4fWrapper:
    """Extraction rules over web pages, XML out."""

    def __init__(self, web: SimulatedWeb) -> None:
        self.web = web
        self._rules: dict[str, re.Pattern] = {}

    def add_rule(self, field: str, pattern: str) -> None:
        """Map an output field to a regex with one capture group."""
        try:
            compiled = re.compile(pattern, re.DOTALL)
        except re.error as exc:
            raise S2SError(f"invalid W4F rule for {field!r}: {exc}") from exc
        if compiled.groups < 1:
            raise S2SError(
                f"W4F rule for {field!r} needs one capture group")
        self._rules[field] = compiled

    def extract(self, url: str) -> dict[str, list[str]]:
        """Run every rule against the page at ``url``."""
        try:
            markup = self.web.fetch(url)
        except WebError:
            raise
        return {
            field: [match.group(1).strip()
                    for match in pattern.finditer(markup)]
            for field, pattern in self._rules.items()
        }

    def extract_xml(self, url: str) -> str:
        """The W4F deliverable: extraction results as an XML document."""
        extracted = self.extract(url)
        count = max((len(values) for values in extracted.values()), default=0)
        root = Element("w4f-result", {"url": url})
        for index in range(count):
            record = root.subelement("record", {"index": str(index)})
            for field in sorted(extracted):
                values = extracted[field]
                if index < len(values):
                    record.subelement(field, text=values[index])
        return serialize_xml(Document(root))

    def extract_site(self, urls: list[str]) -> list[dict[str, list[str]]]:
        """Run the rules against several URLs."""
        return [self.extract(url) for url in urls]

    def field_names(self) -> list[str]:
        """Output fields this wrapper extracts, sorted."""
        return sorted(self._rules)
