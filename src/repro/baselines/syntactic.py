"""The syntactic merge integrator.

Models "most current middleware [which] only covers syntactical
integration" (paper section 5): it can *reach* every source (it reuses the
same connectors and rule execution as S2S) but it has no ontology — each
source contributes records under its **native field names**, values stay
raw strings, and no unit/vocabulary normalization or cross-source schema
alignment happens.

Queries against it are field=value filters.  When two sources name the
same concept differently (``brand`` vs ``marke`` vs ``manufacturer``), a
query can only match the sources that happen to share the queried field
name — precisely the failure mode the heterogeneity experiment (E6)
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import S2SError
from ..sources.base import DataSource


@dataclass
class SyntacticMapping:
    """Field name → extraction rule, per source, using native names."""

    source: DataSource
    fields: dict[str, str] = field(default_factory=dict)  # name → rule code


@dataclass
class SyntacticRecord:
    """One merged record: raw field → raw string value, plus provenance."""

    source_id: str
    fields: dict[str, str | None]

    def get(self, name: str) -> str | None:
        """Raw value of a native field, or None."""
        return self.fields.get(name)


class SyntacticIntegrator:
    """Unions per-source records without semantic alignment."""

    def __init__(self) -> None:
        self._mappings: list[SyntacticMapping] = []

    def add_source(self, source: DataSource,
                   fields: dict[str, str]) -> None:
        """Register a source with its native field → rule map."""
        if not fields:
            raise S2SError("syntactic mapping requires at least one field")
        self._mappings.append(SyntacticMapping(source, dict(fields)))

    def materialize(self) -> list[SyntacticRecord]:
        """Extract every source's records (positional alignment, as S2S)."""
        records: list[SyntacticRecord] = []
        for mapping in self._mappings:
            columns: dict[str, list[str]] = {}
            for name, rule in mapping.fields.items():
                try:
                    columns[name] = mapping.source.execute_rule(rule)
                except S2SError:
                    columns[name] = []
            count = max((len(values) for values in columns.values()),
                        default=0)
            for index in range(count):
                fields = {
                    name: (values[index] if index < len(values) else None)
                    for name, values in columns.items()
                }
                records.append(SyntacticRecord(mapping.source.source_id,
                                               fields))
        return records

    def query(self, **constraints: str) -> list[SyntacticRecord]:
        """Filter the merged records by exact raw string equality.

        This is the strongest query a syntactic system can offer: it knows
        neither types (so no numeric comparison) nor synonyms (so a
        constraint only sees sources sharing the field name)."""
        results = []
        for record in self.materialize():
            if all(record.get(name) == value
                   for name, value in constraints.items()):
                results.append(record)
        return results

    def field_names(self) -> set[str]:
        """Union of native field names across all sources."""
        names: set[str] = set()
        for mapping in self._mappings:
            names.update(mapping.fields)
        return names

    def __len__(self) -> int:
        return len(self._mappings)
