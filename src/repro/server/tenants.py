"""Per-tenant namespaces: one middleware, one mapping, one token each.

A *tenant* is an isolation boundary, not a label: every tenant owns a
complete :class:`~repro.core.middleware.S2SMiddleware` — its own
ontology mapping, data-source registry, circuit breakers, fragment
cache, semantic store and metrics wiring.  One tenant's open breakers,
stale materializations or runaway queries are invisible to every other
tenant; the only shared resources are the server's event loop and its
admission-control slots.

Authentication is deliberately minimal (a per-tenant bearer token
checked at HELLO); the interesting property is the namespace isolation
behind it.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, field

from ..errors import S2SError


@dataclass
class Tenant:
    """One tenant: a name, its middleware and an optional token.

    ``token=None`` means the tenant accepts unauthenticated sessions
    (useful for demos and loopback deployments).  ``owned`` marks
    middlewares the server constructed itself — those are closed on
    server shutdown; injected middlewares are the caller's to close."""

    name: str
    middleware: object  # S2SMiddleware, duck-typed to avoid import cycles
    token: str | None = None
    owned: bool = False

    def authenticate(self, token: str | None) -> bool:
        """Constant-time token check; trivially true for open tenants."""
        if self.token is None:
            return True
        if token is None:
            return False
        return hmac.compare_digest(self.token, token)


@dataclass
class TenantRegistry:
    """name → :class:`Tenant`, the server's authentication surface."""

    tenants: dict[str, Tenant] = field(default_factory=dict)

    @classmethod
    def of(cls, middlewares: dict) -> "TenantRegistry":
        """A registry from ``{name: middleware}`` (open tenants)."""
        registry = cls()
        for name, middleware in middlewares.items():
            registry.add(Tenant(name, middleware))
        return registry

    def add(self, tenant: Tenant) -> Tenant:
        """Register a tenant; names are unique."""
        if not tenant.name:
            raise S2SError("tenant name must be non-empty")
        if tenant.name in self.tenants:
            raise S2SError(f"tenant {tenant.name!r} already registered")
        self.tenants[tenant.name] = tenant
        return tenant

    def authenticate(self, name: str | None, token: str | None) -> Tenant:
        """The tenant for a HELLO, or raises :class:`S2SError`.

        Unknown tenants and bad tokens raise the *same* message, so a
        probe cannot distinguish which half was wrong."""
        tenant = self.tenants.get(name or "")
        if tenant is None or not tenant.authenticate(token):
            raise S2SError("unknown tenant or bad token")
        return tenant

    def names(self) -> list[str]:
        """Registered tenant names, sorted."""
        return sorted(self.tenants)

    def __len__(self) -> int:
        return len(self.tenants)

    def __iter__(self):
        return iter(self.tenants.values())
