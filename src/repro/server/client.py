"""Clients for the S2S query server.

Two clients share the frame codec and one request/response brain:

* :class:`AsyncS2SClient` — asyncio streams, for callers already on an
  event loop (and for the server's own tests).
* :class:`S2SClient` — a plain blocking socket, for scripts, the CLI
  and benchmark worker threads.  No hidden event loop.

Both mirror the middleware's querying surface —
``query`` / ``query_many`` / ``sparql`` / ``explain`` — plus
``prepare()`` returning a :class:`PreparedStatement` (the PARSE/BIND/
EXECUTE flow: the server keeps the parsed AST, so repeated executions
skip the parser and planner round trip).  Answers come back as
:class:`~repro.server.codec.RemoteQueryResult`, whose reading surface
matches the in-process ``QueryResult``; code that consumes answers does
not care which side of the socket produced them.

Backpressure is surfaced, not hidden: a RETRY_AFTER frame raises
:class:`~repro.server.protocol.ServerBusyError` carrying the server's
retry hint, and an ERROR frame raises
:class:`~repro.server.protocol.RemoteServerError` with the server's
error code.  Retrying is the caller's policy decision.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from dataclasses import dataclass, field

from ..errors import S2SError
from . import protocol
from .codec import RemoteQueryResult, result_from_wire
from .protocol import (MAX_FRAME_BYTES, RemoteServerError, ServerBusyError,
                       TornFrameError, read_frame, read_frame_sync,
                       write_frame, write_frame_sync)


@dataclass
class RemoteSparqlResult:
    """SPARQL SELECT rows as decoded from the wire.

    ``rows`` holds one term dict (``type``/``text``/``datatype?``) per
    variable; :meth:`simple_rows` flattens to the text values."""

    variables: list = field(default_factory=list)
    rows: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def simple_rows(self) -> list[tuple]:
        """Rows as tuples of the terms' text values."""
        return [tuple(term.get("text") for term in row) for row in self.rows]


class _RequestBrain:
    """Frame construction + response interpretation, shared by both
    clients.  Subclasses supply only the transport (``_request``)."""

    def __init__(self, tenant: str, token: str | None,
                 max_frame_bytes: int) -> None:
        self.tenant = tenant
        self.token = token
        self.max_frame_bytes = max_frame_bytes
        self.server_info: dict = {}
        self._ids = itertools.count(1)

    def _hello_frame(self) -> dict:
        frame = {"kind": protocol.HELLO,
                 "protocol": protocol.PROTOCOL_VERSION,
                 "tenant": self.tenant}
        if self.token is not None:
            frame["token"] = self.token
        return frame

    def _next_id(self) -> int:
        return next(self._ids)

    @staticmethod
    def _check_welcome(reply: dict | None) -> dict:
        if reply is None:
            raise TornFrameError("server closed the connection during the "
                                 "handshake")
        if reply.get("kind") == protocol.ERROR:
            raise RemoteServerError(reply.get("code", protocol.CODE_INTERNAL),
                                    reply.get("error", "handshake refused"))
        if reply.get("kind") != protocol.WELCOME:
            raise S2SError(f"expected WELCOME, got {reply.get('kind')!r}")
        return reply

    @staticmethod
    def _interpret(reply: dict | None, expected: str) -> dict:
        """Raise on ERROR / RETRY_AFTER / EOF; return the reply frame."""
        if reply is None:
            raise TornFrameError("server closed the connection mid-request")
        kind = reply.get("kind")
        if kind == protocol.RETRY_AFTER:
            raise ServerBusyError(float(reply.get("retry_after", 0.0)),
                                  queue_depth=reply.get("queue_depth"))
        if kind == protocol.ERROR:
            raise RemoteServerError(reply.get("code", protocol.CODE_INTERNAL),
                                    reply.get("error", "unknown error"))
        if kind != expected:
            raise S2SError(f"expected {expected}, got {kind!r}")
        return reply

    @staticmethod
    def _query_frame(kind: str, *, merge_key=None, timeout=None,
                     **fields) -> dict:
        frame = {"kind": kind, **fields}
        if merge_key is not None:
            frame["merge_key"] = list(merge_key)
        if timeout is not None:
            frame["timeout"] = float(timeout)
        return frame

    @staticmethod
    def _decode_result(reply: dict, started: float) -> RemoteQueryResult:
        result = result_from_wire(reply.get("result", {}))
        result.elapsed_seconds = time.perf_counter() - started
        return result

    @staticmethod
    def _decode_sparql(reply: dict):
        if "ask" in reply:
            return bool(reply["ask"])
        return RemoteSparqlResult(list(reply.get("variables", [])),
                                  [list(row) for row in
                                   reply.get("rows", [])])


@dataclass
class PreparedStatement:
    """A named server-side statement plus its bound portal.

    Created by ``client.prepare()``; ``execute()`` runs the bound
    portal, re-binding first only when ``merge_key`` changes.  The
    parsed AST lives on the server — executions skip parse + plan."""

    client: object
    name: str
    query_class: str
    attributes: int
    _merge_key: list[str] | None = None

    def execute(self, *, merge_key: list[str] | None = None,
                timeout: float | None = None):
        """Run the statement (sync and async clients each return their
        native flavour: a result, or a coroutine producing one)."""
        return self.client._execute_prepared(self, merge_key=merge_key,
                                             timeout=timeout)


class AsyncS2SClient(_RequestBrain):
    """The asyncio client; connect with ``async with`` or ``connect()``.

    One outstanding request per client (the server answers a
    connection's frames in order); open several clients for
    concurrency."""

    def __init__(self, host: str, port: int, *, tenant: str = "default",
                 token: str | None = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        super().__init__(tenant, token, max_frame_bytes)
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "AsyncS2SClient":
        """Open the connection and complete the HELLO handshake."""
        if self._writer is not None:
            return self
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        await write_frame(self._writer, self._hello_frame(),
                          max_bytes=self.max_frame_bytes)
        self.server_info = self._check_welcome(
            await read_frame(self._reader, max_bytes=self.max_frame_bytes))
        return self

    async def aclose(self) -> None:
        """Say GOODBYE (best effort) and close the transport."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is None:
            return
        try:
            await write_frame(writer, {"kind": protocol.GOODBYE},
                              max_bytes=self.max_frame_bytes)
        except (ConnectionError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncS2SClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def _request(self, frame: dict, expected: str) -> dict:
        if self._writer is None:
            await self.connect()
        frame.setdefault("id", self._next_id())
        await write_frame(self._writer, frame,
                          max_bytes=self.max_frame_bytes)
        return self._interpret(
            await read_frame(self._reader, max_bytes=self.max_frame_bytes),
            expected)

    async def query(self, s2sql: str, *,
                    merge_key: list[str] | None = None,
                    timeout: float | None = None) -> RemoteQueryResult:
        """One S2SQL query over the wire; mirrors ``middleware.query``."""
        started = time.perf_counter()
        reply = await self._request(
            self._query_frame(protocol.QUERY, s2sql=s2sql,
                              merge_key=merge_key, timeout=timeout),
            protocol.RESULT)
        return self._decode_result(reply, started)

    async def query_many(self, queries: list[str], *,
                         merge_key: list[str] | None = None,
                         timeout: float | None = None
                         ) -> list[RemoteQueryResult]:
        """A batch sharing one scan per source, like ``query_many``."""
        started = time.perf_counter()
        reply = await self._request(
            self._query_frame(protocol.QUERY_MANY, queries=list(queries),
                              merge_key=merge_key, timeout=timeout),
            protocol.RESULTS)
        results = [result_from_wire(wire)
                   for wire in reply.get("results", [])]
        elapsed = time.perf_counter() - started
        for result in results:
            result.elapsed_seconds = elapsed
        return results

    async def prepare(self, name: str, s2sql: str) -> PreparedStatement:
        """PARSE + BIND a named statement; returns its handle."""
        reply = await self._request(
            {"kind": protocol.PARSE, "name": name, "s2sql": s2sql},
            protocol.PARSED)
        await self._request({"kind": protocol.BIND, "name": name},
                            protocol.BOUND)
        return PreparedStatement(self, name, reply.get("query_class", ""),
                                 int(reply.get("attributes", 0)))

    async def _execute_prepared(self, statement: PreparedStatement, *,
                                merge_key: list[str] | None,
                                timeout: float | None) -> RemoteQueryResult:
        if merge_key != statement._merge_key:
            await self._request(
                self._query_frame(protocol.BIND, name=statement.name,
                                  merge_key=merge_key),
                protocol.BOUND)
            statement._merge_key = merge_key
        started = time.perf_counter()
        reply = await self._request(
            self._query_frame(protocol.EXECUTE, portal=statement.name,
                              timeout=timeout),
            protocol.RESULT)
        return self._decode_result(reply, started)

    async def sparql(self, text: str):
        """SPARQL over the tenant's store: bool for ASK, rows for
        SELECT."""
        reply = await self._request({"kind": protocol.SPARQL,
                                     "sparql": text},
                                    protocol.SPARQL_RESULT)
        return self._decode_sparql(reply)

    async def explain(self, s2sql: str, *,
                      merge_key: list[str] | None = None) -> str:
        """The server-rendered span tree for one traced execution."""
        reply = await self._request(
            self._query_frame(protocol.EXPLAIN, s2sql=s2sql,
                              merge_key=merge_key),
            protocol.EXPLAINED)
        return reply.get("rendered", "")

    async def status(self) -> dict:
        """Server + tenant status snapshot."""
        reply = await self._request({"kind": protocol.STATUS},
                                    protocol.STATUS_OK)
        return {key: value for key, value in reply.items()
                if key not in ("kind", "id")}

    async def metrics(self) -> dict:
        """Server + tenant metrics export."""
        reply = await self._request({"kind": protocol.METRICS},
                                    protocol.METRICS_OK)
        return {key: value for key, value in reply.items()
                if key not in ("kind", "id")}


class S2SClient(_RequestBrain):
    """The blocking client over a plain socket.

    Symmetric with :class:`AsyncS2SClient` method for method; use from
    scripts, REPLs and benchmark worker threads.  ``timeout`` is the
    socket timeout for connect and reads (``None`` blocks forever)."""

    def __init__(self, host: str, port: int, *, tenant: str = "default",
                 token: str | None = None, timeout: float | None = 30.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        super().__init__(tenant, token, max_frame_bytes)
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None

    def connect(self) -> "S2SClient":
        """Open the connection and complete the HELLO handshake."""
        if self._sock is not None:
            return self
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        write_frame_sync(self._sock, self._hello_frame(),
                         max_bytes=self.max_frame_bytes)
        self.server_info = self._check_welcome(
            read_frame_sync(self._sock, max_bytes=self.max_frame_bytes))
        return self

    def close(self) -> None:
        """Say GOODBYE (best effort) and close the socket."""
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            write_frame_sync(sock, {"kind": protocol.GOODBYE},
                             max_bytes=self.max_frame_bytes)
        except (ConnectionError, OSError):
            pass
        sock.close()

    def __enter__(self) -> "S2SClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, frame: dict, expected: str) -> dict:
        if self._sock is None:
            self.connect()
        frame.setdefault("id", self._next_id())
        write_frame_sync(self._sock, frame, max_bytes=self.max_frame_bytes)
        return self._interpret(
            read_frame_sync(self._sock, max_bytes=self.max_frame_bytes),
            expected)

    def query(self, s2sql: str, *, merge_key: list[str] | None = None,
              timeout: float | None = None) -> RemoteQueryResult:
        """One S2SQL query over the wire; mirrors ``middleware.query``."""
        started = time.perf_counter()
        reply = self._request(
            self._query_frame(protocol.QUERY, s2sql=s2sql,
                              merge_key=merge_key, timeout=timeout),
            protocol.RESULT)
        return self._decode_result(reply, started)

    def query_many(self, queries: list[str], *,
                   merge_key: list[str] | None = None,
                   timeout: float | None = None) -> list[RemoteQueryResult]:
        """A batch sharing one scan per source, like ``query_many``."""
        started = time.perf_counter()
        reply = self._request(
            self._query_frame(protocol.QUERY_MANY, queries=list(queries),
                              merge_key=merge_key, timeout=timeout),
            protocol.RESULTS)
        results = [result_from_wire(wire)
                   for wire in reply.get("results", [])]
        elapsed = time.perf_counter() - started
        for result in results:
            result.elapsed_seconds = elapsed
        return results

    def prepare(self, name: str, s2sql: str) -> PreparedStatement:
        """PARSE + BIND a named statement; returns its handle."""
        reply = self._request(
            {"kind": protocol.PARSE, "name": name, "s2sql": s2sql},
            protocol.PARSED)
        self._request({"kind": protocol.BIND, "name": name}, protocol.BOUND)
        return PreparedStatement(self, name, reply.get("query_class", ""),
                                 int(reply.get("attributes", 0)))

    def _execute_prepared(self, statement: PreparedStatement, *,
                          merge_key: list[str] | None,
                          timeout: float | None) -> RemoteQueryResult:
        if merge_key != statement._merge_key:
            self._request(
                self._query_frame(protocol.BIND, name=statement.name,
                                  merge_key=merge_key),
                protocol.BOUND)
            statement._merge_key = merge_key
        started = time.perf_counter()
        reply = self._request(
            self._query_frame(protocol.EXECUTE, portal=statement.name,
                              timeout=timeout),
            protocol.RESULT)
        return self._decode_result(reply, started)

    def sparql(self, text: str):
        """SPARQL over the tenant's store: bool for ASK, rows for
        SELECT."""
        reply = self._request({"kind": protocol.SPARQL, "sparql": text},
                              protocol.SPARQL_RESULT)
        return self._decode_sparql(reply)

    def explain(self, s2sql: str, *,
                merge_key: list[str] | None = None) -> str:
        """The server-rendered span tree for one traced execution."""
        reply = self._request(
            self._query_frame(protocol.EXPLAIN, s2sql=s2sql,
                              merge_key=merge_key),
            protocol.EXPLAINED)
        return reply.get("rendered", "")

    def status(self) -> dict:
        """Server + tenant status snapshot."""
        reply = self._request({"kind": protocol.STATUS}, protocol.STATUS_OK)
        return {key: value for key, value in reply.items()
                if key not in ("kind", "id")}

    def metrics(self) -> dict:
        """Server + tenant metrics export."""
        reply = self._request({"kind": protocol.METRICS},
                              protocol.METRICS_OK)
        return {key: value for key, value in reply.items()
                if key not in ("kind", "id")}
