"""The network front door: serve S2S over the wire.

The middleware of :mod:`repro.core` answers queries in-process; this
package turns it into a multi-tenant query *service*:

* :mod:`repro.server.protocol` — the length-prefixed JSON frame
  protocol (HELLO/WELCOME auth, PARSE/BIND/EXECUTE prepared S2SQL
  statements, one-shot QUERY/QUERY_MANY, SPARQL, EXPLAIN, STATUS,
  METRICS, RETRY_AFTER backpressure);
* :mod:`repro.server.server` — :class:`S2SServer`, the asyncio socket
  server fronting one :class:`~repro.core.middleware.S2SMiddleware` per
  tenant through ``aquery()``/``aquery_many()``, with bounded admission
  control, per-request deadlines, idle-connection reaping and graceful
  drain;
* :mod:`repro.server.client` — :class:`S2SClient` (sync) and
  :class:`AsyncS2SClient`, whose surface mirrors
  ``S2SMiddleware.query/query_many/sparql/explain`` so swapping
  in-process for over-the-wire is one constructor change;
* :mod:`repro.server.config` — :class:`ServerConfig`, re-exported
  through :mod:`repro.config`.

See docs/server.md for the frame reference and the tenancy model.
"""

from importlib import import_module

#: Public name → defining submodule.  Resolved lazily (PEP 562) so
#: ``repro.config`` can re-export :class:`ServerConfig` without pulling
#: the server/client machinery into every ``import repro``.
_EXPORTS = {
    "AsyncS2SClient": ".client",
    "PreparedStatement": ".client",
    "S2SClient": ".client",
    "RemoteEntity": ".codec",
    "RemoteIndividual": ".codec",
    "RemoteQueryResult": ".codec",
    "ServerConfig": ".config",
    "MAX_FRAME_BYTES": ".protocol",
    "PROTOCOL_VERSION": ".protocol",
    "GarbledFrameError": ".protocol",
    "OversizedFrameError": ".protocol",
    "ProtocolError": ".protocol",
    "RemoteServerError": ".protocol",
    "ServerBusyError": ".protocol",
    "TornFrameError": ".protocol",
    "S2SServer": ".server",
    "ServerThread": ".server",
    "Tenant": ".tenants",
    "TenantRegistry": ".tenants",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value  # resolve once
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "AsyncS2SClient",
    "GarbledFrameError",
    "MAX_FRAME_BYTES",
    "OversizedFrameError",
    "PROTOCOL_VERSION",
    "PreparedStatement",
    "ProtocolError",
    "RemoteEntity",
    "RemoteIndividual",
    "RemoteQueryResult",
    "RemoteServerError",
    "S2SClient",
    "S2SServer",
    "ServerBusyError",
    "ServerConfig",
    "ServerThread",
    "Tenant",
    "TenantRegistry",
    "TornFrameError",
]
