"""One knob object for the query server.

Kept free of imports from the rest of the server package so
:mod:`repro.config` (the consolidated configuration surface) can expose
it without pulling the asyncio server machinery into import time.
"""

from __future__ import annotations

from dataclasses import dataclass

from .protocol import MAX_FRAME_BYTES


@dataclass(frozen=True)
class ServerConfig:
    """Everything :class:`~repro.server.S2SServer` needs to stay up.

    * ``host``/``port`` — the listen address; port 0 binds an ephemeral
      port (the bound port is returned by ``start()``).
    * ``max_inflight`` — requests executing concurrently across all
      connections; the admission-control semaphore's size.
    * ``max_queue`` — requests allowed to *wait* for an execution slot.
      A request arriving with the queue full is refused immediately with
      a RETRY_AFTER frame instead of growing an unbounded backlog.
    * ``retry_after_seconds`` — the pushback hint carried on RETRY_AFTER.
      Quota rejections from a shared sharded query fleet
      (:class:`~repro.errors.FleetQuotaExceeded`) reuse the same frame
      and, unless the fleet supplies its own hint, the same delay —
      fleet backpressure is admission control by another door.
    * ``request_deadline_seconds`` — how long a request may sit queued
      (measured on the injectable clock) before it is answered with a
      DEADLINE_EXCEEDED error instead of executing; ``None`` disables.
    * ``idle_timeout_seconds`` — connections with no frame activity for
      this long (on the clock) are reaped; ``None`` disables.
    * ``drain_timeout_seconds`` — how long a graceful ``stop()`` waits
      for in-flight requests before closing connections anyway.
    * ``max_frame_bytes`` — per-frame size ceiling, both directions.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 8
    max_queue: int = 32
    retry_after_seconds: float = 0.05
    request_deadline_seconds: float | None = 30.0
    idle_timeout_seconds: float | None = 300.0
    drain_timeout_seconds: float = 5.0
    max_frame_bytes: int = MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.retry_after_seconds < 0:
            raise ValueError("retry_after_seconds must be >= 0")
        if (self.request_deadline_seconds is not None
                and self.request_deadline_seconds <= 0):
            raise ValueError(
                "request_deadline_seconds must be positive or None")
        if (self.idle_timeout_seconds is not None
                and self.idle_timeout_seconds <= 0):
            raise ValueError("idle_timeout_seconds must be positive or None")
        if self.max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be >= 1024")
