"""The S2S wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object.  The object always
carries a ``kind`` (the frame type) and, for request/response pairs, an
``id`` the server echoes back so clients can correlate pipelined
requests.  JSON over a binary length prefix keeps the framing trivial to
implement in any language while making message boundaries explicit —
the same trade the Postgres extended protocol makes with its typed,
length-prefixed messages (parse/bind/execute maps directly onto the
PARSE/BIND/EXECUTE frames here).

Client → server frames::

    HELLO    {tenant, token?, protocol}      open + authenticate a session
    QUERY    {id, s2sql, merge_key?}         one-shot S2SQL query
    QUERY_MANY {id, queries, merge_key?}     batched queries, one shared scan
    PARSE    {id, name, s2sql}               prepare a named statement
    BIND     {id, name, portal?, merge_key?} bind a portal over a statement
    EXECUTE  {id, portal}                    run a bound portal
    SPARQL   {id, sparql}                    SPARQL over the tenant's store
    EXPLAIN  {id, s2sql, merge_key?}         traced execution, rendered tree
    STATUS   {id}                            tenant + server status snapshot
    METRICS  {id}                            tenant + server metrics export
    GOODBYE  {}                              orderly connection close

Server → client frames::

    WELCOME      {protocol, server, tenant}
    RESULT       {id, result}                 wire-encoded QueryResult
    RESULTS      {id, results}                one wire result per query
    PARSED       {id, name, query_class, attributes}
    BOUND        {id, portal}
    SPARQL_RESULT{id, ask?|variables+rows}
    EXPLAINED    {id, rendered}
    STATUS_OK    {id, ...snapshot}
    METRICS_OK   {id, metrics}
    RETRY_AFTER  {id, retry_after, queue_depth}   admission control pushback
    ERROR        {id?, code, error}
    GOODBYE      {}

Framing errors are typed so the server can distinguish a client that
went away mid-frame (:class:`TornFrameError`), one that sent a frame
over the negotiated size limit (:class:`OversizedFrameError` — the
declared length is rejected *before* the payload is read, so a hostile
length cannot balloon memory) and one that sent bytes that are not a
JSON object (:class:`GarbledFrameError`).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

from ..errors import S2SError

#: Protocol revision; HELLO carries it and the server refuses mismatches.
PROTOCOL_VERSION = 1

#: Default per-frame size ceiling (header-declared length, in bytes).
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")

# -- frame kinds ----------------------------------------------------------

HELLO = "HELLO"
WELCOME = "WELCOME"
QUERY = "QUERY"
QUERY_MANY = "QUERY_MANY"
PARSE = "PARSE"
BIND = "BIND"
EXECUTE = "EXECUTE"
SPARQL = "SPARQL"
EXPLAIN = "EXPLAIN"
STATUS = "STATUS"
METRICS = "METRICS"
GOODBYE = "GOODBYE"
RESULT = "RESULT"
RESULTS = "RESULTS"
PARSED = "PARSED"
BOUND = "BOUND"
SPARQL_RESULT = "SPARQL_RESULT"
EXPLAINED = "EXPLAINED"
STATUS_OK = "STATUS_OK"
METRICS_OK = "METRICS_OK"
RETRY_AFTER = "RETRY_AFTER"
ERROR = "ERROR"

#: Error codes carried on ERROR frames.
CODE_AUTH = "AUTH"
CODE_BAD_FRAME = "BAD_FRAME"
CODE_BAD_REQUEST = "BAD_REQUEST"
CODE_DEADLINE = "DEADLINE_EXCEEDED"
CODE_INTERNAL = "INTERNAL"
CODE_QUERY = "QUERY_ERROR"
CODE_SHUTTING_DOWN = "SHUTTING_DOWN"
CODE_UNKNOWN_KIND = "UNKNOWN_KIND"


class ProtocolError(S2SError):
    """A violation of the frame protocol (framing, not semantics)."""


class TornFrameError(ProtocolError):
    """The peer disappeared mid-frame (EOF inside header or body)."""


class OversizedFrameError(ProtocolError):
    """A frame header declared a length over the configured ceiling."""


class GarbledFrameError(ProtocolError):
    """A frame body that is not a JSON object with a ``kind``."""


class RemoteServerError(S2SError):
    """The server answered a request with an ERROR frame.

    ``code`` is the machine-readable error class (``AUTH``,
    ``QUERY_ERROR``, ``DEADLINE_EXCEEDED``, ...); the message is the
    server's human-readable description."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServerBusyError(S2SError):
    """The server refused admission with a RETRY_AFTER frame.

    Backpressure, not failure: the request was never executed and the
    caller should retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float, *,
                 queue_depth: int | None = None) -> None:
        message = f"server busy; retry in {retry_after:.3f}s"
        if queue_depth is not None:
            message += f" (queue depth {queue_depth})"
        super().__init__(message)
        self.retry_after = retry_after
        self.queue_depth = queue_depth


# -- encoding -------------------------------------------------------------

def encode_frame(payload: dict, *,
                 max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Header + JSON body for one frame; raises when over the ceiling."""
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    if len(body) > max_bytes:
        raise OversizedFrameError(
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte limit")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """The frame payload, validated to be a JSON object with a kind."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GarbledFrameError(f"frame body is not valid JSON: {exc}") \
            from exc
    if not isinstance(payload, dict):
        raise GarbledFrameError(
            f"frame body must be a JSON object, not {type(payload).__name__}")
    if not isinstance(payload.get("kind"), str):
        raise GarbledFrameError("frame object is missing its 'kind'")
    return payload


# -- asyncio stream I/O ---------------------------------------------------

async def read_frame(reader: asyncio.StreamReader, *,
                     max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """One frame from the stream; ``None`` on clean EOF at a boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # orderly close between frames
        raise TornFrameError(
            f"connection closed {len(exc.partial)} bytes into a frame "
            f"header") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise OversizedFrameError(
            f"declared frame length {length} exceeds the {max_bytes}-byte "
            f"limit")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TornFrameError(
            f"connection closed {len(exc.partial)}/{length} bytes into a "
            f"frame body") from exc
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict, *,
                      max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Encode and flush one frame."""
    writer.write(encode_frame(payload, max_bytes=max_bytes))
    await writer.drain()


# -- blocking socket I/O (the sync client) --------------------------------

def read_frame_sync(sock: socket.socket, *,
                    max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Blocking twin of :func:`read_frame` over a plain socket."""
    header = _recv_exactly(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise OversizedFrameError(
            f"declared frame length {length} exceeds the {max_bytes}-byte "
            f"limit")
    body = _recv_exactly(sock, length)
    return decode_body(body)


def write_frame_sync(sock: socket.socket, payload: dict, *,
                     max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Blocking twin of :func:`write_frame`."""
    sock.sendall(encode_frame(payload, max_bytes=max_bytes))


def _recv_exactly(sock: socket.socket, length: int, *,
                  allow_eof: bool = False) -> bytes | None:
    chunks: list[bytes] = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == length:
                return None  # orderly close between frames
            received = length - remaining
            raise TornFrameError(
                f"connection closed {received}/{length} bytes into a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""
