"""The asyncio S2S query server.

One :class:`S2SServer` fronts a set of tenants (each a complete
:class:`~repro.core.middleware.S2SMiddleware`) behind the frame protocol
of :mod:`repro.server.protocol`.  The design goals, in order:

* **Don't melt down.**  Admission control is a bounded slot pool
  (``max_inflight`` executing, ``max_queue`` waiting); a request that
  would exceed the queue is refused *immediately* with a RETRY_AFTER
  frame.  Overload degrades to fast, explicit pushback — never to an
  unbounded backlog.
* **One loop, many tenants.**  Requests execute through the middleware's
  ``aquery()``/``aquery_many()``: under the asyncio engine the
  extraction fan-out runs natively on the server loop; under the
  serial/thread engines it runs in a worker thread — either way the
  loop keeps accepting frames.
* **Deterministic time.**  Queue deadlines and idle-connection reaping
  read the injectable :class:`~repro.clock.Clock`, so backpressure and
  timeout behaviour are tested with a FakeClock and zero real sleeps
  (the ``reap_idle()`` seam mirrors ``StoreRefresher.tick()``).
* **Graceful drain.**  ``stop()`` closes the listener, lets in-flight
  requests finish (bounded by ``drain_timeout_seconds``), then closes
  connections and any server-owned tenant middlewares.

Frames on one connection are handled strictly in order (responses never
interleave); concurrency comes from connections, which is also what
makes per-connection prepared-statement state trivial.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time

from ..clock import Clock, SystemClock
from ..core.query.parser import parse_s2sql
from ..errors import FleetQuotaExceeded, QueryError, S2SError
from ..obs import DEFAULT_REGISTRY, MetricsRegistry, Tracer
from . import protocol
from .codec import result_to_wire, sparql_to_wire
from .config import ServerConfig
from .protocol import (GarbledFrameError, OversizedFrameError, ProtocolError,
                       TornFrameError, read_frame, write_frame)
from .tenants import Tenant, TenantRegistry

logger = logging.getLogger("repro.server")

#: Request kinds that execute tenant work and go through admission.
_HEAVY_KINDS = frozenset({protocol.QUERY, protocol.QUERY_MANY,
                          protocol.EXECUTE, protocol.SPARQL,
                          protocol.EXPLAIN})

#: Latency buckets for the request histogram (seconds).
_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                    1.0, 2.5, 5.0, 10.0)


class _Connection:
    """One accepted socket: streams plus idle bookkeeping."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, clock: Clock) -> None:
        self.reader = reader
        self.writer = writer
        self.clock = clock
        self.last_activity = clock.monotonic()
        self.tenant: Tenant | None = None

    def touch(self) -> None:
        """Record frame activity for the idle reaper."""
        self.last_activity = self.clock.monotonic()

    def idle_seconds(self, now: float) -> float:
        return now - self.last_activity

    def abort(self) -> None:
        """Close the transport; the session's pending read sees EOF."""
        if not self.writer.is_closing():
            self.writer.close()


class _Session:
    """Per-connection protocol state: prepared statements + portals."""

    def __init__(self, tenant: Tenant) -> None:
        self.tenant = tenant
        #: statement name → parsed S2SQL AST (never re-parsed)
        self.statements: dict = {}
        #: portal name → (parsed AST, merge_key)
        self.portals: dict = {}


class S2SServer:
    """Serve S2S middleware tenants over the frame protocol.

    ``tenants`` is a :class:`TenantRegistry` or a plain
    ``{name: middleware}`` dict (open tenants).  ``clock`` drives queue
    deadlines and idle reaping; ``metrics`` receives the
    ``server_requests_total{tenant,kind,status}`` / ``server_inflight``
    / ``server_queue_depth`` / ``server_request_seconds`` families.
    """

    def __init__(self, tenants: "TenantRegistry | dict", *,
                 config: ServerConfig | None = None,
                 clock: Clock | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if not isinstance(tenants, TenantRegistry):
            tenants = TenantRegistry.of(dict(tenants))
        if not len(tenants):
            raise S2SError("a server needs at least one tenant")
        self.tenants = tenants
        self.config = config or ServerConfig()
        self.clock = clock or SystemClock()
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else DEFAULT_REGISTRY
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._cond: asyncio.Condition | None = None
        self._reaper: asyncio.Task | None = None
        self._connections: set[_Connection] = set()
        self._inflight = 0
        self._waiting = 0
        self._draining = False
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        if self._server is not None:
            raise S2SError("server already started")
        self._cond = asyncio.Condition()
        self._set_gauges()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._started_at = self.clock.monotonic()
        if self.config.idle_timeout_seconds is not None:
            self._reaper = asyncio.ensure_future(self._reap_loop())
        logger.info("S2S server listening on %s:%d (%d tenants)",
                    self.address[0], self.address[1], len(self.tenants))
        return self.address

    async def serve_forever(self) -> None:
        """Block until the listener is closed."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self, *, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain, close, tear down.

        In-flight requests get up to ``drain_timeout_seconds`` to
        finish; requests arriving after ``stop()`` begins are refused
        with a SHUTTING_DOWN error.  Tenant middlewares the server
        *owns* (built by it, e.g. through the CLI) are closed; injected
        ones are left to their owners."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        if drain and self._cond is not None:
            try:
                async with self._cond:
                    await asyncio.wait_for(
                        self._cond.wait_for(
                            lambda: self._inflight == 0
                            and self._waiting == 0),
                        self.config.drain_timeout_seconds)
            except (asyncio.TimeoutError, TimeoutError):
                logger.warning(
                    "drain timed out with %d request(s) in flight",
                    self._inflight + self._waiting)
        for connection in list(self._connections):
            connection.abort()
        for tenant in self.tenants:
            if tenant.owned:
                tenant.middleware.close()

    @property
    def draining(self) -> bool:
        """True once :meth:`stop` has begun refusing new requests."""
        return self._draining

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for an execution slot."""
        return self._waiting

    @property
    def inflight(self) -> int:
        """Requests currently executing."""
        return self._inflight

    def reap_idle(self) -> int:
        """Close connections idle past the timeout; returns the count.

        The deterministic seam: the background reaper calls this on a
        real-time poll, tests call it directly after advancing a
        FakeClock.  Must run on the server's event loop (use
        :meth:`ServerThread.reap_idle` from other threads)."""
        timeout = self.config.idle_timeout_seconds
        if timeout is None:
            return 0
        now = self.clock.monotonic()
        reaped = 0
        for connection in list(self._connections):
            if connection.idle_seconds(now) >= timeout:
                connection.abort()
                reaped += 1
        if reaped:
            self.metrics.counter(
                "server_idle_reaped_total",
                "connections closed by the idle reaper").inc(reaped)
        return reaped

    async def _reap_loop(self) -> None:
        poll = max(min(self.config.idle_timeout_seconds / 4, 1.0), 0.05)
        while True:
            await asyncio.sleep(poll)
            self.reap_idle()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        connection = _Connection(reader, writer, self.clock)
        self._connections.add(connection)
        self.metrics.counter("server_connections_total",
                             "connections accepted").inc()
        try:
            await self._session_loop(connection)
        except (TornFrameError, OversizedFrameError,
                GarbledFrameError) as exc:
            self.metrics.counter(
                "server_frame_errors_total",
                "connections dropped on malformed framing").inc(
                    kind=type(exc).__name__)
            await self._try_send(connection, {
                "kind": protocol.ERROR, "code": protocol.CODE_BAD_FRAME,
                "error": str(exc)})
        except ConnectionError:
            pass  # peer went away; nothing to answer
        finally:
            self._connections.discard(connection)
            connection.abort()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _session_loop(self, connection: _Connection) -> None:
        """HELLO handshake, then ordered request dispatch until EOF."""
        max_bytes = self.config.max_frame_bytes
        hello = await read_frame(connection.reader, max_bytes=max_bytes)
        if hello is None:
            return
        connection.touch()
        if hello.get("kind") != protocol.HELLO:
            await self._try_send(connection, {
                "kind": protocol.ERROR, "code": protocol.CODE_BAD_REQUEST,
                "error": "first frame must be HELLO"})
            return
        if hello.get("protocol") != protocol.PROTOCOL_VERSION:
            await self._try_send(connection, {
                "kind": protocol.ERROR, "code": protocol.CODE_BAD_REQUEST,
                "error": f"unsupported protocol revision "
                         f"{hello.get('protocol')!r}; this server speaks "
                         f"{protocol.PROTOCOL_VERSION}"})
            return
        try:
            tenant = self.tenants.authenticate(hello.get("tenant"),
                                               hello.get("token"))
        except S2SError as exc:
            self.metrics.counter("server_auth_failures_total",
                                 "rejected HELLO frames").inc()
            await self._try_send(connection, {
                "kind": protocol.ERROR, "code": protocol.CODE_AUTH,
                "error": str(exc)})
            return
        connection.tenant = tenant
        from .. import __version__
        await write_frame(connection.writer, {
            "kind": protocol.WELCOME,
            "protocol": protocol.PROTOCOL_VERSION,
            "server": f"repro-s2s/{__version__}",
            "tenant": tenant.name}, max_bytes=max_bytes)

        session = _Session(tenant)
        while True:
            frame = await read_frame(connection.reader, max_bytes=max_bytes)
            if frame is None:
                return
            connection.touch()
            if frame.get("kind") == protocol.GOODBYE:
                await self._try_send(connection, {"kind": protocol.GOODBYE})
                return
            await self._dispatch(connection, session, frame)

    async def _dispatch(self, connection: _Connection, session: _Session,
                        frame: dict) -> None:
        """One request: admission, execution, response, accounting."""
        kind = frame.get("kind", "")
        handler = _HANDLERS.get(kind)
        tenant = session.tenant.name
        started = time.perf_counter()
        if handler is None:
            await self._respond_error(connection, frame,
                                      protocol.CODE_UNKNOWN_KIND,
                                      f"unknown frame kind {kind!r}")
            self._observe(tenant, kind, "unknown", started)
            return
        if self._draining:
            await self._respond_error(connection, frame,
                                      protocol.CODE_SHUTTING_DOWN,
                                      "server is draining")
            self._observe(tenant, kind, "draining", started)
            return
        admitted = True
        if kind in _HEAVY_KINDS:
            admitted = await self._admit(connection, frame)
        if not admitted:
            self._observe(tenant, kind, "rejected", started)
            return
        try:
            await handler(self, connection, session, frame)
            status = "ok"
        except FleetQuotaExceeded as exc:
            # A shared query fleet refused the fan-out at one of its
            # quotas: same pushback shape as the server's own admission
            # control, so clients reuse their RETRY_AFTER handling.
            if self.metrics is not None:
                self.metrics.counter(
                    "server_rejected_total",
                    "requests refused by admission control").inc(
                        reason="fleet_quota")
            await self._try_send(connection, {
                "kind": protocol.RETRY_AFTER, "id": frame.get("id"),
                "retry_after": (exc.retry_after
                                or self.config.retry_after_seconds),
                "scope": exc.scope,
            })
            status = "rejected"
        except QueryError as exc:
            await self._respond_error(connection, frame,
                                      protocol.CODE_QUERY, str(exc))
            status = "error"
        except S2SError as exc:
            await self._respond_error(connection, frame,
                                      protocol.CODE_BAD_REQUEST, str(exc))
            status = "error"
        except ConnectionError:
            raise
        except Exception as exc:  # never let one request kill the server
            logger.exception("unhandled error serving %s for tenant %s",
                             kind, tenant)
            await self._respond_error(connection, frame,
                                      protocol.CODE_INTERNAL,
                                      f"internal error: {exc}")
            status = "error"
        finally:
            if kind in _HEAVY_KINDS:
                await self._release()
        self._observe(tenant, kind, status, started)

    # -- admission control -------------------------------------------------

    async def _admit(self, connection: _Connection, frame: dict) -> bool:
        """Take an execution slot, queue boundedly, or push back.

        Returns False after answering the frame itself (RETRY_AFTER when
        the queue is full, DEADLINE_EXCEEDED when the request expired
        while queued)."""
        config = self.config
        deadline: float | None = None
        timeout = frame.get("timeout", config.request_deadline_seconds)
        if timeout is not None:
            deadline = self.clock.monotonic() + float(timeout)
        async with self._cond:
            if self._inflight < config.max_inflight:
                self._inflight += 1
                self._set_gauges()
                return True
            if self._waiting >= config.max_queue:
                self.metrics.counter(
                    "server_rejected_total",
                    "requests refused by admission control").inc(
                        reason="queue_full")
                await self._try_send(connection, {
                    "kind": protocol.RETRY_AFTER, "id": frame.get("id"),
                    "retry_after": config.retry_after_seconds,
                    "queue_depth": self._waiting})
                return False
            self._waiting += 1
            self._set_gauges()
            try:
                while (self._inflight >= config.max_inflight
                       and not self._draining):
                    await self._cond.wait()
            finally:
                self._waiting -= 1
                self._set_gauges()
            if self._draining:
                await self._respond_error(connection, frame,
                                          protocol.CODE_SHUTTING_DOWN,
                                          "server is draining")
                self._cond.notify_all()
                return False
            if deadline is not None and self.clock.monotonic() >= deadline:
                self.metrics.counter(
                    "server_rejected_total",
                    "requests refused by admission control").inc(
                        reason="deadline")
                await self._respond_error(
                    connection, frame, protocol.CODE_DEADLINE,
                    f"request waited past its {float(timeout):.3f}s "
                    f"deadline in the admission queue")
                self._cond.notify_all()
                return False
            self._inflight += 1
            self._set_gauges()
            return True

    async def _release(self) -> None:
        async with self._cond:
            self._inflight -= 1
            self._set_gauges()
            self._cond.notify_all()

    def _set_gauges(self) -> None:
        self.metrics.gauge("server_inflight",
                           "requests currently executing").set(
                               self._inflight)
        self.metrics.gauge("server_queue_depth",
                           "requests waiting for an execution slot").set(
                               self._waiting)

    def _observe(self, tenant: str, kind: str, status: str,
                 started: float) -> None:
        self.metrics.counter(
            "server_requests_total",
            "requests served, by tenant, frame kind and outcome").inc(
                tenant=tenant, kind=kind or "?", status=status)
        self.metrics.histogram(
            "server_request_seconds", "request latency, frame in to "
            "response out", buckets=_LATENCY_BUCKETS).observe(
                time.perf_counter() - started)

    # -- responses ---------------------------------------------------------

    async def _respond(self, connection: _Connection, payload: dict) -> None:
        await write_frame(connection.writer, payload,
                          max_bytes=self.config.max_frame_bytes)

    async def _respond_error(self, connection: _Connection, frame: dict,
                             code: str, message: str) -> None:
        await self._try_send(connection, {
            "kind": protocol.ERROR, "id": frame.get("id"),
            "code": code, "error": message})

    async def _try_send(self, connection: _Connection,
                        payload: dict) -> None:
        """Best-effort write (the peer may already be gone)."""
        try:
            await write_frame(connection.writer, payload,
                              max_bytes=self.config.max_frame_bytes)
        except (ConnectionError, OSError, ProtocolError):
            pass

    # -- request handlers --------------------------------------------------

    @staticmethod
    def _require(frame: dict, key: str, kind: type = str):
        value = frame.get(key)
        if not isinstance(value, kind):
            raise S2SError(f"{frame.get('kind')} frame needs a "
                           f"{kind.__name__} {key!r} field")
        return value

    @staticmethod
    def _merge_key(frame: dict) -> list[str] | None:
        merge_key = frame.get("merge_key")
        if merge_key is None:
            return None
        if (not isinstance(merge_key, list)
                or not all(isinstance(item, str) for item in merge_key)):
            raise S2SError("merge_key must be a list of attribute names")
        return merge_key

    async def _handle_query(self, connection: _Connection,
                            session: _Session, frame: dict) -> None:
        s2sql = self._require(frame, "s2sql")
        result = await session.tenant.middleware.aquery(
            s2sql, merge_key=self._merge_key(frame))
        await self._respond(connection, {
            "kind": protocol.RESULT, "id": frame.get("id"),
            "result": result_to_wire(result)})

    async def _handle_query_many(self, connection: _Connection,
                                 session: _Session, frame: dict) -> None:
        queries = self._require(frame, "queries", list)
        if not all(isinstance(query, str) for query in queries):
            raise S2SError("queries must be a list of S2SQL strings")
        results = await session.tenant.middleware.aquery_many(
            queries, merge_key=self._merge_key(frame))
        await self._respond(connection, {
            "kind": protocol.RESULTS, "id": frame.get("id"),
            "results": [result_to_wire(result) for result in results]})

    async def _handle_parse(self, connection: _Connection,
                            session: _Session, frame: dict) -> None:
        name = self._require(frame, "name")
        s2sql = self._require(frame, "s2sql")
        parsed = parse_s2sql(s2sql)
        plan = session.tenant.middleware.query_handler.planner.plan(parsed)
        session.statements[name] = parsed
        await self._respond(connection, {
            "kind": protocol.PARSED, "id": frame.get("id"), "name": name,
            "query_class": plan.class_name,
            "attributes": len(plan.required_attributes)})

    async def _handle_bind(self, connection: _Connection,
                           session: _Session, frame: dict) -> None:
        name = self._require(frame, "name")
        parsed = session.statements.get(name)
        if parsed is None:
            raise S2SError(f"no prepared statement named {name!r}; "
                           f"PARSE it first")
        portal = frame.get("portal", name)
        if not isinstance(portal, str):
            raise S2SError("portal must be a string")
        session.portals[portal] = (parsed, self._merge_key(frame))
        await self._respond(connection, {
            "kind": protocol.BOUND, "id": frame.get("id"),
            "portal": portal})

    async def _handle_execute(self, connection: _Connection,
                              session: _Session, frame: dict) -> None:
        portal = self._require(frame, "portal")
        bound = session.portals.get(portal)
        if bound is None:
            raise S2SError(f"no bound portal named {portal!r}; BIND it "
                           f"first")
        parsed, merge_key = bound
        result = await session.tenant.middleware.query_handler.aexecute(
            parsed, merge_key=merge_key)
        await self._respond(connection, {
            "kind": protocol.RESULT, "id": frame.get("id"),
            "result": result_to_wire(result)})

    async def _handle_sparql(self, connection: _Connection,
                             session: _Session, frame: dict) -> None:
        text = self._require(frame, "sparql")
        answer = await asyncio.to_thread(session.tenant.middleware.sparql,
                                         text)
        await self._respond(connection, {
            "kind": protocol.SPARQL_RESULT, "id": frame.get("id"),
            **sparql_to_wire(answer)})

    async def _handle_explain(self, connection: _Connection,
                              session: _Session, frame: dict) -> None:
        s2sql = self._require(frame, "s2sql")
        rendered = await asyncio.to_thread(
            session.tenant.middleware.explain, s2sql,
            merge_key=self._merge_key(frame))
        await self._respond(connection, {
            "kind": protocol.EXPLAINED, "id": frame.get("id"),
            "rendered": rendered})

    async def _handle_status(self, connection: _Connection,
                             session: _Session, frame: dict) -> None:
        middleware = session.tenant.middleware
        store_rows = (middleware.store_status()
                      if middleware.store is not None else None)
        concurrency = middleware.resilience.concurrency
        engine = {"mode": concurrency.mode}
        if concurrency.mode == "sharded":
            engine["workers"] = concurrency.workers
            engine["pool"] = concurrency.pool
            fleet = getattr(middleware.manager, "fleet", None)
            if fleet is not None and hasattr(fleet, "snapshot"):
                engine["fleet"] = fleet.snapshot()
        await self._respond(connection, {
            "kind": protocol.STATUS_OK, "id": frame.get("id"),
            "tenant": session.tenant.name,
            "server": {
                "draining": self._draining,
                "inflight": self._inflight,
                "queue_depth": self._waiting,
                "max_inflight": self.config.max_inflight,
                "max_queue": self.config.max_queue,
                "connections": len(self._connections),
                "tenants": len(self.tenants),
                "uptime_seconds": self.clock.monotonic() - self._started_at,
            },
            "middleware": {
                "sources": len(middleware.source_repository),
                "mappings": len(middleware.attribute_repository),
                "coverage": middleware.mapping_coverage(),
                "open_breakers": middleware.open_breakers(),
                "engine": engine,
                "store": store_rows,
            }})

    async def _handle_metrics(self, connection: _Connection,
                              session: _Session, frame: dict) -> None:
        from ..obs.export import metrics_to_dict
        middleware = session.tenant.middleware
        await self._respond(connection, {
            "kind": protocol.METRICS_OK, "id": frame.get("id"),
            "metrics": {
                "server": metrics_to_dict(self.metrics),
                "tenant": metrics_to_dict(middleware.metrics()),
            },
            "text": middleware.metrics().render_text()})


_HANDLERS = {
    protocol.QUERY: S2SServer._handle_query,
    protocol.QUERY_MANY: S2SServer._handle_query_many,
    protocol.PARSE: S2SServer._handle_parse,
    protocol.BIND: S2SServer._handle_bind,
    protocol.EXECUTE: S2SServer._handle_execute,
    protocol.SPARQL: S2SServer._handle_sparql,
    protocol.EXPLAIN: S2SServer._handle_explain,
    protocol.STATUS: S2SServer._handle_status,
    protocol.METRICS: S2SServer._handle_metrics,
}


class ServerThread:
    """Run an :class:`S2SServer` on a dedicated event-loop thread.

    The bridge for blocking callers — tests, the CLI, benchmarks — who
    want a live server without owning an event loop::

        with ServerThread(S2SServer({"default": s2s})) as (host, port):
            client = S2SClient(host, port)
            ...

    ``start()`` returns the bound address; ``stop()`` drains and joins.
    """

    def __init__(self, server: S2SServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        """Start the loop thread and the server; returns (host, port)."""
        if self._loop is not None:
            raise S2SError("server thread already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="repro-s2s-server", daemon=True)
        self._thread.start()
        return self.call(self.server.start())

    def call(self, coroutine, *, timeout: float = 30.0):
        """Run a coroutine on the server loop, blocking for its result."""
        if self._loop is None:
            raise S2SError("server thread not started")
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=timeout)

    def reap_idle(self) -> int:
        """Run :meth:`S2SServer.reap_idle` on the server loop."""
        async def _reap() -> int:
            return self.server.reap_idle()
        return self.call(_reap())

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain the server, stop the loop and join the thread."""
        if self._loop is None:
            return
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain), loop)
        try:
            future.result(timeout=timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=5.0)
            if not loop.is_running():
                loop.close()

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
